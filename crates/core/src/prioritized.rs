//! Prioritized repairs (§4 of the paper; Staworko–Chomicki–Marcinkowski
//! \[103\], complexity in Fagin–Kimelfeld–Kolaitis \[57\]).
//!
//! When a *priority relation* `≻` ranks conflicting tuples (source trust,
//! recency, …), not all S-repairs are equally reasonable. With conflicts
//! from denial-class constraints:
//!
//! * `D₁` **Pareto-dominates** `D₂` if some tuple kept by `D₁` and not by
//!   `D₂` beats *every* tuple kept by `D₂` and not by `D₁`;
//! * `D₁` **globally dominates** `D₂` if every tuple kept by `D₂` and not
//!   by `D₁` is beaten by *some* tuple kept by `D₁` and not by `D₂`.
//!
//! Pareto-optimal (respectively globally-optimal) repairs are the S-repairs
//! that no consistent instance Pareto-(globally-)dominates; since any
//! dominating instance extends to a dominating S-repair, filtering the
//! S-repair set pairwise is exact. The paper's containment chain
//! `globally-optimal ⊆ Pareto-optimal ⊆ S-repairs` is asserted in tests.

use crate::repair::Repair;
use crate::srepair::s_repairs;
use cqa_constraints::ConstraintSet;
use cqa_relation::{Database, RelationError, Tid};
use std::collections::BTreeSet;

/// A priority relation on tuples: `prefers.contains(&(a, b))` means
/// `a ≻ b` (`a` is preferred to `b`). Must be irreflexive; acyclicity on
/// conflicting tuples is the caller's responsibility (as in \[103\]).
#[derive(Debug, Clone, Default)]
pub struct PriorityRelation {
    prefers: BTreeSet<(Tid, Tid)>,
}

impl PriorityRelation {
    /// Empty priority (every S-repair is optimal).
    pub fn new() -> PriorityRelation {
        PriorityRelation::default()
    }

    /// Declare `winner ≻ loser`.
    pub fn prefer(&mut self, winner: Tid, loser: Tid) -> &mut Self {
        if winner != loser {
            self.prefers.insert((winner, loser));
        }
        self
    }

    /// Does `a ≻ b` hold?
    pub fn beats(&self, a: Tid, b: Tid) -> bool {
        self.prefers.contains(&(a, b))
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.prefers.is_empty()
    }
}

fn kept(db: &Database, r: &Repair) -> BTreeSet<Tid> {
    db.tids().difference(&r.deleted).copied().collect()
}

/// Does `a` Pareto-dominate `b`? (Both deletion-only repairs of `db`.)
fn pareto_dominates(db: &Database, p: &PriorityRelation, a: &Repair, b: &Repair) -> bool {
    let ka = kept(db, a);
    let kb = kept(db, b);
    let a_only: Vec<Tid> = ka.difference(&kb).copied().collect();
    let b_only: Vec<Tid> = kb.difference(&ka).copied().collect();
    if a_only.is_empty() || b_only.is_empty() {
        return false;
    }
    a_only
        .iter()
        .any(|&t| b_only.iter().all(|&u| p.beats(t, u)))
}

/// Does `a` globally dominate `b`?
fn globally_dominates(db: &Database, p: &PriorityRelation, a: &Repair, b: &Repair) -> bool {
    let ka = kept(db, a);
    let kb = kept(db, b);
    let a_only: Vec<Tid> = ka.difference(&kb).copied().collect();
    let b_only: Vec<Tid> = kb.difference(&ka).copied().collect();
    if b_only.is_empty() {
        return false;
    }
    b_only
        .iter()
        .all(|&u| a_only.iter().any(|&t| p.beats(t, u)))
}

/// The Pareto-optimal repairs of `db` w.r.t. denial-class `sigma` and the
/// priority `p`.
pub fn pareto_optimal_repairs(
    db: &Database,
    sigma: &ConstraintSet,
    p: &PriorityRelation,
) -> Result<Vec<Repair>, RelationError> {
    let all = s_repairs(db, sigma)?;
    Ok(filter_undominated(db, p, all, pareto_dominates))
}

/// The globally-optimal repairs of `db` w.r.t. denial-class `sigma` and the
/// priority `p`.
pub fn globally_optimal_repairs(
    db: &Database,
    sigma: &ConstraintSet,
    p: &PriorityRelation,
) -> Result<Vec<Repair>, RelationError> {
    let all = s_repairs(db, sigma)?;
    Ok(filter_undominated(db, p, all, globally_dominates))
}

fn filter_undominated(
    db: &Database,
    p: &PriorityRelation,
    repairs: Vec<Repair>,
    dominates: fn(&Database, &PriorityRelation, &Repair, &Repair) -> bool,
) -> Vec<Repair> {
    let mut keep = Vec::new();
    for (i, r) in repairs.iter().enumerate() {
        let dominated = repairs
            .iter()
            .enumerate()
            .any(|(j, other)| j != i && dominates(db, p, other, r));
        if !dominated {
            keep.push(r.clone());
        }
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_constraints::KeyConstraint;
    use cqa_relation::{tuple, RelationSchema};

    /// Two conflicting pairs: (1,2) on key k=1, (3,4) on key k=2.
    fn db() -> (Database, ConstraintSet) {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("T", ["K", "V"]))
            .unwrap();
        db.insert("T", tuple![1, 10]).unwrap(); // ι1
        db.insert("T", tuple![1, 20]).unwrap(); // ι2
        db.insert("T", tuple![2, 30]).unwrap(); // ι3
        db.insert("T", tuple![2, 40]).unwrap(); // ι4
        let sigma = ConstraintSet::from_iter([KeyConstraint::new("T", ["K"])]);
        (db, sigma)
    }

    #[test]
    fn empty_priority_keeps_all_s_repairs() {
        let (db, sigma) = db();
        let p = PriorityRelation::new();
        let pareto = pareto_optimal_repairs(&db, &sigma, &p).unwrap();
        let global = globally_optimal_repairs(&db, &sigma, &p).unwrap();
        assert_eq!(pareto.len(), 4);
        assert_eq!(global.len(), 4);
    }

    #[test]
    fn full_priority_selects_one_repair() {
        let (db, sigma) = db();
        let mut p = PriorityRelation::new();
        p.prefer(Tid(1), Tid(2)).prefer(Tid(3), Tid(4));
        let pareto = pareto_optimal_repairs(&db, &sigma, &p).unwrap();
        assert_eq!(pareto.len(), 1);
        assert_eq!(pareto[0].deleted, [Tid(2), Tid(4)].into());
        let global = globally_optimal_repairs(&db, &sigma, &p).unwrap();
        assert_eq!(global.len(), 1);
        assert_eq!(global[0].deleted, pareto[0].deleted);
    }

    #[test]
    fn partial_priority_constrains_only_its_conflict() {
        let (db, sigma) = db();
        let mut p = PriorityRelation::new();
        p.prefer(Tid(1), Tid(2)); // only the first conflict is ranked
        let pareto = pareto_optimal_repairs(&db, &sigma, &p).unwrap();
        // ι1 must be kept, ι3/ι4 are still a free choice: 2 repairs.
        assert_eq!(pareto.len(), 2);
        assert!(pareto.iter().all(|r| !r.deleted.contains(&Tid(1))));
    }

    #[test]
    fn containment_chain_holds() {
        let (db, sigma) = db();
        let mut p = PriorityRelation::new();
        p.prefer(Tid(1), Tid(2));
        let all: BTreeSet<BTreeSet<Tid>> = s_repairs(&db, &sigma)
            .unwrap()
            .into_iter()
            .map(|r| r.deleted)
            .collect();
        let pareto: BTreeSet<BTreeSet<Tid>> = pareto_optimal_repairs(&db, &sigma, &p)
            .unwrap()
            .into_iter()
            .map(|r| r.deleted)
            .collect();
        let global: BTreeSet<BTreeSet<Tid>> = globally_optimal_repairs(&db, &sigma, &p)
            .unwrap()
            .into_iter()
            .map(|r| r.deleted)
            .collect();
        assert!(global.is_subset(&pareto));
        assert!(pareto.is_subset(&all));
    }

    #[test]
    fn global_can_be_stricter_than_pareto() {
        // Three-way conflict (one key group of 3) with a partial order:
        // ι1 ≻ ι2, ι1 ≻ ι3. Repairs keep exactly one tuple. Keeping ι1
        // globally dominates both others.
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("T", ["K", "V"]))
            .unwrap();
        db.insert("T", tuple![1, 10]).unwrap();
        db.insert("T", tuple![1, 20]).unwrap();
        db.insert("T", tuple![1, 30]).unwrap();
        let sigma = ConstraintSet::from_iter([KeyConstraint::new("T", ["K"])]);
        let mut p = PriorityRelation::new();
        p.prefer(Tid(1), Tid(2)).prefer(Tid(1), Tid(3));
        let pareto = pareto_optimal_repairs(&db, &sigma, &p).unwrap();
        let global = globally_optimal_repairs(&db, &sigma, &p).unwrap();
        assert_eq!(global.len(), 1);
        assert!(global[0].deleted.contains(&Tid(2)) && global[0].deleted.contains(&Tid(3)));
        assert!(global.len() <= pareto.len());
    }

    #[test]
    fn priority_relation_api() {
        let mut p = PriorityRelation::new();
        assert!(p.is_empty());
        p.prefer(Tid(1), Tid(1)); // self-preference ignored
        assert!(p.is_empty());
        p.prefer(Tid(1), Tid(2));
        assert!(p.beats(Tid(1), Tid(2)));
        assert!(!p.beats(Tid(2), Tid(1)));
    }
}
