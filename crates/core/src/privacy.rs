//! Data privacy through secrecy views and null-based virtual updates
//! (§4.3 of the paper; Bertossi–Li \[24\]).
//!
//! A *secrecy view* is a conjunctive query whose contents must stay hidden.
//! The mechanism of \[24\]: demand — as an integrity constraint — that the
//! view be **empty**, and *virtually* repair the instance with the
//! attribute-level null updates of §4.3. User queries are then answered
//! certainly over the class of virtual repairs: on every repair the view is
//! empty (a null never satisfies a join), so nothing a user can ask reveals
//! a secret tuple, while everything not implicated in a secret keeps its
//! exact answers.

use crate::attr_repair::attribute_repairs;
use crate::cqa::certain_over;
use cqa_constraints::{ConstraintSet, DenialConstraint};
use cqa_query::{ConjunctiveQuery, NullSemantics, UnionQuery};
use cqa_relation::{Database, RelationError, Tuple};
use std::collections::BTreeSet;

/// A secrecy view: a conjunctive query whose answers must be hidden.
#[derive(Debug, Clone)]
pub struct SecrecyView {
    /// The view definition.
    pub view: ConjunctiveQuery,
}

impl SecrecyView {
    /// Define a secrecy view.
    pub fn new(view: ConjunctiveQuery) -> SecrecyView {
        SecrecyView { view }
    }

    /// The emptiness constraint: `¬∃x̄ body(view)`.
    fn emptiness_constraint(&self) -> Result<DenialConstraint, RelationError> {
        let mut body = self.view.clone();
        body.head.clear();
        if !body.negated.is_empty() {
            return Err(RelationError::Parse(
                "secrecy views must be negation-free conjunctive queries".into(),
            ));
        }
        DenialConstraint::new("secrecy", body)
    }

    /// The virtual repairs: minimal attribute-null updates under which the
    /// view is empty.
    pub fn virtual_instances(&self, db: &Database) -> Result<Vec<Database>, RelationError> {
        let sigma = ConstraintSet::from_iter([self.emptiness_constraint()?]);
        Ok(attribute_repairs(db, &sigma)?
            .into_iter()
            .map(|r| r.db)
            .collect())
    }

    /// Answer a user query without leaking the view: certain answers over
    /// the virtual repairs (SQL null semantics, null-containing answers
    /// dropped).
    pub fn secure_answers(
        &self,
        db: &Database,
        query: &UnionQuery,
    ) -> Result<BTreeSet<Tuple>, RelationError> {
        Ok(certain_over(&self.virtual_instances(db)?, query))
    }

    /// Sanity predicate used by tests and audits: the view is empty on every
    /// virtual instance.
    pub fn is_hidden_everywhere(&self, db: &Database) -> Result<bool, RelationError> {
        let view_q = UnionQuery::single(self.view.clone());
        for inst in self.virtual_instances(db)? {
            if !cqa_query::eval_ucq(&inst, &view_q, NullSemantics::Sql)
                .into_iter()
                .filter(|t| !t.has_null())
                .collect::<BTreeSet<_>>()
                .is_empty()
            {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_query::parse_query;
    use cqa_relation::{tuple, RelationSchema};

    /// Personnel data where the salary of managers is secret.
    fn db() -> Database {
        let mut d = Database::new();
        d.create_relation(RelationSchema::new("Emp", ["Name", "Salary"]))
            .unwrap();
        d.create_relation(RelationSchema::new("Mgr", ["Name"]))
            .unwrap();
        d.insert("Emp", tuple!["page", 5000]).unwrap();
        d.insert("Emp", tuple!["smith", 3000]).unwrap();
        d.insert("Mgr", tuple!["page"]).unwrap();
        d
    }

    fn secret() -> SecrecyView {
        // V(n, s): Emp(n, s) ∧ Mgr(n) — manager salaries.
        SecrecyView::new(parse_query("V(n, s) :- Emp(n, s), Mgr(n)").unwrap())
    }

    #[test]
    fn view_is_empty_on_every_virtual_instance() {
        let db = db();
        let view = secret();
        assert!(!view.virtual_instances(&db).unwrap().is_empty());
        assert!(view.is_hidden_everywhere(&db).unwrap());
    }

    #[test]
    fn secret_data_is_not_answerable() {
        let db = db();
        let view = secret();
        // Asking for page's salary through the view join yields nothing…
        let q = UnionQuery::single(parse_query("Q(s) :- Emp('page', s), Mgr('page')").unwrap());
        assert!(view.secure_answers(&db, &q).unwrap().is_empty());
        // …and even the plain page row is not *certain* (some repair nulls
        // its cells, others null the Mgr tuple — the salary is protected
        // whenever the join is).
        let q2 = UnionQuery::single(parse_query("Q(s) :- Emp('page', s)").unwrap());
        let ans = view.secure_answers(&db, &q2).unwrap();
        assert!(!ans.contains(&tuple![5000]) || ans.is_empty());
    }

    #[test]
    fn non_secret_data_is_fully_answerable() {
        let db = db();
        let view = secret();
        let q = UnionQuery::single(parse_query("Q(s) :- Emp('smith', s)").unwrap());
        let ans = view.secure_answers(&db, &q).unwrap();
        assert_eq!(ans, [tuple![3000]].into());
    }

    #[test]
    fn empty_view_changes_nothing() {
        let mut d = db();
        let tid = d.relation("Mgr").unwrap().tid_of(&tuple!["page"]).unwrap();
        d.delete(tid).unwrap();
        let view = secret();
        // View already empty: the only virtual instance is D itself.
        let instances = view.virtual_instances(&d).unwrap();
        assert_eq!(instances.len(), 1);
        assert!(instances[0].same_content(&d));
        let q = UnionQuery::single(parse_query("Q(n, s) :- Emp(n, s)").unwrap());
        assert_eq!(view.secure_answers(&d, &q).unwrap().len(), 2);
    }

    #[test]
    fn negated_views_rejected() {
        let v = SecrecyView::new(parse_query("V(n) :- Mgr(n), not Emp(n, n)").unwrap());
        assert!(v.virtual_instances(&db()).is_err());
    }
}
