//! The repair representation shared by every repair semantics.
//!
//! A [`Repair`] is stored as a *copy-on-write delta* over a shared base
//! instance: the deleted tids and inserted tuples are the repair; the
//! materialized [`Database`] and the content-level [`Change`] set are built
//! lazily on first access and cached. Enumeration over `2^k` repairs
//! therefore never pays for an instance clone unless a caller explicitly
//! asks for one.

use cqa_relation::{Database, DeltaView, Tid, Tuple};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// One element of a symmetric difference `D Δ D'`: a deleted original tuple
/// or an inserted new tuple.
///
/// Changes are compared by *content*, not by tid, so deltas of different
/// repairs are set-comparable even when insertions received different tids.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Change {
    /// Deletion of an original tuple.
    Delete {
        /// Relation the tuple lived in.
        relation: String,
        /// The deleted tuple.
        tuple: Tuple,
    },
    /// Insertion of a new tuple.
    Insert {
        /// Relation the tuple goes to.
        relation: String,
        /// The inserted tuple.
        tuple: Tuple,
    },
}

impl fmt::Display for Change {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Change::Delete { relation, tuple } => write!(f, "- {relation}{tuple}"),
            Change::Insert { relation, tuple } => write!(f, "+ {relation}{tuple}"),
        }
    }
}

/// A repair of an original instance: a delta over a shared base, with the
/// repaired instance and the content-level delta computed on demand.
///
/// The `deleted`/`inserted` fields are the authoritative representation;
/// mutating them after [`Repair::db`] or [`Repair::delta`] has been called
/// desynchronizes the caches, so treat a repair as immutable once built.
#[derive(Debug, Clone)]
pub struct Repair {
    /// The shared original instance the delta applies to.
    base: Arc<Database>,
    /// Tids (of the *original* instance) that were deleted.
    pub deleted: BTreeSet<Tid>,
    /// Tuples that were inserted, as `(relation, tuple)`.
    pub inserted: Vec<(String, Tuple)>,
    /// Lazily materialized repaired instance.
    materialized: OnceLock<Database>,
    /// Lazily built symmetric difference as content-level changes.
    delta: OnceLock<BTreeSet<Change>>,
}

impl Repair {
    /// Build a repair from a shared original instance and a delta.
    ///
    /// The delta is validated up front (unknown tids, unknown relations,
    /// arity mismatches), so the lazy accessors are infallible. No instance
    /// is cloned: the repair holds `original` by `Arc`.
    pub fn from_delta_arc(
        original: &Arc<Database>,
        deleted: BTreeSet<Tid>,
        inserted: Vec<(String, Tuple)>,
    ) -> cqa_relation::Result<Repair> {
        for &tid in &deleted {
            if original.get(tid).is_none() {
                return Err(cqa_relation::RelationError::UnknownTid(tid.0));
            }
        }
        for (rel, tuple) in &inserted {
            original.check_insertable(rel, tuple)?;
        }
        Ok(Repair {
            base: Arc::clone(original),
            deleted,
            inserted,
            materialized: OnceLock::new(),
            delta: OnceLock::new(),
        })
    }

    /// Build a repair from the original instance and a delta.
    ///
    /// Convenience wrapper that clones `original` into a fresh [`Arc`];
    /// enumeration hot paths share one `Arc` via [`Repair::from_delta_arc`].
    pub fn from_delta(
        original: &Database,
        deleted: BTreeSet<Tid>,
        inserted: Vec<(String, Tuple)>,
    ) -> cqa_relation::Result<Repair> {
        Repair::from_delta_arc(&Arc::new(original.clone()), deleted, inserted)
    }

    /// The shared base (original) instance this repair applies to.
    pub fn base(&self) -> &Arc<Database> {
        &self.base
    }

    /// The repaired, consistent instance — materialized on first access and
    /// cached. Prefer [`Repair::view`] in hot paths: it never clones.
    pub fn db(&self) -> &Database {
        self.materialized.get_or_init(|| {
            let (db, _) = self
                .base
                .with_changes(&self.deleted, &self.inserted)
                .expect("repair delta validated at construction");
            db
        })
    }

    /// Consume the repair and return the materialized instance.
    pub fn into_db(mut self) -> Database {
        self.db();
        self.materialized.take().expect("just materialized")
    }

    /// A zero-clone view of the repaired instance over the shared base.
    ///
    /// View tids (including synthetic tids for insertions) match the tids
    /// [`Repair::db`] would assign, so answers agree byte-for-byte.
    pub fn view(&self) -> DeltaView<'_> {
        DeltaView::new(&self.base, &self.deleted, &self.inserted)
    }

    /// The symmetric difference as content-level changes, built on demand
    /// and cached.
    pub fn delta(&self) -> &BTreeSet<Change> {
        self.delta.get_or_init(|| {
            let mut delta = BTreeSet::new();
            for &tid in &self.deleted {
                let (rel, tuple) = self.base.get(tid).expect("deleted tids validated");
                delta.insert(Change::Delete {
                    relation: rel.to_string(),
                    tuple: tuple.clone(),
                });
            }
            for (rel, tuple) in &self.inserted {
                delta.insert(Change::Insert {
                    relation: rel.clone(),
                    tuple: tuple.clone(),
                });
            }
            delta
        })
    }

    /// `|D Δ D'|` — the cardinality the C-repair semantics minimizes.
    pub fn delta_size(&self) -> usize {
        self.delta().len()
    }

    /// Deletion-only repair?
    pub fn is_deletion_only(&self) -> bool {
        self.inserted.is_empty()
    }
}

impl fmt::Display for Repair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "repair (|Δ| = {}):", self.delta_size())?;
        for c in self.delta() {
            write!(f, " {c}")?;
        }
        Ok(())
    }
}

/// Keep only the ⊆-minimal deltas among `repairs` (the S-repair filter), and
/// drop content-duplicates.
pub fn retain_subset_minimal(repairs: Vec<Repair>) -> Vec<Repair> {
    let mut kept: Vec<Repair> = Vec::with_capacity(repairs.len());
    for r in repairs {
        if kept.iter().any(|k| k.delta().is_subset(r.delta())) {
            continue; // dominated (or duplicate)
        }
        kept.retain(|k| !r.delta().is_subset(k.delta()));
        kept.push(r);
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_relation::{tuple, Facts, RelationSchema};

    fn db() -> Database {
        let mut d = Database::new();
        d.create_relation(RelationSchema::new("R", ["A"])).unwrap();
        d.insert("R", tuple!["a"]).unwrap();
        d.insert("R", tuple!["b"]).unwrap();
        d
    }

    #[test]
    fn from_delta_builds_instance_and_delta() {
        let original = db();
        let r = Repair::from_delta(&original, [Tid(1)].into(), vec![("R".into(), tuple!["c"])])
            .unwrap();
        assert_eq!(r.delta_size(), 2);
        assert!(!r.is_deletion_only());
        assert!(!r.db().relation("R").unwrap().contains(&tuple!["a"]));
        assert!(r.db().relation("R").unwrap().contains(&tuple!["c"]));
        assert_eq!(original.total_tuples(), 2);
    }

    #[test]
    fn unknown_tid_in_delta_errors() {
        assert!(Repair::from_delta(&db(), [Tid(99)].into(), vec![]).is_err());
    }

    #[test]
    fn invalid_insertion_errors_up_front() {
        // Unknown relation and arity mismatch both fail at construction, not
        // at lazy materialization.
        assert!(
            Repair::from_delta(&db(), BTreeSet::new(), vec![("S".into(), tuple!["x"])]).is_err()
        );
        assert!(
            Repair::from_delta(&db(), BTreeSet::new(), vec![("R".into(), tuple!["x", "y"])])
                .is_err()
        );
    }

    #[test]
    fn materialization_is_lazy_and_cached() {
        let base = Arc::new(db());
        let r = Repair::from_delta_arc(&base, [Tid(1)].into(), vec![]).unwrap();
        // Nothing materialized yet.
        assert!(r.materialized.get().is_none());
        let first = r.db() as *const Database;
        let second = r.db() as *const Database;
        assert_eq!(first, second);
    }

    #[test]
    fn view_agrees_with_materialized_db() {
        let base = Arc::new(db());
        let r = Repair::from_delta_arc(&base, [Tid(2)].into(), vec![("R".into(), tuple!["c"])])
            .unwrap();
        let view = r.view();
        assert!(view.snapshot().same_content(r.db()));
        assert_eq!(view.relation_len("R"), r.db().relation("R").unwrap().len());
    }

    #[test]
    fn subset_minimal_filter() {
        let original = db();
        let small = Repair::from_delta(&original, [Tid(1)].into(), vec![]).unwrap();
        let big = Repair::from_delta(&original, [Tid(1), Tid(2)].into(), vec![]).unwrap();
        let other = Repair::from_delta(&original, [Tid(2)].into(), vec![]).unwrap();
        let kept = retain_subset_minimal(vec![big, small.clone(), other.clone()]);
        assert_eq!(kept.len(), 2);
        assert!(kept.iter().any(|r| r.delta() == small.delta()));
        assert!(kept.iter().any(|r| r.delta() == other.delta()));
    }

    #[test]
    fn duplicates_are_dropped() {
        let original = db();
        let a = Repair::from_delta(&original, [Tid(1)].into(), vec![]).unwrap();
        let b = Repair::from_delta(&original, [Tid(1)].into(), vec![]).unwrap();
        assert_eq!(retain_subset_minimal(vec![a, b]).len(), 1);
    }

    #[test]
    fn change_display() {
        let c = Change::Delete {
            relation: "R".into(),
            tuple: tuple!["a"],
        };
        assert_eq!(c.to_string(), "- R(a)");
        let i = Change::Insert {
            relation: "S".into(),
            tuple: tuple![1, 2],
        };
        assert_eq!(i.to_string(), "+ S(1, 2)");
    }
}
