//! The repair representation shared by every repair semantics.

use cqa_relation::{Database, Tid, Tuple};
use std::collections::BTreeSet;
use std::fmt;

/// One element of a symmetric difference `D Δ D'`: a deleted original tuple
/// or an inserted new tuple.
///
/// Changes are compared by *content*, not by tid, so deltas of different
/// repairs are set-comparable even when insertions received different tids.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Change {
    /// Deletion of an original tuple.
    Delete {
        /// Relation the tuple lived in.
        relation: String,
        /// The deleted tuple.
        tuple: Tuple,
    },
    /// Insertion of a new tuple.
    Insert {
        /// Relation the tuple goes to.
        relation: String,
        /// The inserted tuple.
        tuple: Tuple,
    },
}

impl fmt::Display for Change {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Change::Delete { relation, tuple } => write!(f, "- {relation}{tuple}"),
            Change::Insert { relation, tuple } => write!(f, "+ {relation}{tuple}"),
        }
    }
}

/// A repair of an original instance: the repaired database plus the delta
/// that produced it.
#[derive(Debug, Clone)]
pub struct Repair {
    /// The repaired, consistent instance.
    pub db: Database,
    /// Tids (of the *original* instance) that were deleted.
    pub deleted: BTreeSet<Tid>,
    /// Tuples that were inserted, as `(relation, tuple)`.
    pub inserted: Vec<(String, Tuple)>,
    /// The symmetric difference as content-level changes.
    pub delta: BTreeSet<Change>,
}

impl Repair {
    /// Build a repair from the original instance and a delta.
    pub fn from_delta(
        original: &Database,
        deleted: BTreeSet<Tid>,
        inserted: Vec<(String, Tuple)>,
    ) -> cqa_relation::Result<Repair> {
        let mut delta = BTreeSet::new();
        for &tid in &deleted {
            let (rel, tuple) = original
                .get(tid)
                .ok_or(cqa_relation::RelationError::UnknownTid(tid.0))?;
            delta.insert(Change::Delete {
                relation: rel.to_string(),
                tuple: tuple.clone(),
            });
        }
        for (rel, tuple) in &inserted {
            delta.insert(Change::Insert {
                relation: rel.clone(),
                tuple: tuple.clone(),
            });
        }
        let (db, _) = original.with_changes(&deleted, &inserted)?;
        Ok(Repair {
            db,
            deleted,
            inserted,
            delta,
        })
    }

    /// `|D Δ D'|` — the cardinality the C-repair semantics minimizes.
    pub fn delta_size(&self) -> usize {
        self.delta.len()
    }

    /// Deletion-only repair?
    pub fn is_deletion_only(&self) -> bool {
        self.inserted.is_empty()
    }
}

impl fmt::Display for Repair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "repair (|Δ| = {}):", self.delta_size())?;
        for c in &self.delta {
            write!(f, " {c}")?;
        }
        Ok(())
    }
}

/// Keep only the ⊆-minimal deltas among `repairs` (the S-repair filter), and
/// drop content-duplicates.
pub fn retain_subset_minimal(repairs: Vec<Repair>) -> Vec<Repair> {
    let mut kept: Vec<Repair> = Vec::with_capacity(repairs.len());
    for r in repairs {
        if kept.iter().any(|k| k.delta.is_subset(&r.delta)) {
            continue; // dominated (or duplicate)
        }
        kept.retain(|k| !r.delta.is_subset(&k.delta));
        kept.push(r);
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_relation::{tuple, RelationSchema};

    fn db() -> Database {
        let mut d = Database::new();
        d.create_relation(RelationSchema::new("R", ["A"])).unwrap();
        d.insert("R", tuple!["a"]).unwrap();
        d.insert("R", tuple!["b"]).unwrap();
        d
    }

    #[test]
    fn from_delta_builds_instance_and_delta() {
        let original = db();
        let r = Repair::from_delta(&original, [Tid(1)].into(), vec![("R".into(), tuple!["c"])])
            .unwrap();
        assert_eq!(r.delta_size(), 2);
        assert!(!r.is_deletion_only());
        assert!(!r.db.relation("R").unwrap().contains(&tuple!["a"]));
        assert!(r.db.relation("R").unwrap().contains(&tuple!["c"]));
        assert_eq!(original.total_tuples(), 2);
    }

    #[test]
    fn unknown_tid_in_delta_errors() {
        assert!(Repair::from_delta(&db(), [Tid(99)].into(), vec![]).is_err());
    }

    #[test]
    fn subset_minimal_filter() {
        let original = db();
        let small = Repair::from_delta(&original, [Tid(1)].into(), vec![]).unwrap();
        let big = Repair::from_delta(&original, [Tid(1), Tid(2)].into(), vec![]).unwrap();
        let other = Repair::from_delta(&original, [Tid(2)].into(), vec![]).unwrap();
        let kept = retain_subset_minimal(vec![big, small.clone(), other.clone()]);
        assert_eq!(kept.len(), 2);
        assert!(kept.iter().any(|r| r.delta == small.delta));
        assert!(kept.iter().any(|r| r.delta == other.delta));
    }

    #[test]
    fn duplicates_are_dropped() {
        let original = db();
        let a = Repair::from_delta(&original, [Tid(1)].into(), vec![]).unwrap();
        let b = Repair::from_delta(&original, [Tid(1)].into(), vec![]).unwrap();
        assert_eq!(retain_subset_minimal(vec![a, b]).len(), 1);
    }

    #[test]
    fn change_display() {
        let c = Change::Delete {
            relation: "R".into(),
            tuple: tuple!["a"],
        };
        assert_eq!(c.to_string(), "- R(a)");
        let i = Change::Insert {
            relation: "S".into(),
            tuple: tuple![1, 2],
        };
        assert_eq!(i.to_string(), "+ S(1, 2)");
    }
}
