//! Certain-answer FO rewriting for self-join-free conjunctive queries under
//! primary keys — the mature theory the paper credits to Fuxman–Miller \[64\]
//! and Koutris–Wijsen \[77, 109\].
//!
//! The decision procedure is the **attack graph**: for each query atom `F`,
//! compute the variable closure `F⁺` of `F`'s key variables under the FDs
//! `key(G) → vars(G)` contributed by the *other* atoms; `F` attacks `G` if
//! `G` is reachable from `F` through variables outside `F⁺`. If the attack
//! graph is acyclic, the certain answers are definable in FO and this module
//! constructs the rewriting recursively (processing an unattacked atom
//! first); if it is cyclic, CQA for the query is coNP-complete and
//! [`rewrite_key_query`] returns [`KeyRewriteError::CyclicAttackGraph`] so
//! the caller can fall back to repair enumeration.

use cqa_query::{Atom, CmpOp, Comparison, ConjunctiveQuery, Fo, FoQuery, Term, Var, VarTable};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Primary keys by relation name → key attribute positions.
///
/// A relation absent from the map is treated as *all-key* (it can never
/// violate its key, so it contributes nothing to repairs).
pub type KeyPositions = BTreeMap<String, Vec<usize>>;

/// Why a query could not be rewritten.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyRewriteError {
    /// The query has a self-join; the dichotomy theory covers SJF queries.
    SelfJoin,
    /// The query has negated atoms or comparisons.
    UnsupportedFeatures,
    /// The attack graph is cyclic: CQA for this query is coNP-complete.
    CyclicAttackGraph {
        /// A pair of mutually attacking atom indices witnessing the cycle.
        witness: (usize, usize),
    },
}

impl fmt::Display for KeyRewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyRewriteError::SelfJoin => {
                f.write_str("query has a self-join; key rewriting covers self-join-free queries")
            }
            KeyRewriteError::UnsupportedFeatures => {
                f.write_str("query has negation or comparisons; key rewriting covers plain CQs")
            }
            KeyRewriteError::CyclicAttackGraph { witness } => write!(
                f,
                "attack graph is cyclic (atoms {} and {} attack each other): CQA is coNP-complete",
                witness.0, witness.1
            ),
        }
    }
}

impl std::error::Error for KeyRewriteError {}

/// The attack graph of a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackGraph {
    /// `attacks[i]` = indices of atoms attacked by atom `i`.
    pub attacks: Vec<BTreeSet<usize>>,
}

impl AttackGraph {
    /// Is the graph acyclic? (Attack graphs have the property that any cycle
    /// induces a 2-cycle, so mutual attack detection suffices; we check full
    /// reachability cycles anyway for robustness.)
    pub fn is_acyclic(&self) -> bool {
        self.find_cycle().is_none()
    }

    /// A witnessing pair on some cycle, if any.
    pub fn find_cycle(&self) -> Option<(usize, usize)> {
        let n = self.attacks.len();
        // Transitive closure (tiny n).
        let mut reach = self.attacks.clone();
        for _ in 0..n {
            for i in 0..n {
                let mut extra = BTreeSet::new();
                for &j in &reach[i] {
                    extra.extend(reach[j].iter().copied());
                }
                reach[i].extend(extra);
            }
        }
        for i in 0..n {
            for &j in &reach[i] {
                // Skip the self-loop the closure adds to every atom on a
                // cycle: the witness must name the two distinct endpoints.
                if j != i && reach[j].contains(&i) {
                    return Some((i.min(j), i.max(j)));
                }
            }
        }
        None
    }

    /// Atoms with no incoming attack.
    pub fn unattacked(&self) -> Vec<usize> {
        let n = self.attacks.len();
        (0..n)
            .filter(|&i| (0..n).all(|j| !self.attacks[j].contains(&i)))
            .collect()
    }
}

fn key_positions_of(atom: &Atom, keys: &KeyPositions) -> Vec<usize> {
    keys.get(&atom.relation)
        .cloned()
        .unwrap_or_else(|| (0..atom.terms.len()).collect())
}

fn key_vars(atom: &Atom, keys: &KeyPositions) -> BTreeSet<Var> {
    key_positions_of(atom, keys)
        .iter()
        .filter_map(|&p| atom.terms.get(p).and_then(Term::as_var))
        .collect()
}

fn all_vars(atom: &Atom) -> BTreeSet<Var> {
    atom.vars().collect()
}

/// Closure of `seed` under the FDs `key(G) → vars(G)` for `G ≠ skip`.
fn closure(
    atoms: &[Atom],
    skip: usize,
    keys: &KeyPositions,
    seed: &BTreeSet<Var>,
) -> BTreeSet<Var> {
    let mut out = seed.clone();
    loop {
        let mut changed = false;
        for (i, g) in atoms.iter().enumerate() {
            if i == skip {
                continue;
            }
            if key_vars(g, keys).iter().all(|v| out.contains(v)) {
                for v in all_vars(g) {
                    changed |= out.insert(v);
                }
            }
        }
        if !changed {
            return out;
        }
    }
}

/// Build the attack graph of `atoms`, treating `frozen` variables (the free
/// variables of the query) as constants.
pub fn attack_graph_of(atoms: &[Atom], keys: &KeyPositions, frozen: &BTreeSet<Var>) -> AttackGraph {
    let n = atoms.len();
    let mut attacks = vec![BTreeSet::new(); n];
    for f in 0..n {
        let mut seed: BTreeSet<Var> = key_vars(&atoms[f], keys);
        seed.extend(frozen.iter().copied());
        let plus = closure(atoms, f, keys, &seed);
        // BFS over atoms through shared variables outside `plus`.
        let outside = |a: &Atom, b: &Atom| -> bool {
            let va = all_vars(a);
            all_vars(b)
                .intersection(&va)
                .any(|v| !plus.contains(v) && !frozen.contains(v))
        };
        let mut reached: BTreeSet<usize> = BTreeSet::new();
        let mut frontier = vec![f];
        while let Some(h) = frontier.pop() {
            for g in 0..n {
                if g != f && !reached.contains(&g) && outside(&atoms[h], &atoms[g]) {
                    reached.insert(g);
                    frontier.push(g);
                }
            }
        }
        attacks[f] = reached;
    }
    AttackGraph { attacks }
}

/// The attack graph of a query (frozen = its head variables).
pub fn attack_graph(q: &ConjunctiveQuery, keys: &KeyPositions) -> AttackGraph {
    attack_graph_of(&q.atoms, keys, &q.head_vars())
}

/// Rewrite a self-join-free CQ under primary keys into an FO query computing
/// its certain answers on any (possibly inconsistent) instance.
pub fn rewrite_key_query(
    q: &ConjunctiveQuery,
    keys: &KeyPositions,
) -> Result<FoQuery, KeyRewriteError> {
    if !q.is_self_join_free() {
        return Err(KeyRewriteError::SelfJoin);
    }
    if !q.negated.is_empty() || !q.comparisons.is_empty() {
        return Err(KeyRewriteError::UnsupportedFeatures);
    }
    let mut vars = q.vars.clone();
    let frozen: BTreeSet<Var> = q.head_vars();
    let formula = rewrite_rec(&q.atoms, keys, &frozen, &mut vars)?;
    let free: Vec<Var> = q.head.iter().filter_map(Term::as_var).collect();
    Ok(FoQuery {
        vars,
        free,
        formula,
    })
}

/// Surface the attack-graph dichotomy as a stable diagnostic, so
/// `repairctl analyze --query` reports the complexity class instead of that
/// knowledge living only inside the planner: `Q003` when the graph is
/// acyclic (certain answers FO-rewritable, PTIME route), `Q004` with the
/// witness pair when it is cyclic (CQA coNP-complete, repair enumeration).
/// Returns `None` when the query is outside the dichotomy's scope — a
/// self-join, or negation/comparisons.
pub fn rewritability_diagnostic(
    q: &ConjunctiveQuery,
    keys: &KeyPositions,
) -> Option<cqa_analysis::Diagnostic> {
    use cqa_analysis::{DiagCode, Diagnostic};
    if !q.is_self_join_free() || !q.negated.is_empty() || !q.comparisons.is_empty() {
        return None;
    }
    let graph = attack_graph(q, keys);
    Some(match graph.find_cycle() {
        None => Diagnostic::new(
            DiagCode::FoRewritable,
            format!(
                "attack graph over {} atom(s) is acyclic: certain answers are \
                 FO-rewritable (PTIME, see `repairctl sql`)",
                q.atoms.len()
            ),
        ),
        Some((a, b)) => Diagnostic::new(
            DiagCode::AttackCycle,
            format!(
                "attack graph is cyclic — atoms {} ({}) and {} ({}) attack each \
                 other: CQA is coNP-complete; answering falls back to repair \
                 enumeration",
                a, q.atoms[a].relation, b, q.atoms[b].relation
            ),
        ),
    })
}

fn substitute(atom: &Atom, sigma: &BTreeMap<Var, Var>) -> Atom {
    Atom::new(
        atom.relation.clone(),
        atom.terms
            .iter()
            .map(|t| match t {
                Term::Var(v) => Term::Var(*sigma.get(v).unwrap_or(v)),
                c => c.clone(),
            })
            .collect(),
    )
}

fn rewrite_rec(
    atoms: &[Atom],
    keys: &KeyPositions,
    frozen: &BTreeSet<Var>,
    vars: &mut VarTable,
) -> Result<Fo, KeyRewriteError> {
    if atoms.is_empty() {
        return Ok(Fo::And(Vec::new())); // true
    }
    let graph = attack_graph_of(atoms, keys, frozen);
    if let Some(witness) = graph.find_cycle() {
        return Err(KeyRewriteError::CyclicAttackGraph { witness });
    }
    let f_idx = *graph
        .unattacked()
        .first()
        .expect("acyclic graph has an unattacked atom");
    let f = &atoms[f_idx];
    let key_pos = key_positions_of(f, keys);
    let kvars = key_vars(f, keys);

    // Fresh variables for every non-key position; conditions enforcing F's
    // non-key pattern on them; substitution for the purely-non-key vars.
    let mut conditions: Vec<Fo> = Vec::new();
    let mut sigma: BTreeMap<Var, Var> = BTreeMap::new();
    let mut fresh_terms: Vec<Term> = Vec::with_capacity(f.terms.len());
    let mut fresh_vars: Vec<Var> = Vec::new();
    for (p, t) in f.terms.iter().enumerate() {
        if key_pos.contains(&p) {
            fresh_terms.push(t.clone());
            continue;
        }
        let y = vars.fresh();
        fresh_vars.push(y);
        fresh_terms.push(Term::Var(y));
        match t {
            Term::Const(c) => {
                conditions.push(Fo::Cmp(Comparison::new(Term::Var(y), CmpOp::Eq, c.clone())));
            }
            Term::Var(v) => {
                if frozen.contains(v) || kvars.contains(v) {
                    conditions.push(Fo::Cmp(Comparison::new(
                        Term::Var(y),
                        CmpOp::Eq,
                        Term::Var(*v),
                    )));
                } else if let Some(&prev) = sigma.get(v) {
                    conditions.push(Fo::Cmp(Comparison::new(
                        Term::Var(y),
                        CmpOp::Eq,
                        Term::Var(prev),
                    )));
                } else {
                    sigma.insert(*v, y);
                }
            }
        }
    }

    // Recurse on the remaining atoms with F's non-key vars replaced by the
    // fresh copies, everything now in scope frozen.
    let rest: Vec<Atom> = atoms
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != f_idx)
        .map(|(_, a)| substitute(a, &sigma))
        .collect();
    let mut frozen2 = frozen.clone();
    frozen2.extend(kvars.iter().copied());
    frozen2.extend(sigma.values().copied());
    let rec = rewrite_rec(&rest, keys, &frozen2, vars)?;

    // ∀ȳ' (R(x̄, ȳ') → conditions ∧ rec), as ¬∃ȳ' (R(x̄, ȳ') ∧ ¬(…)).
    let mut inner_parts = conditions;
    inner_parts.push(rec);
    let inner = Fo::and(inner_parts);
    let forall = Fo::Not(Box::new(Fo::Exists(
        fresh_vars,
        Box::new(Fo::And(vec![
            Fo::Atom(Atom::new(f.relation.clone(), fresh_terms)),
            Fo::Not(Box::new(inner)),
        ])),
    )));

    let step = Fo::And(vec![Fo::Atom(f.clone()), forall]);
    let local: Vec<Var> = all_vars(f)
        .into_iter()
        .filter(|v| !frozen.contains(v))
        .collect();
    Ok(if local.is_empty() {
        step
    } else {
        Fo::Exists(local, Box::new(step))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cqa::{consistent_answers, RepairClass};
    use cqa_constraints::{ConstraintSet, KeyConstraint};
    use cqa_query::{eval_fo, parse_query, NullSemantics, UnionQuery};
    use cqa_relation::{tuple, Database, RelationSchema, Tuple};
    use std::collections::BTreeSet;

    fn employee_db() -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Employee", ["Name", "Salary"]))
            .unwrap();
        db.insert("Employee", tuple!["page", 5000]).unwrap();
        db.insert("Employee", tuple!["page", 8000]).unwrap();
        db.insert("Employee", tuple!["smith", 3000]).unwrap();
        db.insert("Employee", tuple!["stowe", 7000]).unwrap();
        db
    }

    fn kp(entries: &[(&str, &[usize])]) -> KeyPositions {
        entries
            .iter()
            .map(|(r, p)| (r.to_string(), p.to_vec()))
            .collect()
    }

    #[test]
    fn q1_rewriting_matches_example_3_4() {
        let q = parse_query("Q(x, y) :- Employee(x, y)").unwrap();
        let keys = kp(&[("Employee", &[0])]);
        let fo = rewrite_key_query(&q, &keys).unwrap();
        let ans = eval_fo(&employee_db(), &fo, NullSemantics::Structural);
        assert_eq!(ans, [tuple!["smith", 3000], tuple!["stowe", 7000]].into());
    }

    #[test]
    fn q2_projection_keeps_page() {
        let q = parse_query("Q(x) :- Employee(x, y)").unwrap();
        let keys = kp(&[("Employee", &[0])]);
        let fo = rewrite_key_query(&q, &keys).unwrap();
        let ans = eval_fo(&employee_db(), &fo, NullSemantics::Structural);
        assert_eq!(
            ans,
            [tuple!["page"], tuple!["smith"], tuple!["stowe"]].into()
        );
    }

    #[test]
    fn two_atom_acyclic_rewriting_agrees_with_reference_cqa() {
        // q(x) :- R(x, y), S(y, z) under keys R[0], S[0].
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("R", ["A", "B"]))
            .unwrap();
        db.create_relation(RelationSchema::new("S", ["A", "B"]))
            .unwrap();
        db.insert("R", tuple![1, 10]).unwrap();
        db.insert("R", tuple![1, 11]).unwrap(); // key conflict on R
        db.insert("R", tuple![2, 12]).unwrap();
        db.insert("S", tuple![10, 100]).unwrap();
        db.insert("S", tuple![11, 101]).unwrap();
        db.insert("S", tuple![12, 102]).unwrap();
        db.insert("S", tuple![12, 103]).unwrap(); // key conflict on S
        let q = parse_query("Q(x) :- R(x, y), S(y, z)").unwrap();
        let keys = kp(&[("R", &[0]), ("S", &[0])]);
        let fo = rewrite_key_query(&q, &keys).unwrap();
        let rewritten = eval_fo(&db, &fo, NullSemantics::Structural);
        let sigma = ConstraintSet::from_iter([
            KeyConstraint::new("R", ["A"]),
            KeyConstraint::new("S", ["A"]),
        ]);
        let reference =
            consistent_answers(&db, &sigma, &UnionQuery::single(q), &RepairClass::Subset).unwrap();
        assert_eq!(rewritten, reference);
        // x = 1: both branches (y=10, y=11) have S entries → certain.
        assert!(rewritten.contains(&tuple![1]));
        // x = 2 is certain too: S(12, ·) exists in every repair.
        assert!(rewritten.contains(&tuple![2]));
    }

    #[test]
    fn cyclic_attack_graph_detected() {
        let q = parse_query("Q() :- R(x, y), S(y, x)").unwrap();
        let keys = kp(&[("R", &[0]), ("S", &[0])]);
        let g = attack_graph(&q, &keys);
        assert!(!g.is_acyclic());
        match rewrite_key_query(&q, &keys) {
            Err(KeyRewriteError::CyclicAttackGraph { witness: (a, b) }) => {
                // The witness must name the two distinct cycle endpoints,
                // not the self-loop the transitive closure adds.
                assert_eq!((a, b), (0, 1));
            }
            other => panic!("expected cyclic error, got {other:?}"),
        }
    }

    #[test]
    fn self_join_rejected() {
        let q = parse_query("Q() :- R(x, y), R(y, x)").unwrap();
        let keys = kp(&[("R", &[0])]);
        assert_eq!(rewrite_key_query(&q, &keys), Err(KeyRewriteError::SelfJoin));
    }

    #[test]
    fn comparisons_rejected() {
        let q = parse_query("Q(x) :- R(x, y), y > 1").unwrap();
        let keys = kp(&[("R", &[0])]);
        assert_eq!(
            rewrite_key_query(&q, &keys),
            Err(KeyRewriteError::UnsupportedFeatures)
        );
    }

    #[test]
    fn constants_in_nonkey_positions() {
        // q(x) :- R(x, 'target'): certain iff every tuple of x's key group
        // has value 'target'.
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("R", ["K", "V"]))
            .unwrap();
        db.insert("R", tuple![1, "target"]).unwrap();
        db.insert("R", tuple![1, "other"]).unwrap();
        db.insert("R", tuple![2, "target"]).unwrap();
        let q = parse_query("Q(x) :- R(x, 'target')").unwrap();
        let keys = kp(&[("R", &[0])]);
        let fo = rewrite_key_query(&q, &keys).unwrap();
        let ans = eval_fo(&db, &fo, NullSemantics::Structural);
        assert_eq!(ans, [tuple![2]].into());
        let sigma = ConstraintSet::from_iter([KeyConstraint::new("R", ["K"])]);
        let reference =
            consistent_answers(&db, &sigma, &UnionQuery::single(q), &RepairClass::Subset).unwrap();
        assert_eq!(ans, reference);
    }

    #[test]
    fn boolean_query_certainty() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("R", ["K", "V"]))
            .unwrap();
        db.insert("R", tuple![1, "a"]).unwrap();
        db.insert("R", tuple![1, "b"]).unwrap();
        let keys = kp(&[("R", &[0])]);
        // ∃x, y R(x, y) is certainly true (some tuple survives per group).
        let q = parse_query("Q() :- R(x, y)").unwrap();
        let fo = rewrite_key_query(&q, &keys).unwrap();
        let ans = eval_fo(&db, &fo, NullSemantics::Structural);
        assert_eq!(ans, BTreeSet::from([Tuple::new(vec![])]));
        // R(x, 'a') is not certain.
        let q2 = parse_query("Q() :- R(x, 'a')").unwrap();
        let fo2 = rewrite_key_query(&q2, &keys).unwrap();
        assert!(eval_fo(&db, &fo2, NullSemantics::Structural).is_empty());
    }

    #[test]
    fn randomized_agreement_with_reference_cqa() {
        // Deterministic pseudo-random sweep: the rewriting must agree with
        // repair-based CQA on every generated instance.
        let keys = kp(&[("R", &[0]), ("S", &[0])]);
        let q = parse_query("Q(x) :- R(x, y), S(y, z)").unwrap();
        let sigma = ConstraintSet::from_iter([
            KeyConstraint::new("R", ["A"]),
            KeyConstraint::new("S", ["A"]),
        ]);
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move |m: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % m
        };
        for _case in 0..25 {
            let mut db = Database::new();
            db.create_relation(RelationSchema::new("R", ["A", "B"]))
                .unwrap();
            db.create_relation(RelationSchema::new("S", ["A", "B"]))
                .unwrap();
            for _ in 0..6 {
                db.insert("R", tuple![next(3) as i64, next(4) as i64])
                    .unwrap();
            }
            for _ in 0..6 {
                db.insert("S", tuple![next(4) as i64, next(3) as i64])
                    .unwrap();
            }
            let fo = rewrite_key_query(&q, &keys).unwrap();
            let rewritten = eval_fo(&db, &fo, NullSemantics::Structural);
            let reference = consistent_answers(
                &db,
                &sigma,
                &UnionQuery::single(q.clone()),
                &RepairClass::Subset,
            )
            .unwrap();
            assert_eq!(rewritten, reference, "mismatch on instance:\n{db}");
        }
    }
}
