//! Consistent-answer query rewriting.
//!
//! Two generations of rewriting, as the paper tells the story:
//!
//! * [`residue`] — the original 1999 method (§2.2, Example 3.4): resolve
//!   query literals against the clausal forms of the ICs and append the
//!   residues. Historically first, correct on the identified positive cases,
//!   no general guarantee.
//! * [`keys`] — the mature theory for self-join-free conjunctive queries
//!   under primary keys (Fuxman–Miller \[64\], Koutris–Wijsen \[77\]): build the
//!   **attack graph**; if it is acyclic the certain answers are computable by
//!   an effectively constructible FO query, otherwise CQA for the query is
//!   coNP-complete and the caller must fall back to repair enumeration.

pub mod keys;
pub mod residue;

pub use keys::{attack_graph, rewrite_key_query, AttackGraph, KeyRewriteError};
pub use residue::{residue_rewrite, ResidueRewriting};
