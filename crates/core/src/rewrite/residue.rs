//! Residue-based rewriting — the original method of the PODS'99 line of work
//! as told in §2.2 and Example 3.4 of the paper.
//!
//! Each IC, viewed as a clause, is resolved against the query's positive
//! literals; the surviving disjuncts ("residues") are appended to the query:
//!
//! * An inclusion dependency `¬Supply(x,y,z) ∨ Articles(z)` resolved with the
//!   query atom `Supply(x,y,z)` leaves the positive residue `Articles(z)`
//!   (Example 2.2).
//! * A key/FD clause `¬R(x̄,y) ∨ ¬R(x̄,z) ∨ y = z` resolved with `R(x̄,y)`
//!   leaves `¬∃z (R(x̄,z) ∧ z ≠ y)` (Example 3.4).
//!
//! Residues can trigger further residues; the loop runs to a fix-point with a
//! cycle guard (the termination concern the paper mentions). **Scope**: the
//! method is sound and complete only on the positive cases identified in
//! \[3\] (e.g. quantifier-free queries under keys and acyclic INDs); use
//! [`crate::rewrite::keys`] for the fully characterized key-constraint case,
//! and repair enumeration as the general fallback.

use cqa_constraints::ConstraintSet;
use cqa_query::{Atom, CmpOp, Comparison, ConjunctiveQuery, Fo, FoQuery, Term, Var, VarTable};
use cqa_relation::RelationError;
use std::collections::BTreeMap;

/// The result of residue rewriting.
#[derive(Debug, Clone)]
pub struct ResidueRewriting {
    /// The rewritten query.
    pub query: FoQuery,
    /// Number of residues appended.
    pub residues_applied: usize,
    /// `false` if the fix-point loop hit the iteration cap (cyclic ICs).
    pub terminated: bool,
}

/// Try to unify a constraint body atom against a query atom; returns the
/// substitution constraint-var → query term.
fn unify(constraint_atom: &Atom, query_atom: &Atom) -> Option<BTreeMap<Var, Term>> {
    if constraint_atom.relation != query_atom.relation
        || constraint_atom.terms.len() != query_atom.terms.len()
    {
        return None;
    }
    let mut theta: BTreeMap<Var, Term> = BTreeMap::new();
    for (c, q) in constraint_atom.terms.iter().zip(&query_atom.terms) {
        match c {
            Term::Const(v) => {
                // A constraint constant must meet the same query constant; a
                // query variable would need an equality residue — out of
                // scope for the classic method.
                if q.as_const() != Some(v) {
                    return None;
                }
            }
            Term::Var(cv) => match theta.get(cv) {
                Some(bound) if bound != q => return None,
                Some(_) => {}
                None => {
                    theta.insert(*cv, q.clone());
                }
            },
        }
    }
    Some(theta)
}

/// Run the positive-residue fix-point for single-body-atom tgds.
fn positive_residues(
    query: &ConjunctiveQuery,
    sigma: &ConstraintSet,
) -> (VarTable, Vec<Atom>, usize, bool) {
    const MAX_ROUNDS: usize = 64;
    let mut vars = query.vars.clone();
    let mut atoms = query.atoms.clone();
    let mut residues_applied = 0usize;
    let mut terminated = true;

    let tgds: Vec<_> = sigma
        .tgds()
        .filter(|t| t.body().atoms.len() == 1 && t.body().comparisons.is_empty())
        .collect();

    for round in 0.. {
        if round >= MAX_ROUNDS {
            terminated = false;
            break;
        }
        let mut added = false;
        let snapshot = atoms.clone();
        for tgd in &tgds {
            let body_atom = &tgd.body().atoms[0];
            for qa in &snapshot {
                let Some(theta) = unify(body_atom, qa) else {
                    continue;
                };
                // Residue head under θ, existentials freshened.
                let mut fresh: BTreeMap<Var, Var> = BTreeMap::new();
                let head_terms: Vec<Term> = tgd
                    .head()
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Const(c) => Term::Const(c.clone()),
                        Term::Var(v) => theta.get(v).cloned().unwrap_or_else(|| {
                            Term::Var(*fresh.entry(*v).or_insert_with(|| vars.fresh()))
                        }),
                    })
                    .collect();
                let residue = Atom::new(tgd.head().relation.clone(), head_terms);
                // Dedup modulo the freshened positions: an existing atom
                // subsumes the residue if it agrees on every bound position.
                let already = atoms.iter().any(|a| {
                    a.relation == residue.relation
                        && a.terms.iter().zip(&residue.terms).all(|(x, y)| {
                            x == y
                                || matches!(y, Term::Var(fv) if fresh.values().any(|nv| nv == fv))
                        })
                });
                if !already {
                    atoms.push(residue);
                    residues_applied += 1;
                    added = true;
                }
            }
        }
        if !added {
            break;
        }
    }
    (vars, atoms, residues_applied, terminated)
}

/// Apply the residue method for the tgd (inclusion-dependency) part of
/// `sigma`. FDs need attribute positions; use
/// [`residue_rewrite_with_fds`] to add their negative residues.
pub fn residue_rewrite(
    query: &ConjunctiveQuery,
    sigma: &ConstraintSet,
) -> Result<ResidueRewriting, RelationError> {
    let (vars, atoms, residues_applied, terminated) = positive_residues(query, sigma);
    build_result(query, vars, atoms, Vec::new(), residues_applied, terminated)
}

/// Residue rewriting with FDs given by attribute *positions*
/// (`(relation, lhs_positions, rhs_position)`), producing the `¬∃` residues
/// of Example 3.4 on top of the tgd residues of [`residue_rewrite`].
pub fn residue_rewrite_with_fds(
    query: &ConjunctiveQuery,
    sigma: &ConstraintSet,
    fds_by_position: &[(String, Vec<usize>, usize)],
) -> Result<ResidueRewriting, RelationError> {
    let (mut vars, atoms, mut residues_applied, terminated) = positive_residues(query, sigma);

    let mut neg_residues: Vec<Fo> = Vec::new();
    for (rel, lhs, rhs) in fds_by_position {
        for qa in &atoms {
            if &qa.relation != rel
                || *rhs >= qa.terms.len()
                || lhs.iter().any(|&p| p >= qa.terms.len())
            {
                continue;
            }
            // Residue: ¬∃ fresh (R(lhs shared, z at rhs, fresh elsewhere) ∧ z ≠ t_rhs)
            let z = vars.fresh();
            let second: Vec<Term> = (0..qa.terms.len())
                .map(|i| {
                    if lhs.contains(&i) {
                        qa.terms[i].clone()
                    } else if i == *rhs {
                        Term::Var(z)
                    } else {
                        Term::Var(vars.fresh())
                    }
                })
                .collect();
            let original_vars: Vec<Var> = qa.terms.iter().filter_map(Term::as_var).collect();
            let ex_vars: Vec<Var> = second
                .iter()
                .filter_map(Term::as_var)
                .filter(|v| !original_vars.contains(v))
                .collect();
            let inner = Fo::And(vec![
                Fo::Atom(Atom::new(rel.clone(), second)),
                Fo::Cmp(Comparison::new(
                    Term::Var(z),
                    CmpOp::Ne,
                    qa.terms[*rhs].clone(),
                )),
            ]);
            neg_residues.push(Fo::Not(Box::new(Fo::Exists(ex_vars, Box::new(inner)))));
            residues_applied += 1;
        }
    }

    build_result(
        query,
        vars,
        atoms,
        neg_residues,
        residues_applied,
        terminated,
    )
}

fn build_result(
    query: &ConjunctiveQuery,
    vars: VarTable,
    atoms: Vec<Atom>,
    neg_residues: Vec<Fo>,
    residues_applied: usize,
    terminated: bool,
) -> Result<ResidueRewriting, RelationError> {
    // Assemble: ∃(non-head vars) [ atoms ∧ comparisons ∧ ¬negated ∧ ¬residues ].
    let head_vars: Vec<Var> = query.head.iter().filter_map(Term::as_var).collect();
    let mut parts: Vec<Fo> = atoms.into_iter().map(Fo::Atom).collect();
    parts.extend(query.comparisons.iter().cloned().map(Fo::Cmp));
    parts.extend(
        query
            .negated
            .iter()
            .cloned()
            .map(|a| Fo::Not(Box::new(Fo::Atom(a)))),
    );
    parts.extend(neg_residues);
    let body = Fo::and(parts);
    let mut existential: Vec<Var> = body
        .free_vars()
        .into_iter()
        .filter(|v| !head_vars.contains(v))
        .collect();
    existential.sort();
    let formula = if existential.is_empty() {
        body
    } else {
        Fo::Exists(existential, Box::new(body))
    };
    Ok(ResidueRewriting {
        query: FoQuery {
            vars,
            free: head_vars,
            formula,
        },
        residues_applied,
        terminated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_constraints::Tgd;
    use cqa_query::{eval_fo, parse_query, NullSemantics};
    use cqa_relation::{tuple, Database, RelationSchema};

    fn supply_db() -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new(
            "Supply",
            ["Company", "Receiver", "Item"],
        ))
        .unwrap();
        db.create_relation(RelationSchema::new("Articles", ["Item"]))
            .unwrap();
        db.insert("Supply", tuple!["C1", "R1", "I1"]).unwrap();
        db.insert("Supply", tuple!["C2", "R2", "I2"]).unwrap();
        db.insert("Supply", tuple!["C2", "R1", "I3"]).unwrap();
        db.insert("Articles", tuple!["I1"]).unwrap();
        db.insert("Articles", tuple!["I2"]).unwrap();
        db
    }

    #[test]
    fn example_2_2_ind_residue() {
        let q = parse_query("Q(z) :- Supply(x, y, z)").unwrap();
        let sigma =
            ConstraintSet::from_iter([Tgd::parse("ID", "Articles(z) :- Supply(x, y, z)").unwrap()]);
        let rr = residue_rewrite(&q, &sigma).unwrap();
        assert_eq!(rr.residues_applied, 1);
        assert!(rr.terminated);
        // The rewritten query on the inconsistent instance returns the
        // consistent answers {I1, I2}.
        let ans = eval_fo(&supply_db(), &rr.query, NullSemantics::Structural);
        assert_eq!(ans, [tuple!["I1"], tuple!["I2"]].into());
    }

    #[test]
    fn example_3_4_fd_residue() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Employee", ["Name", "Salary"]))
            .unwrap();
        db.insert("Employee", tuple!["page", 5000]).unwrap();
        db.insert("Employee", tuple!["page", 8000]).unwrap();
        db.insert("Employee", tuple!["smith", 3000]).unwrap();
        db.insert("Employee", tuple!["stowe", 7000]).unwrap();
        let q = parse_query("Q(x, y) :- Employee(x, y)").unwrap();
        let rr = residue_rewrite_with_fds(
            &q,
            &ConstraintSet::new(),
            &[("Employee".into(), vec![0], 1)],
        )
        .unwrap();
        assert_eq!(rr.residues_applied, 1);
        let ans = eval_fo(&db, &rr.query, NullSemantics::Structural);
        assert_eq!(ans, [tuple!["smith", 3000], tuple!["stowe", 7000]].into());
    }

    #[test]
    fn chained_inds_reach_fixpoint() {
        // Supply ⊆ Articles ⊆ Catalog: two residues appended.
        let mut db = supply_db();
        db.create_relation(RelationSchema::new("Catalog", ["Item"]))
            .unwrap();
        db.insert("Catalog", tuple!["I1"]).unwrap();
        let q = parse_query("Q(z) :- Supply(x, y, z)").unwrap();
        let sigma = ConstraintSet::from_iter([
            Tgd::parse("ID1", "Articles(z) :- Supply(x, y, z)").unwrap(),
            Tgd::parse("ID2", "Catalog(z) :- Articles(z)").unwrap(),
        ]);
        let rr = residue_rewrite(&q, &sigma).unwrap();
        assert_eq!(rr.residues_applied, 2);
        assert!(rr.terminated);
        let ans = eval_fo(&db, &rr.query, NullSemantics::Structural);
        assert_eq!(ans, [tuple!["I1"]].into());
    }

    #[test]
    fn cyclic_inds_stabilize_via_dedup() {
        // R[A] ⊆ S[A] and S[A] ⊆ R[A]: each atom is added at most once.
        let q = parse_query("Q(x) :- R(x)").unwrap();
        let sigma = ConstraintSet::from_iter([
            Tgd::parse("f", "S(x) :- R(x)").unwrap(),
            Tgd::parse("b", "R(x) :- S(x)").unwrap(),
        ]);
        let rr = residue_rewrite(&q, &sigma).unwrap();
        assert!(rr.terminated);
        assert_eq!(rr.residues_applied, 1); // S(x) added; R(x) already present
    }

    #[test]
    fn existential_head_residue_gets_fresh_var() {
        let q = parse_query("Q(z) :- Supply(x, y, z)").unwrap();
        let sigma =
            ConstraintSet::from_iter([
                Tgd::parse("ID'", "ArticlesC(z, v) :- Supply(x, y, z)").unwrap()
            ]);
        let rr = residue_rewrite(&q, &sigma).unwrap();
        assert_eq!(rr.residues_applied, 1);
        let mut db = supply_db();
        db.create_relation(RelationSchema::new("ArticlesC", ["Item", "Cost"]))
            .unwrap();
        db.insert("ArticlesC", tuple!["I1", 50]).unwrap();
        let ans = eval_fo(&db, &rr.query, NullSemantics::Structural);
        assert_eq!(ans, [tuple!["I1"]].into());
    }

    #[test]
    fn no_matching_constraints_is_identity() {
        let q = parse_query("Q(z) :- Supply(x, y, z)").unwrap();
        let sigma = ConstraintSet::from_iter([Tgd::parse("x", "B(a) :- Unrelated(a)").unwrap()]);
        let rr = residue_rewrite(&q, &sigma).unwrap();
        assert_eq!(rr.residues_applied, 0);
        let ans = eval_fo(&supply_db(), &rr.query, NullSemantics::Structural);
        assert_eq!(ans.len(), 3); // plain projection: I1, I2, I3
    }

    #[test]
    fn fd_residue_agrees_with_repair_cqa() {
        // Cross-check Example 3.4's rewriting against the reference CQA.
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Employee", ["Name", "Salary"]))
            .unwrap();
        db.insert("Employee", tuple!["a", 1]).unwrap();
        db.insert("Employee", tuple!["a", 2]).unwrap();
        db.insert("Employee", tuple!["b", 3]).unwrap();
        db.insert("Employee", tuple!["c", 4]).unwrap();
        db.insert("Employee", tuple!["c", 4]).unwrap(); // dedup: consistent pair
        let q = parse_query("Q(x, y) :- Employee(x, y)").unwrap();
        let rr = residue_rewrite_with_fds(
            &q,
            &ConstraintSet::new(),
            &[("Employee".into(), vec![0], 1)],
        )
        .unwrap();
        let rewritten = eval_fo(&db, &rr.query, NullSemantics::Structural);
        let sigma =
            ConstraintSet::from_iter([cqa_constraints::KeyConstraint::new("Employee", ["Name"])]);
        let reference = crate::cqa::consistent_answers(
            &db,
            &sigma,
            &cqa_query::UnionQuery::single(q),
            &crate::cqa::RepairClass::Subset,
        )
        .unwrap();
        assert_eq!(rewritten, reference);
    }
}
