//! A session facade over the planner and the delta-maintained conflict
//! state: the library-level object a long-running service (`cqa-server`)
//! holds per tenant.
//!
//! A [`CqaSession`] owns a loaded [`Database`] plus the warm expensive
//! artifacts — the delta-maintained [`IncrementalState`] (violations,
//! conflict hyper-graph, primed component factorization and frozen core)
//! and, inside the database itself, the shared base-index cache. Mutations
//! go through the PR 8 change-log pipeline and bring the state up to date
//! **incrementally**; queries then plan against the maintained hyper-graph
//! instead of rebuilding it. The facade is deliberately thin: every answer
//! it produces is byte-identical to the corresponding one-shot library
//! call on the same instance (`tests/server_equivalence.rs` pins this
//! through the wire, `tests/incremental_equivalence.rs` pins the state).
//!
//! # Budget discipline
//!
//! Maintenance after a mutation is metered by the *mutation* request's
//! budget (a latch falls back to an exact full recompute — never truncated
//! state). Query-time refresh runs unbudgeted — it is incremental and
//! cheap by construction — so a query request's budget meters exactly the
//! same work it would meter on the one-shot path: truncation outcomes are
//! identical between a warm session and a cold `answer_consistently_budgeted`
//! call under the same logical budget.

use crate::cqa::{consistent_answers_budgeted, possible_answers_budgeted, RepairClass};
use crate::delta::{IncrementalState, MaintenanceDecision};
use crate::planner::{
    answer_consistently_budgeted, answer_consistently_incremental, PlannedAnswer,
};
use crate::repair::Repair;
use crate::srepair::RepairOptions;
use cqa_constraints::ConstraintSet;
use cqa_exec::{Budget, Outcome};
use cqa_query::UnionQuery;
use cqa_relation::{Database, RelationError, Tid, Tuple, Value};
use std::collections::BTreeSet;
use std::sync::Arc;

/// One tenant's loaded instance plus warm CQA artifacts. See the module
/// docs for the maintenance and budget discipline.
#[derive(Debug, Clone)]
pub struct CqaSession {
    /// The instance. `Arc` so repair enumeration shares the base without
    /// cloning; mutations go through [`Arc::make_mut`], which is a no-op
    /// while no enumeration borrow is alive (the session serializes its
    /// callers, so that is the steady state).
    db: Arc<Database>,
    sigma: ConstraintSet,
    /// Delta-maintained conflict state; `None` when Σ is not denial-class
    /// (tgds present), in which case every query falls back to the batch
    /// planner.
    state: Option<IncrementalState>,
}

impl CqaSession {
    /// Open a session over a loaded instance and constraint set, building
    /// the warm conflict state once (for denial-class Σ).
    pub fn new(db: Database, sigma: ConstraintSet) -> Result<CqaSession, RelationError> {
        let state = if sigma.is_denial_class() {
            Some(IncrementalState::new(&db, &sigma)?)
        } else {
            None
        };
        Ok(CqaSession {
            db: Arc::new(db),
            sigma,
            state,
        })
    }

    /// Open a session from codec-format database text and Σ-format
    /// constraint text — the wire-level entry point. Errors are rendered to
    /// strings (the two sub-crates have distinct error types).
    pub fn from_text(db_text: &str, sigma_text: &str) -> Result<CqaSession, String> {
        let db = cqa_relation::load(db_text).map_err(|e| e.to_string())?;
        let sigma = cqa_constraints::parse_constraints(sigma_text).map_err(|e| e.to_string())?;
        CqaSession::new(db, sigma).map_err(|e| e.to_string())
    }

    /// The live instance.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The session's constraint set.
    pub fn sigma(&self) -> &ConstraintSet {
        &self.sigma
    }

    /// The instance's mutation epoch.
    pub fn epoch(&self) -> u64 {
        self.db.epoch()
    }

    /// Is the instance currently consistent w.r.t. Σ? Reads the maintained
    /// state when available (O(1)), falls back to full satisfaction
    /// checking otherwise.
    pub fn is_consistent(&self) -> Result<bool, RelationError> {
        match &self.state {
            Some(state) if state.epoch() == self.db.epoch() => Ok(state.is_consistent()),
            _ => self.sigma.is_satisfied(self.db.as_ref()),
        }
    }

    /// Number of maintained violation sets (denial-class Σ only; `None`
    /// when the state is cold or Σ has tgds).
    pub fn violation_count(&self) -> Option<usize> {
        match &self.state {
            Some(state) if state.epoch() == self.db.epoch() => Some(state.violations().len()),
            _ => None,
        }
    }

    /// Insert a tuple and bring the conflict state up to date through the
    /// delta pipeline. Returns the tid and the maintenance decision.
    pub fn insert(
        &mut self,
        relation: &str,
        tuple: Tuple,
        budget: &Budget,
    ) -> Result<(Tid, MaintenanceDecision), RelationError> {
        let tid = Arc::make_mut(&mut self.db).insert(relation, tuple)?;
        let decision = self.maintain(budget)?;
        Ok((tid, decision))
    }

    /// Delete a tuple by tid; maintains the conflict state like
    /// [`insert`](CqaSession::insert).
    pub fn delete(
        &mut self,
        tid: Tid,
        budget: &Budget,
    ) -> Result<(String, Tuple, MaintenanceDecision), RelationError> {
        let (relation, tuple) = Arc::make_mut(&mut self.db).delete(tid)?;
        let decision = self.maintain(budget)?;
        Ok((relation, tuple, decision))
    }

    /// Update one attribute in place; maintains the conflict state like
    /// [`insert`](CqaSession::insert).
    pub fn update(
        &mut self,
        tid: Tid,
        position: usize,
        value: Value,
        budget: &Budget,
    ) -> Result<MaintenanceDecision, RelationError> {
        Arc::make_mut(&mut self.db).update_value(tid, position, value)?;
        self.maintain(budget)
    }

    /// Bring the maintained state up to the instance's epoch. A budget
    /// latch mid-delta falls back to an exact full recompute (never
    /// truncated state). With tgds in Σ there is nothing to maintain.
    pub fn maintain(&mut self, budget: &Budget) -> Result<MaintenanceDecision, RelationError> {
        match &mut self.state {
            Some(state) => Ok(state
                .refresh_budgeted(&self.db, &self.sigma, budget)?
                .clone()),
            None => Ok(MaintenanceDecision::Recompute {
                reason: "Σ contains tgds: no incremental conflict state is maintained".into(),
            }),
        }
    }

    /// Certain answers under the planner (subset repairs), against the warm
    /// maintained hyper-graph when available. Byte-identical to
    /// [`answer_consistently_budgeted`] on the same instance and budget.
    pub fn certain(
        &mut self,
        query: &UnionQuery,
        budget: &Budget,
    ) -> Result<Outcome<PlannedAnswer>, RelationError> {
        match &mut self.state {
            Some(state) => {
                // Query-time refresh is unbudgeted (see module docs), so the
                // request budget meters exactly the planning work.
                state.refresh(&self.db, &self.sigma)?;
                answer_consistently_incremental(&self.db, &self.sigma, query, state, budget)
            }
            None => answer_consistently_budgeted(&self.db, &self.sigma, query, budget),
        }
    }

    /// Certain answers over an explicit repair class (the non-planned
    /// reference semantics).
    pub fn certain_with_class(
        &self,
        query: &UnionQuery,
        class: &RepairClass,
        budget: &Budget,
    ) -> Result<Outcome<BTreeSet<Tuple>>, RelationError> {
        consistent_answers_budgeted(&self.db, &self.sigma, query, class, budget)
    }

    /// Possible answers over a repair class.
    pub fn possible(
        &self,
        query: &UnionQuery,
        class: &RepairClass,
        budget: &Budget,
    ) -> Result<Outcome<BTreeSet<Tuple>>, RelationError> {
        possible_answers_budgeted(&self.db, &self.sigma, query, class, budget)
    }

    /// Enumerate delta repairs of the session's instance. Subset and
    /// cardinality classes share the session's `Arc`ed base — zero instance
    /// clones. [`RepairClass::AttributeNull`] has no delta representation;
    /// callers route it to [`attribute_repairs`](CqaSession::attribute_repairs)
    /// instead (passing it here behaves as [`RepairClass::Subset`]).
    pub fn repairs(
        &self,
        class: &RepairClass,
        limit: Option<usize>,
        budget: &Budget,
    ) -> Result<Outcome<Vec<Repair>>, RelationError> {
        match class {
            RepairClass::Cardinality => crate::crepair::c_repairs_budgeted(
                &self.db,
                &self.sigma,
                &RepairOptions::default(),
                budget,
            ),
            _ => {
                let options = RepairOptions {
                    limit,
                    allow_insertions: !matches!(class, RepairClass::SubsetDeletionsOnly),
                    ..Default::default()
                };
                crate::srepair::s_repairs_budgeted(&self.db, &self.sigma, &options, budget)
            }
        }
    }

    /// Attribute-based null repairs (polynomial, always exact).
    pub fn attribute_repairs(
        &self,
    ) -> Result<Vec<crate::attr_repair::AttributeRepair>, RelationError> {
        crate::attr_repair::attribute_repairs(&self.db, &self.sigma)
    }

    /// How the last maintenance call revalidated the warm state (for
    /// diagnostics endpoints); `None` when Σ has tgds.
    pub fn last_maintenance(&self) -> Option<&MaintenanceDecision> {
        self.state.as_ref().map(IncrementalState::last_decision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_constraints::KeyConstraint;
    use cqa_query::parse_query;
    use cqa_relation::{tuple, RelationSchema};

    fn employee_session() -> CqaSession {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Employee", ["Name", "Salary"]))
            .unwrap();
        db.insert("Employee", tuple!["page", 5000]).unwrap();
        db.insert("Employee", tuple!["page", 8000]).unwrap();
        db.insert("Employee", tuple!["smith", 3000]).unwrap();
        let sigma = ConstraintSet::from_iter([KeyConstraint::new("Employee", ["Name"])]);
        CqaSession::new(db, sigma).unwrap()
    }

    #[test]
    fn mutations_maintain_and_queries_match_one_shot() {
        let mut session = employee_session();
        assert!(!session.is_consistent().unwrap());
        assert_eq!(session.violation_count(), Some(1));
        let budget = Budget::unlimited();
        // Mutate: a new conflicting group, maintained incrementally.
        let (tid, decision) = session
            .insert("Employee", tuple!["smith", 3500], &budget)
            .unwrap();
        assert!(matches!(decision, MaintenanceDecision::Incremental { .. }));
        assert_eq!(session.violation_count(), Some(2));
        // Warm certain answers == one-shot planner on the same instance.
        let q = cqa_query::UnionQuery::single(parse_query("Q(x) :- Employee(x, y)").unwrap());
        let warm = session.certain(&q, &budget).unwrap().into_value();
        let cold = crate::planner::answer_consistently(session.db(), session.sigma(), &q).unwrap();
        assert_eq!(warm.answers, cold.answers);
        assert_eq!(warm.strategy, cold.strategy);
        // Delete the new tuple: back to one violation.
        let (rel, _, decision) = session.delete(tid, &budget).unwrap();
        assert_eq!(rel, "Employee");
        assert!(matches!(decision, MaintenanceDecision::Incremental { .. }));
        assert_eq!(session.violation_count(), Some(1));
    }

    #[test]
    fn from_text_round_trips_and_repairs_share_the_base() {
        let mut session =
            CqaSession::from_text("@relation T(K, V)\n1, 1\n1, 2\n", "key T(K)\n").unwrap();
        let budget = Budget::unlimited();
        let repairs = session
            .repairs(&RepairClass::Subset, None, &budget)
            .unwrap()
            .into_value();
        assert_eq!(repairs.len(), 2);
        // A mutation while no enumeration borrow is alive must not clone —
        // the repairs above hold `Arc`s of the base, so release them first.
        drop(repairs);
        let before = Arc::as_ptr(&session.db);
        session.insert("T", tuple![2, 7], &budget).unwrap();
        assert_eq!(before, Arc::as_ptr(&session.db));
    }

    #[test]
    fn query_budget_trajectory_matches_one_shot() {
        // Same step budget, warm vs cold: identical truncation outcome and
        // identical (sound) answers — the facade must not consume budget
        // before planning.
        let mut session = CqaSession::from_text(
            "@relation T(K, V)\n1, 1\n1, 2\n2, 1\n2, 2\n3, 1\n3, 2\n",
            "dc T(x, y), T(x, z), y != z\n",
        )
        .unwrap();
        let q = cqa_query::UnionQuery::single(parse_query("Q(x) :- T(x, y)").unwrap());
        for steps in [1u64, 5, 50, 5000] {
            let warm = session.certain(&q, &Budget::steps(steps)).unwrap();
            let cold = answer_consistently_budgeted(
                session.db(),
                session.sigma(),
                &q,
                &Budget::steps(steps),
            )
            .unwrap();
            assert_eq!(warm.truncation(), cold.truncation(), "steps = {steps}");
            assert_eq!(
                warm.value().answers,
                cold.value().answers,
                "steps = {steps}"
            );
        }
    }

    #[test]
    fn tgd_sigma_disables_incremental_state_but_not_queries() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("R", ["A"])).unwrap();
        db.create_relation(RelationSchema::new("S", ["A"])).unwrap();
        db.insert("R", tuple![1]).unwrap();
        let tgd = cqa_constraints::Tgd::parse("t", "S(x) :- R(x)").unwrap();
        let sigma = ConstraintSet::from_iter([cqa_constraints::Constraint::Tgd(tgd)]);
        let mut session = CqaSession::new(db, sigma).unwrap();
        assert_eq!(session.violation_count(), None);
        assert!(session.last_maintenance().is_none());
        let budget = Budget::unlimited();
        assert!(matches!(
            session.maintain(&budget).unwrap(),
            MaintenanceDecision::Recompute { .. }
        ));
        let q = cqa_query::UnionQuery::single(parse_query("Q(x) :- R(x)").unwrap());
        let answers = session.certain(&q, &budget).unwrap().into_value();
        assert_eq!(answers.answers.len(), 0); // S(1) missing: not consistent-certain
    }
}
