//! S-repair enumeration (§3.1): consistent instances at ⊆-minimal symmetric
//! difference from the original.
//!
//! Two engines:
//!
//! * **Denial-class fast path** — when Σ contains only denial-class
//!   constraints (DCs, FDs, keys, CFDs), deletions are the only useful
//!   actions and S-repairs are exactly the complements of minimal hitting
//!   sets of the conflict hyper-graph.
//! * **General search** — with tgds in Σ, violations may be fixed by
//!   *insertions* too (Example 2.1's two repairs). The engine explores the
//!   delta space: pick the first violation of the current candidate, branch
//!   over its repair actions (delete a witness tuple / insert the demanded
//!   head tuple), re-check, and finally keep the ⊆-minimal deltas. Inserted
//!   existential positions take the plain SQL `NULL` (§4.2).

// audit:exponential — delta-space repair search branches per violation; every search loop must thread a Budget.
use crate::repair::{retain_subset_minimal, Repair};
use cqa_constraints::ConstraintSet;
use cqa_exec::{Budget, Outcome};
use cqa_relation::fxhash::{FxHashSet, FxHasher};
use cqa_relation::{Database, Facts, RelationError, Tid, Tuple, Value, ValueDict};
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// 128-bit fingerprint of a delta's canonical form, used to deduplicate
/// search states without materializing (or cloning) the `BTreeSet<Change>`
/// the state would become. `deleted` is already canonical (a sorted set of
/// tids); `inserted` is canonicalized by sort + dedup, which is exactly the
/// normalization `Repair::from_delta` applies when building the delta set,
/// so two states collide iff their deltas are equal (up to a ~2⁻¹²⁸ hash
/// collision — two independently seeded 64-bit FxHashers).
///
/// Tuple values are hashed as dictionary [`cqa_relation::Vid`]s — one
/// word per cell instead of re-hashing string bytes on every state. The
/// fingerprint set is membership-only (never iterated, never ordered), so
/// hashing schedule-dependent ids is safe: equal values always intern to
/// equal vids within the process.
fn delta_fingerprint(
    dict: &ValueDict,
    deleted: &BTreeSet<Tid>,
    inserted: &[(String, Tuple)],
) -> (u64, u64) {
    let mut canonical: Vec<&(String, Tuple)> = inserted.iter().collect();
    canonical.sort();
    canonical.dedup();
    let mut h1 = FxHasher::default();
    let mut h2 = FxHasher::default();
    h2.write_u64(0x9e37_79b9_7f4a_7c15); // domain-separate the second hash
    for h in [&mut h1, &mut h2] {
        deleted.hash(h);
        h.write_usize(canonical.len());
        for (rel, tuple) in &canonical {
            rel.hash(h);
            for v in tuple.iter() {
                h.write_u32(dict.intern(v).raw());
            }
            h.write_u8(0xfe); // row separator
        }
    }
    (h1.finish(), h2.finish())
}

/// Options for the general S-repair search.
#[derive(Debug, Clone)]
pub struct RepairOptions {
    /// Allow insertions to satisfy tgds (set `false` for the deletion-only
    /// semantics of \[48\]).
    pub allow_insertions: bool,
    /// Tuples that may never be deleted (e.g. trusted peer data in the peer
    /// data-exchange setting of §4.2 \[25\]). If a violation can only be fixed
    /// by deleting protected tuples (and insertion is unavailable), no
    /// repair keeps them and the result omits that branch.
    pub protected: BTreeSet<Tid>,
    /// Hard cap on insertions per branch; exceeding it aborts the branch.
    /// Guards against non-terminating chases under cyclic tgds.
    pub max_insertions_per_branch: usize,
    /// Stop after this many distinct repairs have been found (`None` = all).
    pub limit: Option<usize>,
}

impl Default for RepairOptions {
    fn default() -> Self {
        RepairOptions {
            allow_insertions: true,
            protected: BTreeSet::new(),
            max_insertions_per_branch: 10_000,
            limit: None,
        }
    }
}

impl RepairOptions {
    /// Deletion-only semantics.
    pub fn deletions_only() -> RepairOptions {
        RepairOptions {
            allow_insertions: false,
            ..RepairOptions::default()
        }
    }
}

/// Enumerate all S-repairs of `db` with respect to `sigma`.
///
/// Chooses the fast hyper-graph path when possible, the general search
/// otherwise. Results are deterministic (sorted by delta).
///
/// ```
/// use cqa_relation::{tuple, Database, RelationSchema};
/// use cqa_constraints::{ConstraintSet, KeyConstraint};
///
/// let mut db = Database::new();
/// db.create_relation(RelationSchema::new("Emp", ["Name", "Salary"]))?;
/// db.insert("Emp", tuple!["page", 5000])?;
/// db.insert("Emp", tuple!["page", 8000])?; // key conflict
/// let sigma = ConstraintSet::from_iter([KeyConstraint::new("Emp", ["Name"])]);
///
/// let repairs = cqa_core::s_repairs(&db, &sigma)?;
/// assert_eq!(repairs.len(), 2); // keep one of the two page rows
/// # Ok::<(), cqa_relation::RelationError>(())
/// ```
pub fn s_repairs(db: &Database, sigma: &ConstraintSet) -> Result<Vec<Repair>, RelationError> {
    s_repairs_with(db, sigma, &RepairOptions::default())
}

/// Enumerate S-repairs with explicit options.
///
/// The original instance is cloned **once** into a shared [`Arc`] base; the
/// enumerated repairs are copy-on-write deltas over it. Callers that already
/// hold an `Arc<Database>` should use [`s_repairs_with_arc`] to skip even
/// that clone.
pub fn s_repairs_with(
    db: &Database,
    sigma: &ConstraintSet,
    options: &RepairOptions,
) -> Result<Vec<Repair>, RelationError> {
    s_repairs_with_arc(&Arc::new(db.clone()), sigma, options)
}

/// Enumerate all S-repairs over a shared base instance, clone-free.
pub fn s_repairs_arc(
    db: &Arc<Database>,
    sigma: &ConstraintSet,
) -> Result<Vec<Repair>, RelationError> {
    s_repairs_with_arc(db, sigma, &RepairOptions::default())
}

/// Enumerate S-repairs over a shared base instance with explicit options.
pub fn s_repairs_with_arc(
    db: &Arc<Database>,
    sigma: &ConstraintSet,
    options: &RepairOptions,
) -> Result<Vec<Repair>, RelationError> {
    Ok(s_repairs_budgeted(db, sigma, options, &Budget::unlimited())?.into_value())
}

/// Budget-aware S-repair enumeration: the anytime entry point behind
/// `repairctl --timeout-ms/--max-repairs`.
///
/// On truncation the carried repairs are always *consistent* instances at
/// delta-minimal-so-far distance:
///
/// * **Denial-class Σ** — every returned repair corresponds to a verified
///   minimal hitting set, so a truncated result is a sound subset of the
///   true S-repair family.
/// * **General Σ (tgds)** — returned repairs are consistent and pairwise
///   ⊆-incomparable, but a branch cut off by the budget could in principle
///   have produced a smaller delta, so ⊆-minimality against the *full*
///   family is not guaranteed for truncated results.
pub fn s_repairs_budgeted(
    db: &Arc<Database>,
    sigma: &ConstraintSet,
    options: &RepairOptions,
    budget: &Budget,
) -> Result<Outcome<Vec<Repair>>, RelationError> {
    let outcome = if sigma.is_denial_class() {
        denial_class_s_repairs(db, sigma, options, budget)?
    } else {
        general_s_repairs(db, sigma, options, budget)?
    };
    Ok(outcome.map(|mut repairs| {
        repairs.sort_by(|a, b| a.delta().cmp(b.delta()));
        repairs
    }))
}

/// The fast path: deletions only, via minimal hitting sets.
fn denial_class_s_repairs(
    db: &Arc<Database>,
    sigma: &ConstraintSet,
    options: &RepairOptions,
    budget: &Budget,
) -> Result<Outcome<Vec<Repair>>, RelationError> {
    let mut graph = sigma.conflict_hypergraph(&**db)?;
    if !options.protected.is_empty() {
        // Protected tuples cannot be deleted: remove them from the edges; an
        // edge made empty can no longer be repaired, so no repair exists.
        let mut reduced = Vec::with_capacity(graph.edges.len());
        for e in &graph.edges {
            let r: BTreeSet<Tid> = e.difference(&options.protected).copied().collect();
            if r.is_empty() {
                return Ok(budget.outcome_with(Vec::new(), 0));
            }
            reduced.push(r);
        }
        graph = cqa_constraints::ConflictHypergraph::new(graph.nodes, reduced);
    }
    // Factored path: enumerate per conflict component and expand the
    // cross-product at the end. The search cost drops from product-shaped to
    // `Σ_c cost(c)` while the output stays byte-identical (the global minimal
    // hitting sets are exactly the unions of one local set per component).
    // Not taken with a `limit` (legacy sequential-DFS prefix semantics) or a
    // step/item budget (whose deterministic truncation order callers rely
    // on); deadline budgets are fine — a truncated expansion is still a
    // sound subset of the true family.
    if options.limit.is_none()
        && !budget.forces_sequential()
        && graph.components().components.len() >= 2
    {
        let factored = crate::factored::FactoredRepairSet::enumerate_minimal(db, &graph, budget);
        let repairs = factored.value().expand_budgeted(budget)?;
        let explored = repairs.len() as u64;
        return Ok(budget.outcome_with(repairs, explored));
    }
    let hitting_sets = graph.minimal_hitting_sets_budgeted(options.limit, budget);
    let explored = hitting_sets.value().len() as u64;
    let repairs = hitting_sets
        .into_value()
        .into_iter()
        .map(|hs| Repair::from_delta_arc(db, hs, Vec::new()))
        .collect::<Result<Vec<Repair>, RelationError>>()?;
    Ok(budget.outcome_with(repairs, explored))
}

/// The general search over deltas, handling tgds.
fn general_s_repairs(
    db: &Arc<Database>,
    sigma: &ConstraintSet,
    options: &RepairOptions,
    budget: &Budget,
) -> Result<Outcome<Vec<Repair>>, RelationError> {
    // A search node is a delta. Deltas are explored depth-first; consistent
    // leaves are collected and minimized at the end. `seen` prunes deltas
    // explored before (the same delta is reachable along many orders).
    struct Search<'a> {
        original: &'a Arc<Database>,
        sigma: &'a ConstraintSet,
        options: &'a RepairOptions,
        budget: &'a Budget,
        found: Vec<Repair>,
        seen: FxHashSet<(u64, u64)>,
        error: Option<RelationError>,
    }

    impl Search<'_> {
        fn step(&mut self, deleted: &BTreeSet<Tid>, inserted: &Vec<(String, Tuple)>) {
            if self.error.is_some() {
                return;
            }
            // The search is strictly depth-first on one thread, so a step
            // budget cuts it at a schedule-independent point.
            if !self.budget.tick() {
                return;
            }
            if self
                .options
                .limit
                .is_some_and(|l| self.found.len() >= l * 4)
            {
                // Heuristic early stop: collect a few times the requested
                // limit before minimization (supersets get filtered).
                return;
            }
            // Dedup on the fingerprint *before* building the candidate: the
            // same delta is reachable along many branch orders, and a
            // duplicate must not pay for re-validation and re-checking.
            if !self
                .seen
                .insert(delta_fingerprint(self.original.dict(), deleted, inserted))
            {
                return;
            }
            let repair =
                match Repair::from_delta_arc(self.original, deleted.clone(), inserted.clone()) {
                    Ok(r) => r,
                    Err(e) => {
                        self.error = Some(e);
                        return;
                    }
                };
            // Prune: a superset of an already-consistent delta cannot be
            // ⊆-minimal.
            if self
                .found
                .iter()
                .any(|f| f.delta().is_subset(repair.delta()) && f.delta() != repair.delta())
            {
                return;
            }
            // Constraint checks run on a zero-clone view of the candidate;
            // nothing is materialized anywhere in the search.
            let current = repair.view();

            // 1. Denial-class violations first (they only ever need
            //    deletions).
            let denial_viols = match self.sigma.denial_violations(&current) {
                Ok(v) => v,
                Err(e) => {
                    self.error = Some(e);
                    return;
                }
            };
            if let Some(viol) = denial_viols.into_iter().next() {
                for tid in viol {
                    // Deleting an inserted tuple would just mean "don't
                    // insert it"; that delta is reachable on another branch.
                    if self.options.protected.contains(&tid) {
                        continue; // protected: not a deletion candidate
                    }
                    if self.original.get(tid).is_some() {
                        let mut d2 = deleted.clone();
                        d2.insert(tid);
                        self.step(&d2, inserted);
                    } else {
                        // The violating tuple was inserted by us: drop that
                        // insertion instead.
                        if let Some((rel, tuple)) = current.get_fact(tid) {
                            let rel = rel.to_string();
                            let tuple = tuple.clone();
                            let mut i2 = inserted.clone();
                            if let Some(pos) = i2.iter().position(|(r, t)| *r == rel && *t == tuple)
                            {
                                i2.remove(pos);
                                self.step(deleted, &i2);
                            }
                        }
                    }
                }
                return;
            }

            // 2. Tgd violations: delete a body tuple or insert the head.
            let tgd_viols = self.sigma.tgd_violations(&current);
            if let Some(viol) = tgd_viols.into_iter().next() {
                for tid in &viol.body_tids {
                    if self.options.protected.contains(tid) {
                        continue; // protected: not a deletion candidate
                    }
                    if self.original.get(*tid).is_some() {
                        let mut d2 = deleted.clone();
                        d2.insert(*tid);
                        self.step(&d2, inserted);
                    } else if let Some((rel, tuple)) = current.get_fact(*tid) {
                        let rel = rel.to_string();
                        let tuple = tuple.clone();
                        let mut i2 = inserted.clone();
                        if let Some(pos) = i2.iter().position(|(r, t)| *r == rel && *t == tuple) {
                            i2.remove(pos);
                            self.step(deleted, &i2);
                        }
                    }
                }
                if self.options.allow_insertions {
                    if inserted.len() >= self.options.max_insertions_per_branch {
                        self.error = Some(RelationError::Parse(format!(
                            "repair search exceeded max_insertions_per_branch ({}); \
                             the tgd set is likely cyclic",
                            self.options.max_insertions_per_branch
                        )));
                        return;
                    }
                    let head: Tuple = Tuple::new(
                        viol.required_head
                            .iter()
                            .map(|v| v.clone().unwrap_or(Value::NULL)),
                    );
                    let mut i2 = inserted.clone();
                    i2.push((viol.head_relation.clone(), head));
                    self.step(deleted, &i2);
                }
                return;
            }

            // Consistent: record (still unmaterialized).
            drop(current);
            self.found.push(repair);
            let _ = self.budget.charge_item();
        }
    }

    let mut search = Search {
        original: db,
        sigma,
        options,
        budget,
        found: Vec::new(),
        seen: FxHashSet::default(),
        error: None,
    };
    search.step(&BTreeSet::new(), &Vec::new());
    if let Some(e) = search.error {
        return Err(e);
    }
    let explored = search.found.len() as u64;
    let mut minimal = retain_subset_minimal(search.found);
    if let Some(l) = options.limit {
        minimal.truncate(l);
    }
    Ok(budget.outcome_with(minimal, explored))
}

/// Tuples that persist across every S-repair — the "consistent core" of D
/// (exactly the data the paper calls consistent in Example 3.1).
///
/// For denial-class Σ this avoids repair enumeration: since the reduced
/// (antichain) conflict hyper-graph puts every edge vertex into *some*
/// minimal hitting set, the core is exactly the isolated nodes. With tgds
/// the core is computed by intersecting the enumerated repairs.
pub fn consistent_core(
    db: &Database,
    sigma: &ConstraintSet,
) -> Result<BTreeSet<Tid>, RelationError> {
    if sigma.is_denial_class() {
        return Ok(sigma.conflict_hypergraph(db)?.isolated_nodes());
    }
    let repairs = s_repairs(db, sigma)?;
    let mut core = db.tids();
    for r in &repairs {
        core = core.difference(&r.deleted).copied().collect();
        // Inserted tuples are not part of the original instance's core.
    }
    Ok(core)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_constraints::{DenialConstraint, KeyConstraint, Tgd};
    use cqa_relation::{tuple, RelationSchema};

    fn supply_db() -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new(
            "Supply",
            ["Company", "Receiver", "Item"],
        ))
        .unwrap();
        db.create_relation(RelationSchema::new("Articles", ["Item"]))
            .unwrap();
        db.insert("Supply", tuple!["C1", "R1", "I1"]).unwrap();
        db.insert("Supply", tuple!["C2", "R2", "I2"]).unwrap();
        db.insert("Supply", tuple!["C2", "R1", "I3"]).unwrap();
        db.insert("Articles", tuple!["I1"]).unwrap();
        db.insert("Articles", tuple!["I2"]).unwrap();
        db
    }

    fn supply_sigma() -> ConstraintSet {
        ConstraintSet::from_iter([Tgd::parse("ID", "Articles(z) :- Supply(x, y, z)").unwrap()])
    }

    #[test]
    fn example_3_1_two_s_repairs() {
        let db = supply_db();
        let repairs = s_repairs(&db, &supply_sigma()).unwrap();
        assert_eq!(repairs.len(), 2);
        // D1: delete Supply(C2, R1, I3); D2: insert Articles(I3).
        let d1 = repairs
            .iter()
            .find(|r| r.is_deletion_only())
            .expect("deletion repair");
        assert_eq!(d1.deleted, [Tid(3)].into());
        let d2 = repairs
            .iter()
            .find(|r| !r.is_deletion_only())
            .expect("insertion repair");
        assert!(d2.deleted.is_empty());
        assert_eq!(d2.inserted, vec![("Articles".to_string(), tuple!["I3"])]);
        // And the non-minimal D3 (deleting two Supply tuples) is absent.
        assert!(repairs.iter().all(|r| r.deleted.len() <= 1));
    }

    #[test]
    fn example_3_1_consistent_core() {
        let db = supply_db();
        let core = consistent_core(&db, &supply_sigma()).unwrap();
        // First two Supply tuples and both Articles tuples persist.
        assert_eq!(core, [Tid(1), Tid(2), Tid(4), Tid(5)].into());
    }

    #[test]
    fn deletions_only_semantics() {
        let db = supply_db();
        let repairs =
            s_repairs_with(&db, &supply_sigma(), &RepairOptions::deletions_only()).unwrap();
        assert_eq!(repairs.len(), 1);
        assert!(repairs[0].is_deletion_only());
        assert_eq!(repairs[0].deleted, [Tid(3)].into());
    }

    #[test]
    fn example_3_3_key_repairs() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Employee", ["Name", "Salary"]))
            .unwrap();
        db.insert("Employee", tuple!["page", 5000]).unwrap();
        db.insert("Employee", tuple!["page", 8000]).unwrap();
        db.insert("Employee", tuple!["smith", 3000]).unwrap();
        db.insert("Employee", tuple!["stowe", 7000]).unwrap();
        let sigma = ConstraintSet::from_iter([KeyConstraint::new("Employee", ["Name"])]);
        let repairs = s_repairs(&db, &sigma).unwrap();
        assert_eq!(repairs.len(), 2);
        for r in &repairs {
            assert_eq!(r.deleted.len(), 1);
            assert!(r.deleted.iter().all(|t| t.0 <= 2)); // one of the page rows
            assert!(sigma.is_satisfied(r.db()).unwrap());
        }
    }

    #[test]
    fn example_3_5_three_s_repairs() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("R", ["A", "B"]))
            .unwrap();
        db.create_relation(RelationSchema::new("S", ["A"])).unwrap();
        db.insert("R", tuple!["a4", "a3"]).unwrap(); // ι1
        db.insert("R", tuple!["a2", "a1"]).unwrap(); // ι2
        db.insert("R", tuple!["a3", "a3"]).unwrap(); // ι3
        db.insert("S", tuple!["a4"]).unwrap(); // ι4
        db.insert("S", tuple!["a2"]).unwrap(); // ι5
        db.insert("S", tuple!["a3"]).unwrap(); // ι6
        let sigma =
            ConstraintSet::from_iter([
                DenialConstraint::parse("kappa", "S(x), R(x, y), S(y)").unwrap()
            ]);
        let repairs = s_repairs(&db, &sigma).unwrap();
        assert_eq!(repairs.len(), 3);
        let deltas: BTreeSet<BTreeSet<Tid>> = repairs.iter().map(|r| r.deleted.clone()).collect();
        // D1 deletes ι6; D2 deletes {ι1, ι3}; D3 deletes {ι3, ι4}.
        assert!(deltas.contains(&[Tid(6)].into()));
        assert!(deltas.contains(&[Tid(1), Tid(3)].into()));
        assert!(deltas.contains(&[Tid(3), Tid(4)].into()));
    }

    #[test]
    fn consistent_db_has_one_trivial_repair() {
        let mut db = supply_db();
        db.insert("Articles", tuple!["I3"]).unwrap();
        let repairs = s_repairs(&db, &supply_sigma()).unwrap();
        assert_eq!(repairs.len(), 1);
        assert_eq!(repairs[0].delta_size(), 0);
    }

    #[test]
    fn interacting_constraints_key_on_target_of_tgd() {
        // Inserting Articles(I3, NULL) could collide with a key on Articles;
        // here we add a DC forbidding item I3 in Articles entirely, so the
        // only repair deletes the Supply tuple.
        let db = supply_db();
        let mut sigma = supply_sigma();
        sigma.push(DenialConstraint::parse("noI3", "Articles('I3')").unwrap());
        let repairs = s_repairs(&db, &sigma).unwrap();
        assert_eq!(repairs.len(), 1);
        assert_eq!(repairs[0].deleted, [Tid(3)].into());
        assert!(repairs[0].inserted.is_empty());
    }

    #[test]
    fn existential_tgd_inserts_null() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new(
            "Supply",
            ["Company", "Receiver", "Item"],
        ))
        .unwrap();
        db.create_relation(RelationSchema::new("Articles", ["Item", "Cost"]))
            .unwrap();
        db.insert("Supply", tuple!["C2", "R1", "I3"]).unwrap();
        let sigma =
            ConstraintSet::from_iter([
                Tgd::parse("ID'", "Articles(z, v) :- Supply(x, y, z)").unwrap()
            ]);
        let repairs = s_repairs(&db, &sigma).unwrap();
        assert_eq!(repairs.len(), 2);
        let ins = repairs.iter().find(|r| !r.is_deletion_only()).unwrap();
        let t = &ins.inserted[0].1;
        assert_eq!(t.at(0), &Value::str("I3"));
        assert!(t.at(1).is_null());
    }

    #[test]
    fn cascading_tgds_chase_through() {
        // A(x) -> B(x) -> C(x): repairing by insertion cascades.
        let mut db = Database::new();
        for r in ["A", "B", "C"] {
            db.create_relation(RelationSchema::new(r, ["X"])).unwrap();
        }
        db.insert("A", tuple!["a"]).unwrap();
        let sigma = ConstraintSet::from_iter([
            Tgd::parse("t1", "B(x) :- A(x)").unwrap(),
            Tgd::parse("t2", "C(x) :- B(x)").unwrap(),
        ]);
        let repairs = s_repairs(&db, &sigma).unwrap();
        // Either delete A(a), or insert B(a) and C(a).
        assert_eq!(repairs.len(), 2);
        let ins = repairs.iter().find(|r| !r.is_deletion_only()).unwrap();
        assert_eq!(ins.inserted.len(), 2);
        for r in &repairs {
            assert!(sigma.is_satisfied(r.db()).unwrap());
        }
    }

    #[test]
    fn limit_caps_results() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("T", ["A", "B"]))
            .unwrap();
        for i in 0..6 {
            db.insert("T", tuple![i / 2, i]).unwrap();
        }
        let sigma = ConstraintSet::from_iter([KeyConstraint::new("T", ["A"])]);
        let all = s_repairs(&db, &sigma).unwrap();
        assert_eq!(all.len(), 8); // 2^3 key groups
        let some = s_repairs_with(
            &db,
            &sigma,
            &RepairOptions {
                limit: Some(3),
                ..RepairOptions::default()
            },
        )
        .unwrap();
        assert_eq!(some.len(), 3);
    }

    #[test]
    fn every_repair_is_consistent_and_minimal() {
        let db = supply_db();
        let sigma = supply_sigma();
        for r in s_repairs(&db, &sigma).unwrap() {
            assert!(sigma.is_satisfied(r.db()).unwrap());
        }
    }
}
