//! Inconsistency-tolerant semantics from the OBDA world (§8 of the paper;
//! Lembo et al. \[79\], Bienvenu \[29\]): **AR** and **IAR** answers, expressed
//! over relational repairs.
//!
//! * **AR** ("ABox Repair") semantics is exactly consistent query
//!   answering: true in every repair.
//! * **IAR** ("Intersection of ABox Repairs") semantics evaluates the query
//!   over the *intersection* of all repairs — the consistent core. IAR is a
//!   sound approximation of AR (`IAR ⊆ AR`) computable without enumerating
//!   answers per repair, which is why the OBDA literature uses it as the
//!   tractable fallback.

use crate::cqa::{consistent_answers, RepairClass};
use crate::srepair::consistent_core;
use cqa_constraints::ConstraintSet;
use cqa_query::{eval_ucq, NullSemantics, UnionQuery};
use cqa_relation::{Database, RelationError, Tuple};
use std::collections::BTreeSet;

/// AR answers: true in every repair (an alias of CQA, named for the OBDA
/// correspondence).
pub fn ar_answers(
    db: &Database,
    sigma: &ConstraintSet,
    query: &UnionQuery,
) -> Result<BTreeSet<Tuple>, RelationError> {
    consistent_answers(db, sigma, query, &RepairClass::Subset)
}

/// IAR answers: evaluate over the intersection of all S-repairs.
pub fn iar_answers(
    db: &Database,
    sigma: &ConstraintSet,
    query: &UnionQuery,
) -> Result<BTreeSet<Tuple>, RelationError> {
    let core = consistent_core(db, sigma)?;
    let core_db = db.restricted_to(&core);
    Ok(eval_ucq(&core_db, query, NullSemantics::Sql)
        .into_iter()
        .filter(|t| !t.has_null())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_constraints::KeyConstraint;
    use cqa_query::parse_query;
    use cqa_relation::{tuple, RelationSchema};

    fn db() -> (Database, ConstraintSet) {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Employee", ["Name", "Salary"]))
            .unwrap();
        db.insert("Employee", tuple!["page", 5000]).unwrap();
        db.insert("Employee", tuple!["page", 8000]).unwrap();
        db.insert("Employee", tuple!["smith", 3000]).unwrap();
        let sigma = ConstraintSet::from_iter([KeyConstraint::new("Employee", ["Name"])]);
        (db, sigma)
    }

    #[test]
    fn iar_is_contained_in_ar() {
        let (db, sigma) = db();
        // Projection query: AR keeps `page` (some salary in every repair)
        // but IAR drops it (no page row is in the core).
        let q = UnionQuery::single(parse_query("Q(x) :- Employee(x, y)").unwrap());
        let ar = ar_answers(&db, &sigma, &q).unwrap();
        let iar = iar_answers(&db, &sigma, &q).unwrap();
        assert!(iar.is_subset(&ar));
        assert!(ar.contains(&tuple!["page"]));
        assert!(!iar.contains(&tuple!["page"]));
        assert!(iar.contains(&tuple!["smith"]));
    }

    #[test]
    fn on_full_rows_ar_and_iar_agree_for_keys() {
        let (db, sigma) = db();
        let q = UnionQuery::single(parse_query("Q(x, y) :- Employee(x, y)").unwrap());
        let ar = ar_answers(&db, &sigma, &q).unwrap();
        let iar = iar_answers(&db, &sigma, &q).unwrap();
        // A full row is in every key repair iff its key group is a
        // singleton iff it is in the core.
        assert_eq!(ar, iar);
        assert_eq!(ar, [tuple!["smith", 3000]].into());
    }

    #[test]
    fn consistent_db_both_equal_plain_eval() {
        let (mut db, sigma) = db();
        db.delete(cqa_relation::Tid(2)).unwrap();
        let q = UnionQuery::single(parse_query("Q(x, y) :- Employee(x, y)").unwrap());
        let plain = cqa_query::eval_ucq(&db, &q, NullSemantics::Structural);
        assert_eq!(ar_answers(&db, &sigma, &q).unwrap(), plain);
        assert_eq!(iar_answers(&db, &sigma, &q).unwrap(), plain);
    }
}
