//! Update-based repairs with domain values (§4 of the paper; Wijsen \[108\],
//! Franconi et al. \[63\]).
//!
//! Where §4.3's repairs null cells out, *update repairs* fix an FD violation
//! by overwriting right-hand-side cells with **values from the data
//! domain** — here, with another value already present in the same key
//! group (the natural candidate set: any other choice changes strictly more
//! information). Every tuple survives; a repair is a choice, per conflicting
//! group, of one witness value, changing the cells that disagree with it.
//! Distinct choices change incomparable cell sets, so each is ⊆-minimal.

use cqa_constraints::FunctionalDependency;
use cqa_relation::{Database, RelationError, Tid, Tuple, Value};
use std::collections::BTreeMap;
use std::fmt;

/// One cell overwrite.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CellUpdate {
    /// Tuple updated.
    pub tid: Tid,
    /// Attribute position.
    pub position: usize,
    /// The new (domain) value.
    pub new_value: Value,
}

impl fmt::Display for CellUpdate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] := {}",
            self.tid,
            self.position + 1,
            self.new_value
        )
    }
}

/// An update repair: the repaired instance plus the updates applied.
#[derive(Debug, Clone)]
pub struct UpdateRepair {
    /// The repaired instance (all tuples survive; contents updated).
    pub db: Database,
    /// The applied updates.
    pub updates: Vec<CellUpdate>,
}

/// Enumerate the minimal update repairs of `db` for a single-RHS FD,
/// drawing replacement values from each conflicting group.
///
/// The number of repairs is the product over conflicting groups of the
/// number of distinct RHS values in the group; `limit` caps the output.
pub fn update_repairs(
    db: &Database,
    fd: &FunctionalDependency,
    limit: Option<usize>,
) -> Result<Vec<UpdateRepair>, RelationError> {
    let [rhs_attr] = &fd.rhs[..] else {
        return Err(RelationError::Parse(
            "update repairs are implemented for single-RHS FDs; split the FD".into(),
        ));
    };
    let rel = db.require_relation(&fd.relation)?;
    let schema = rel.schema().clone();
    let lhs_pos = schema.positions_of(fd.lhs.iter().map(String::as_str))?;
    let rhs_pos = schema.require_position(rhs_attr)?;

    // Group tuples by LHS value; keep groups with ≥ 2 distinct RHS values.
    let mut groups: BTreeMap<Tuple, Vec<(Tid, Value)>> = BTreeMap::new();
    for (tid, t) in rel.iter() {
        groups
            .entry(t.project(&lhs_pos))
            .or_default()
            .push((tid, t.at(rhs_pos).clone()));
    }
    let conflicting: Vec<Vec<(Tid, Value)>> = groups
        .into_values()
        .filter(|g| {
            let mut vals: Vec<&Value> = g.iter().map(|(_, v)| v).collect();
            vals.sort();
            vals.dedup();
            vals.len() >= 2
        })
        .collect();

    // Cartesian product of per-group witness-value choices.
    let mut repairs: Vec<Vec<CellUpdate>> = vec![Vec::new()];
    for group in &conflicting {
        let mut witnesses: Vec<&Value> = group.iter().map(|(_, v)| v).collect();
        witnesses.sort();
        witnesses.dedup();
        let mut next: Vec<Vec<CellUpdate>> = Vec::with_capacity(repairs.len() * witnesses.len());
        for base in &repairs {
            for &target in &witnesses {
                let mut updates = base.clone();
                for (tid, v) in group {
                    if v != target {
                        updates.push(CellUpdate {
                            tid: *tid,
                            position: rhs_pos,
                            new_value: target.clone(),
                        });
                    }
                }
                next.push(updates);
                if limit.is_some_and(|l| next.len() >= l * 2) {
                    break;
                }
            }
        }
        repairs = next;
    }

    let mut out = Vec::with_capacity(repairs.len());
    for updates in repairs {
        let mut repaired = db.clone();
        for u in &updates {
            repaired.update_value(u.tid, u.position, u.new_value.clone())?;
        }
        debug_assert!(fd.is_satisfied(&repaired)?);
        out.push(UpdateRepair {
            db: repaired,
            updates,
        });
        if limit.is_some_and(|l| out.len() >= l) {
            break;
        }
    }
    Ok(out)
}

/// The cheapest update repair by number of changed cells (ties broken
/// deterministically): per group, keep the most frequent value.
pub fn min_change_update_repair(
    db: &Database,
    fd: &FunctionalDependency,
) -> Result<UpdateRepair, RelationError> {
    let all = update_repairs(db, fd, None)?;
    all.into_iter()
        .min_by_key(|r| (r.updates.len(), r.updates.clone()))
        .ok_or_else(|| RelationError::Parse("no repairs produced".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_relation::{tuple, RelationSchema};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("T", ["K", "V"]))
            .unwrap();
        db.insert("T", tuple![1, "a"]).unwrap(); // ι1
        db.insert("T", tuple![1, "a"]).unwrap(); // dedup: same tuple
        db.insert("T", tuple![1, "b"]).unwrap(); // ι2
        db.insert("T", tuple![2, "x"]).unwrap(); // ι3 (clean group)
        db
    }

    #[test]
    fn enumerates_one_repair_per_witness_value() {
        let fd = FunctionalDependency::new("T", ["K"], ["V"]);
        let repairs = update_repairs(&db(), &fd, None).unwrap();
        // Group k=1 has values {a, b}: two repairs.
        assert_eq!(repairs.len(), 2);
        for r in &repairs {
            assert!(fd.is_satisfied(&r.db).unwrap());
            // All tuples survive (set semantics may merge equal results).
            assert!(r.db.relation("T").unwrap().len() >= 2);
            assert!(r.db.relation("T").unwrap().contains(&tuple![2, "x"]));
            assert_eq!(r.updates.len(), 1);
        }
    }

    #[test]
    fn min_change_prefers_majority_value() {
        let mut d = Database::new();
        d.create_relation(RelationSchema::new("T", ["K", "V"]))
            .unwrap();
        d.insert("T", tuple![1, "maj"]).unwrap();
        d.insert("T", tuple![1, "min"]).unwrap();
        d.insert("T", tuple![1, "maj2"]).unwrap();
        // values: maj, min, maj2 — all singletons; any choice changes 2 cells.
        let fd = FunctionalDependency::new("T", ["K"], ["V"]);
        let best = min_change_update_repair(&d, &fd).unwrap();
        assert_eq!(best.updates.len(), 2);
        assert!(fd.is_satisfied(&best.db).unwrap());
    }

    #[test]
    fn consistent_instance_yields_identity_repair() {
        let mut d = Database::new();
        d.create_relation(RelationSchema::new("T", ["K", "V"]))
            .unwrap();
        d.insert("T", tuple![1, "a"]).unwrap();
        let fd = FunctionalDependency::new("T", ["K"], ["V"]);
        let repairs = update_repairs(&d, &fd, None).unwrap();
        assert_eq!(repairs.len(), 1);
        assert!(repairs[0].updates.is_empty());
        assert!(repairs[0].db.same_content(&d));
    }

    #[test]
    fn multiple_groups_multiply() {
        let mut d = Database::new();
        d.create_relation(RelationSchema::new("T", ["K", "V"]))
            .unwrap();
        for (k, v) in [(1, "a"), (1, "b"), (2, "c"), (2, "d"), (2, "e")] {
            d.insert("T", tuple![k, v]).unwrap();
        }
        let fd = FunctionalDependency::new("T", ["K"], ["V"]);
        let repairs = update_repairs(&d, &fd, None).unwrap();
        assert_eq!(repairs.len(), 2 * 3);
        let limited = update_repairs(&d, &fd, Some(3)).unwrap();
        assert_eq!(limited.len(), 3);
    }

    #[test]
    fn multi_rhs_fd_rejected() {
        let fd = FunctionalDependency::new("T", ["K"], ["V", "W"]);
        assert!(update_repairs(&db(), &fd, None).is_err());
    }

    #[test]
    fn display() {
        let u = CellUpdate {
            tid: Tid(3),
            position: 1,
            new_value: Value::str("a"),
        };
        assert_eq!(u.to_string(), "ι3[2] := 'a'");
    }
}
