//! Execution budgets, cooperative cancellation, and anytime outcomes.
//!
//! Every decision problem this workspace serves is intractable in the worst
//! case — certain answers are coNP-complete already for key constraints and
//! repair counts grow as 2^k in the number of conflicts — so unbounded
//! "run to completion" semantics are unusable once inputs leave the paper's
//! toy examples. A [`Budget`] bounds a computation by wall-clock deadline,
//! logical step count, and/or emitted-item count, and carries a
//! [`CancelToken`] that external callers may flip at any time. Exhaustion
//! is **not an error**: consumers observe it cooperatively (via [`tick`],
//! [`charge_item`], or the token) and return whatever sound partial result
//! they have, tagged [`Outcome::Truncated`] so callers can tell an exact
//! answer from an anytime one.
//!
//! # Determinism
//!
//! Budgets come in two flavours with different determinism contracts:
//!
//! * **Logical budgets** (step cap, item cap) count abstract search nodes /
//!   emitted results. Call sites that consume a budget with
//!   [`forces_sequential`] run their sequential code path, so the same cap
//!   yields byte-identical output at any thread count — the workspace
//!   determinism suite extends to truncated runs.
//! * **Physical budgets** (deadline, cancellation) depend on the machine
//!   clock. Parallel execution is kept; consumers are written so that the
//!   *value* they return on truncation is still deterministic (they discard
//!   racy partial folds and fall back to a sound core), but *whether* a
//!   given run truncates is inherently timing-dependent.
//!
//! Step accounting is a single relaxed `fetch_add` per node — negligible
//! next to the `BTreeSet` work a search node actually does — so unlimited
//! budgets (the default for the legacy exact APIs) cost nothing observable.
//!
//! [`tick`]: Budget::tick
//! [`charge_item`]: Budget::charge_item
//! [`forces_sequential`]: Budget::forces_sequential

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often (in steps) the wall clock is consulted when a deadline is set.
/// A search node costs microseconds, so 64 nodes between clock reads keeps
/// deadline overshoot well under a millisecond while making `Instant::now`
/// cost invisible.
const DEADLINE_CHECK_INTERVAL: u64 = 64;

/// Why a computation stopped early. Ordered by the latch codes used
/// internally; the first limit observed wins and is sticky.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TruncationReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The logical step cap was reached.
    StepLimit,
    /// The emitted-item cap (e.g. `--max-repairs`) was reached.
    ItemLimit,
    /// The [`CancelToken`] was flipped by an external caller.
    Cancelled,
}

impl TruncationReason {
    /// Stable lowercase name, used in CLI status lines and harness tables.
    pub fn as_str(self) -> &'static str {
        match self {
            TruncationReason::Deadline => "deadline",
            TruncationReason::StepLimit => "step-limit",
            TruncationReason::ItemLimit => "item-limit",
            TruncationReason::Cancelled => "cancelled",
        }
    }

    fn code(self) -> u8 {
        match self {
            TruncationReason::Deadline => 1,
            TruncationReason::StepLimit => 2,
            TruncationReason::ItemLimit => 3,
            TruncationReason::Cancelled => 4,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(TruncationReason::Deadline),
            2 => Some(TruncationReason::StepLimit),
            3 => Some(TruncationReason::ItemLimit),
            4 => Some(TruncationReason::Cancelled),
            _ => None,
        }
    }
}

impl std::fmt::Display for TruncationReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An anytime result: either the exact answer, or a sound partial answer
/// together with why the computation stopped and how much it explored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome<T> {
    /// The computation ran to completion; `T` is the exact answer.
    Exact(T),
    /// A budget was exhausted. `value` is still *sound* (each consumer
    /// documents in which direction it approximates), `reason` says which
    /// limit fired first, and `explored` counts the units of work (search
    /// nodes, repairs, models — consumer-defined) finished before stopping.
    Truncated {
        /// The sound partial answer.
        value: T,
        /// Which limit fired first.
        reason: TruncationReason,
        /// Units of work completed before stopping.
        explored: u64,
    },
}

impl<T> Outcome<T> {
    /// The carried value, exact or not.
    pub fn value(&self) -> &T {
        match self {
            Outcome::Exact(v) | Outcome::Truncated { value: v, .. } => v,
        }
    }

    /// Consume the outcome, returning the carried value.
    pub fn into_value(self) -> T {
        match self {
            Outcome::Exact(v) | Outcome::Truncated { value: v, .. } => v,
        }
    }

    /// Did the computation run to completion?
    pub fn is_exact(&self) -> bool {
        matches!(self, Outcome::Exact(_))
    }

    /// Was the computation cut short?
    pub fn is_truncated(&self) -> bool {
        !self.is_exact()
    }

    /// The truncation tag, if any.
    pub fn truncation(&self) -> Option<(TruncationReason, u64)> {
        match self {
            Outcome::Exact(_) => None,
            Outcome::Truncated {
                reason, explored, ..
            } => Some((*reason, *explored)),
        }
    }

    /// Map the carried value, preserving the tag.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Outcome<U> {
        match self {
            Outcome::Exact(v) => Outcome::Exact(f(v)),
            Outcome::Truncated {
                value,
                reason,
                explored,
            } => Outcome::Truncated {
                value: f(value),
                reason,
                explored,
            },
        }
    }
}

/// A shared flag for cooperative cancellation. Cloning is cheap (an `Arc`
/// bump); all clones observe the same flag. Typically obtained from
/// [`Budget::cancel_token`] and handed to another thread or a signal
/// handler, which calls [`cancel`](CancelToken::cancel) to ask every
/// in-flight worker to drain promptly.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// The underlying flag, for wiring into the pool's stop mechanism.
    pub(crate) fn flag(&self) -> &AtomicBool {
        &self.flag
    }
}

/// Declarative limits for [`Budget::new`]. `None` everywhere (the
/// [`Default`]) means unlimited.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Limits {
    /// Wall-clock deadline, milliseconds from budget creation.
    pub deadline_ms: Option<u64>,
    /// Cap on logical steps (search nodes). Forces sequential execution.
    pub steps: Option<u64>,
    /// Cap on emitted items (repairs, models). Forces sequential execution.
    pub items: Option<u64>,
}

impl Limits {
    /// True when no limit is set at all.
    pub fn is_unlimited(&self) -> bool {
        self.deadline_ms.is_none() && self.steps.is_none() && self.items.is_none()
    }
}

struct Inner {
    deadline: Option<Instant>,
    step_cap: Option<u64>,
    item_cap: Option<u64>,
    steps: AtomicU64,
    items: AtomicU64,
    cancel: CancelToken,
    /// 0 = within budget; otherwise the latched `TruncationReason` code.
    /// Latched once and never cleared, so "exhausted" is monotone: every
    /// observer after the first sees the same reason regardless of thread
    /// interleaving.
    state: AtomicU8,
}

/// A shareable execution budget. Cloning is cheap (an `Arc` bump) and all
/// clones share the same counters, so a budget handed to parallel workers
/// meters their *combined* work.
#[derive(Clone)]
pub struct Budget {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Budget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Budget")
            .field("deadline", &self.inner.deadline)
            .field("step_cap", &self.inner.step_cap)
            .field("item_cap", &self.inner.item_cap)
            .field("steps", &self.steps_used())
            .field("items", &self.items_used())
            .field("exhaustion", &self.exhaustion())
            .finish()
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

impl Budget {
    /// A budget with the given limits, starting now.
    ///
    /// Deadline boundary semantics (pinned by `tests`):
    ///
    /// * `deadline_ms: Some(0)` means **truncate immediately**: the budget is
    ///   born exhausted (`Deadline` latched), so every budgeted path returns
    ///   its empty-but-sound anytime value without doing any work. It never
    ///   means "unlimited" — servers rely on `0` keeping admission deadlines
    ///   armed.
    /// * A deadline so large that `now + deadline` overflows the platform's
    ///   `Instant` horizon (e.g. `u64::MAX` ms on some targets) behaves as
    ///   unlimited: `checked_add` failing cannot panic construction.
    pub fn new(limits: Limits) -> Self {
        let budget = Budget {
            inner: Arc::new(Inner {
                deadline: limits
                    .deadline_ms
                    .filter(|&ms| ms > 0)
                    .and_then(|ms| Instant::now().checked_add(Duration::from_millis(ms))),
                step_cap: limits.steps,
                item_cap: limits.items,
                steps: AtomicU64::new(0),
                items: AtomicU64::new(0),
                cancel: CancelToken::new(),
                state: AtomicU8::new(0),
            }),
        };
        if limits.deadline_ms == Some(0) {
            budget.latch(TruncationReason::Deadline);
        }
        budget
    }

    /// No limits: counts steps (useful for reporting) but never exhausts.
    pub fn unlimited() -> Self {
        Budget::new(Limits::default())
    }

    /// Wall-clock deadline `ms` milliseconds from now.
    pub fn deadline_ms(ms: u64) -> Self {
        Budget::new(Limits {
            deadline_ms: Some(ms),
            ..Limits::default()
        })
    }

    /// Logical step cap (deterministic truncation).
    pub fn steps(n: u64) -> Self {
        Budget::new(Limits {
            steps: Some(n),
            ..Limits::default()
        })
    }

    /// Emitted-item cap (e.g. `--max-repairs`).
    pub fn items(n: u64) -> Self {
        Budget::new(Limits {
            items: Some(n),
            ..Limits::default()
        })
    }

    /// Budget from the `CQA_BUDGET_STEPS` environment variable, if set to a
    /// positive integer. Used by the CLI when no explicit flag is given and
    /// by CI to run the whole test suite under a step budget.
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var("CQA_BUDGET_STEPS").ok()?;
        let n = raw.trim().parse::<u64>().ok()?;
        (n > 0).then(|| Budget::steps(n))
    }

    /// True when a *logical* cap (steps or items) is set. Budgeted call
    /// sites consult this to pick their sequential code path, which is what
    /// makes logical truncation byte-identical at any thread count (the
    /// same contract `minimal_hitting_sets` already honours for `limit`).
    pub fn forces_sequential(&self) -> bool {
        self.inner.step_cap.is_some() || self.inner.item_cap.is_some()
    }

    /// Charge one logical step. Returns `true` to continue, `false` once
    /// the budget is exhausted (by any limit, on any thread). Cheap enough
    /// to call per search node.
    pub fn tick(&self) -> bool {
        if self.exhausted() {
            return false;
        }
        if self.inner.cancel.is_cancelled() {
            self.latch(TruncationReason::Cancelled);
            return false;
        }
        let n = self.inner.steps.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(cap) = self.inner.step_cap {
            if n > cap {
                self.latch(TruncationReason::StepLimit);
                return false;
            }
        }
        if self.inner.deadline.is_some() && n % DEADLINE_CHECK_INTERVAL == 1 {
            return self.check_deadline();
        }
        true
    }

    /// Consult the wall clock *now* (ignoring the per-tick sampling
    /// interval). Returns `true` to continue. Call at coarse boundaries —
    /// chunk edges of a parallel fold, between repairs in a CQA loop —
    /// where prompt deadline detection matters more than per-node cost.
    pub fn check_deadline(&self) -> bool {
        if self.exhausted() {
            return false;
        }
        if self.inner.cancel.is_cancelled() {
            self.latch(TruncationReason::Cancelled);
            return false;
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                self.latch(TruncationReason::Deadline);
                return false;
            }
        }
        true
    }

    /// Charge one emitted item (a repair, a stable model…). Returns `true`
    /// while more items may be emitted; once the cap is reached the budget
    /// latches `ItemLimit` and this returns `false` — the item just charged
    /// is still valid, the caller should simply stop exploring for more.
    ///
    /// Like [`tick`](Budget::tick), this path observes cancellation
    /// immediately and samples the wall clock every
    /// `DEADLINE_CHECK_INTERVAL` items, so a loop that charges items
    /// without ever ticking (e.g. a streaming enumerator) still honours a
    /// deadline within the same overshoot bound as the step path.
    pub fn charge_item(&self) -> bool {
        if self.exhausted() {
            return false;
        }
        if self.inner.cancel.is_cancelled() {
            self.latch(TruncationReason::Cancelled);
            return false;
        }
        let n = self.inner.items.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(cap) = self.inner.item_cap {
            if n >= cap {
                self.latch(TruncationReason::ItemLimit);
                return false;
            }
        }
        if self.inner.deadline.is_some() && n % DEADLINE_CHECK_INTERVAL == 1 {
            return self.check_deadline();
        }
        true
    }

    /// Request cancellation of everything metered by this budget.
    pub fn cancel(&self) {
        self.inner.cancel.cancel();
        self.latch(TruncationReason::Cancelled);
    }

    /// A token other threads can use to cancel this budget's work.
    pub fn cancel_token(&self) -> CancelToken {
        self.inner.cancel.clone()
    }

    /// Has any limit fired? Monotone: once true, stays true.
    pub fn exhausted(&self) -> bool {
        self.inner.state.load(Ordering::Relaxed) != 0
    }

    /// The first limit that fired, if any.
    pub fn exhaustion(&self) -> Option<TruncationReason> {
        TruncationReason::from_code(self.inner.state.load(Ordering::Relaxed))
    }

    /// Steps charged so far.
    pub fn steps_used(&self) -> u64 {
        self.inner.steps.load(Ordering::Relaxed)
    }

    /// Items charged so far.
    pub fn items_used(&self) -> u64 {
        self.inner.items.load(Ordering::Relaxed)
    }

    /// Tag `value` with this budget's status: [`Outcome::Exact`] if within
    /// budget, [`Outcome::Truncated`] (with `explored` = steps charged)
    /// otherwise.
    pub fn outcome<T>(&self, value: T) -> Outcome<T> {
        self.outcome_with(value, self.steps_used())
    }

    /// Like [`outcome`](Budget::outcome) but with a consumer-defined
    /// `explored` count (repairs enumerated, models found…).
    pub fn outcome_with<T>(&self, value: T, explored: u64) -> Outcome<T> {
        match self.exhaustion() {
            None => Outcome::Exact(value),
            Some(reason) => Outcome::Truncated {
                value,
                reason,
                explored,
            },
        }
    }

    fn latch(&self, reason: TruncationReason) {
        // First writer wins; later limits observe the latched state and
        // leave it alone, so the reported reason is stable.
        let _ = self.inner.state.compare_exchange(
            0,
            reason.code(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            assert!(b.tick());
        }
        assert!(b.charge_item());
        assert!(!b.exhausted());
        assert_eq!(b.steps_used(), 10_000);
        assert!(matches!(b.outcome(42), Outcome::Exact(42)));
    }

    #[test]
    fn step_cap_latches_step_limit() {
        let b = Budget::steps(5);
        for _ in 0..5 {
            assert!(b.tick());
        }
        assert!(!b.tick());
        assert_eq!(b.exhaustion(), Some(TruncationReason::StepLimit));
        // Sticky: later ticks keep failing, reason unchanged.
        assert!(!b.tick());
        assert_eq!(b.exhaustion(), Some(TruncationReason::StepLimit));
        match b.outcome("partial") {
            Outcome::Truncated { value, reason, .. } => {
                assert_eq!(value, "partial");
                assert_eq!(reason, TruncationReason::StepLimit);
            }
            Outcome::Exact(_) => panic!("expected truncation"),
        }
    }

    #[test]
    fn item_cap_allows_exactly_cap_items() {
        let b = Budget::items(3);
        assert!(b.charge_item());
        assert!(b.charge_item());
        // Third item is valid but fills the cap.
        assert!(!b.charge_item());
        assert_eq!(b.items_used(), 3);
        assert_eq!(b.exhaustion(), Some(TruncationReason::ItemLimit));
    }

    #[test]
    fn deadline_fires() {
        let b = Budget::deadline_ms(0);
        std::thread::sleep(Duration::from_millis(2));
        assert!(!b.check_deadline());
        assert_eq!(b.exhaustion(), Some(TruncationReason::Deadline));
    }

    #[test]
    fn deadline_observed_through_tick_sampling() {
        let b = Budget::deadline_ms(0);
        std::thread::sleep(Duration::from_millis(2));
        let mut stopped = false;
        for _ in 0..(DEADLINE_CHECK_INTERVAL * 2) {
            if !b.tick() {
                stopped = true;
                break;
            }
        }
        assert!(stopped, "tick never consulted the clock");
    }

    /// Regression (PR 9): paths that only charge items — never ticking —
    /// used to blow past a wall-clock deadline indefinitely, because the
    /// clock was sampled exclusively in `tick`. The item path must truncate
    /// within the same sampling bound as the step path (the F15 overshoot
    /// bound: one `DEADLINE_CHECK_INTERVAL` window).
    #[test]
    fn deadline_observed_through_item_only_loop() {
        let b = Budget::new(Limits {
            deadline_ms: Some(1),
            items: Some(u64::MAX), // item metering on, cap never the stopper
            steps: None,
        });
        std::thread::sleep(Duration::from_millis(3));
        let mut charged = 0u64;
        for _ in 0..(DEADLINE_CHECK_INTERVAL * 2) {
            if !b.charge_item() {
                break;
            }
            charged += 1;
        }
        assert!(
            charged < DEADLINE_CHECK_INTERVAL * 2,
            "charge_item never consulted the clock ({charged} items after the deadline)"
        );
        assert_eq!(b.exhaustion(), Some(TruncationReason::Deadline));
    }

    #[test]
    fn item_only_loop_observes_cancellation() {
        let b = Budget::unlimited();
        assert!(b.charge_item());
        b.cancel_token().cancel();
        assert!(!b.charge_item());
        assert_eq!(b.exhaustion(), Some(TruncationReason::Cancelled));
    }

    /// Boundary pin (PR 9): a zero deadline means "truncate immediately,
    /// empty-but-sound", never "unlimited". The budget is born exhausted.
    #[test]
    fn zero_deadline_truncates_immediately() {
        let b = Budget::deadline_ms(0);
        assert!(b.exhausted(), "deadline 0 must latch at construction");
        assert_eq!(b.exhaustion(), Some(TruncationReason::Deadline));
        assert!(!b.tick());
        assert!(!b.charge_item());
        match b.outcome(Vec::<u8>::new()) {
            Outcome::Truncated { reason, .. } => assert_eq!(reason, TruncationReason::Deadline),
            Outcome::Exact(_) => panic!("deadline 0 must report truncation"),
        }
        // And via `Limits`, as the CLI/server build it.
        let b = Budget::new(Limits {
            deadline_ms: Some(0),
            ..Limits::default()
        });
        assert!(b.exhausted());
    }

    /// Boundary pin (PR 9): a deadline beyond the `Instant` horizon must not
    /// panic at construction; it degrades to "no deadline".
    #[test]
    fn huge_deadline_behaves_as_unlimited() {
        let b = Budget::deadline_ms(u64::MAX);
        assert!(!b.exhausted());
        for _ in 0..(DEADLINE_CHECK_INTERVAL * 3) {
            assert!(b.tick());
            assert!(b.charge_item());
        }
        assert!(b.check_deadline());
        assert!(matches!(b.outcome(1), Outcome::Exact(1)));
    }

    #[test]
    fn cancellation_is_shared_across_clones() {
        let b = Budget::unlimited();
        let token = b.cancel_token();
        let b2 = b.clone();
        assert!(b2.tick());
        token.cancel();
        assert!(!b2.tick());
        assert_eq!(b.exhaustion(), Some(TruncationReason::Cancelled));
    }

    #[test]
    fn first_reason_wins() {
        let b = Budget::new(Limits {
            steps: Some(1),
            items: Some(1),
            deadline_ms: None,
        });
        assert!(b.tick());
        assert!(!b.tick()); // latches StepLimit
        assert!(!b.charge_item()); // would be ItemLimit, but already latched
        assert_eq!(b.exhaustion(), Some(TruncationReason::StepLimit));
    }

    #[test]
    fn forces_sequential_only_for_logical_caps() {
        assert!(Budget::steps(10).forces_sequential());
        assert!(Budget::items(10).forces_sequential());
        assert!(!Budget::deadline_ms(10).forces_sequential());
        assert!(!Budget::unlimited().forces_sequential());
    }

    #[test]
    fn from_env_parses_positive_integers() {
        // Can't mutate the process environment safely in a parallel test
        // runner; just check the parse contract on whatever is set.
        match std::env::var("CQA_BUDGET_STEPS") {
            Ok(v) if v.trim().parse::<u64>().map(|n| n > 0).unwrap_or(false) => {
                assert!(Budget::from_env().is_some());
            }
            _ => assert!(Budget::from_env().is_none()),
        }
    }

    #[test]
    fn outcome_accessors() {
        let e: Outcome<i32> = Outcome::Exact(7);
        assert!(e.is_exact());
        assert_eq!(*e.value(), 7);
        assert_eq!(e.truncation(), None);
        let t = Outcome::Truncated {
            value: 3,
            reason: TruncationReason::Deadline,
            explored: 12,
        };
        assert!(t.is_truncated());
        assert_eq!(t.truncation(), Some((TruncationReason::Deadline, 12)));
        assert_eq!(t.map(|v| v * 2).into_value(), 6);
        assert_eq!(format!("{}", TruncationReason::Deadline), "deadline");
    }
}
