//! Thread-count resolution.
//!
//! Priority, highest first: the thread-local override installed by
//! [`with_threads`] (used by tests and the bench harness so concurrent
//! callers don't race on a global), the process-wide value from
//! [`set_threads`] (the `--threads` CLI flag), the `CQA_THREADS`
//! environment variable, and the machine's available parallelism capped at
//! [`MAX_DEFAULT_THREADS`]. Worker threads spawned by the pool always
//! report 1 so nested parallel sites run inline.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Cap on the *default* (auto-detected) thread count. An explicit
/// `--threads`/`CQA_THREADS`/[`with_threads`] request may exceed it.
pub const MAX_DEFAULT_THREADS: usize = 8;

/// 0 = unset (fall through to env / auto-detection).
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// 0 = no override on this thread.
    static LOCAL_THREADS: Cell<usize> = const { Cell::new(0) };
    /// True on worker threads spawned by this crate's pool.
    pub(crate) static IN_POOL: Cell<bool> = const { Cell::new(false) };
    /// 0 = no override, 1 = cache on, 2 = cache off (this thread only).
    static LOCAL_PLAN_CACHE: Cell<u8> = const { Cell::new(0) };
}

/// 0 = unset (fall through to env / default-on), 1 = on, 2 = off.
static GLOBAL_PLAN_CACHE: AtomicUsize = AtomicUsize::new(0);

/// Snapshot of the execution configuration, for display (the bench harness
/// prints one in its header).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Effective worker count [`threads`] resolves to right now.
    pub threads: usize,
    /// Where the count came from.
    pub source: &'static str,
}

impl ExecConfig {
    /// Resolve the current configuration.
    pub fn current() -> Self {
        let (threads, source) = resolve();
        ExecConfig { threads, source }
    }
}

impl std::fmt::Display for ExecConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.threads, self.source)
    }
}

fn resolve() -> (usize, &'static str) {
    let local = LOCAL_THREADS.with(Cell::get);
    if local != 0 {
        return (local, "override");
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global != 0 {
        return (global, "--threads");
    }
    if let Ok(s) = std::env::var("CQA_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n != 0 {
                return (n, "CQA_THREADS");
            }
        }
    }
    let auto = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_DEFAULT_THREADS);
    (auto, "auto")
}

/// Effective worker count for parallel combinators on the calling thread.
/// Always ≥ 1; always 1 on a pool worker thread (no nested spawning).
pub fn threads() -> usize {
    if IN_POOL.with(Cell::get) {
        return 1;
    }
    resolve().0
}

/// Set the process-wide thread count (`0` clears it, falling back to
/// `CQA_THREADS` / auto-detection). Wired to `repairctl --threads N`.
pub fn set_threads(n: usize) {
    GLOBAL_THREADS.store(n, Ordering::Relaxed);
}

/// Run `f` with the effective thread count pinned to `n` on this thread
/// (and on pools it spawns). Restores the previous override on exit, even
/// on panic; concurrent callers on other threads are unaffected, which is
/// what makes side-by-side sequential-vs-parallel comparisons race-free.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            LOCAL_THREADS.with(|c| c.set(self.0));
        }
    }
    let prev = LOCAL_THREADS.with(|c| c.replace(n));
    let _restore = Restore(prev);
    f()
}

/// Is the `cqa-query` subplan cache enabled? Resolution mirrors
/// [`threads`], highest priority first: the thread-local override from
/// [`with_plan_cache`], the process-wide value from [`set_plan_cache`], the
/// `CQA_PLAN_CACHE` environment variable (`0`/`off`/`false` disable), and
/// the default **on**. This is the single sanctioned ambient read for the
/// cache — `cqa-query` itself never touches the environment (L005).
pub fn plan_cache_enabled() -> bool {
    let local = LOCAL_PLAN_CACHE.with(Cell::get);
    if local != 0 {
        return local == 1;
    }
    let global = GLOBAL_PLAN_CACHE.load(Ordering::Relaxed);
    if global != 0 {
        return global == 1;
    }
    if let Ok(s) = std::env::var("CQA_PLAN_CACHE") {
        let s = s.trim();
        if s == "0" || s.eq_ignore_ascii_case("off") || s.eq_ignore_ascii_case("false") {
            return false;
        }
    }
    true
}

/// Set the process-wide plan-cache switch (`None` clears it, falling back
/// to `CQA_PLAN_CACHE` / default-on). Wired to `repaird --no-plan-cache`
/// style flags.
pub fn set_plan_cache(on: Option<bool>) {
    let v = match on {
        None => 0,
        Some(true) => 1,
        Some(false) => 2,
    };
    GLOBAL_PLAN_CACHE.store(v, Ordering::Relaxed);
}

/// Run `f` with the plan cache pinned on/off on this thread. Restores the
/// previous override on exit, even on panic — the race-free way for tests
/// and the harness to compare sharing-on vs sharing-off side by side.
pub fn with_plan_cache<R>(on: bool, f: impl FnOnce() -> R) -> R {
    struct Restore(u8);
    impl Drop for Restore {
        fn drop(&mut self) {
            LOCAL_PLAN_CACHE.with(|c| c.set(self.0));
        }
    }
    let prev = LOCAL_PLAN_CACHE.with(|c| c.replace(if on { 1 } else { 2 }));
    let _restore = Restore(prev);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_cache_override_wins_and_restores() {
        with_plan_cache(false, || {
            assert!(!plan_cache_enabled());
            with_plan_cache(true, || assert!(plan_cache_enabled()));
            assert!(!plan_cache_enabled());
        });
        // Global switch applies when no local override is active.
        set_plan_cache(Some(false));
        assert!(!plan_cache_enabled());
        set_plan_cache(Some(true));
        assert!(plan_cache_enabled());
        set_plan_cache(None);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = threads();
        with_threads(3, || {
            assert_eq!(threads(), 3);
            with_threads(5, || assert_eq!(threads(), 5));
            assert_eq!(threads(), 3);
        });
        assert_eq!(threads(), outer);
    }

    #[test]
    fn with_threads_restores_on_panic() {
        let before = threads();
        let r = std::panic::catch_unwind(|| with_threads(7, || panic!("boom")));
        assert!(r.is_err());
        assert_eq!(threads(), before);
    }

    #[test]
    fn threads_is_positive() {
        assert!(threads() >= 1);
    }

    #[test]
    fn config_displays() {
        let c = ExecConfig::current();
        assert!(c.threads >= 1);
        assert!(!format!("{c}").is_empty());
    }
}
