//! Seeded schedule perturbation for the execution pool.
//!
//! The determinism contract ("byte-identical results at any thread count")
//! is only as strong as the schedules it has been exercised under. This
//! module lets the test suite *force* unusual schedules instead of hoping
//! the OS produces them: under the `schedule-fuzz` feature,
//! [`with_schedule_seed`] arms a thread-local seed, and every pool worker
//! derives a private xorshift stream from `(seed, worker index)` that
//! injects random yields/spins before cursor claims ([`crate::par_map`] and
//! friends) and shuffles which queued branch a [`crate::run_queue`] worker
//! steals next. Results must not change — the order-restoring sort in the
//! pool and the order-insensitive folds above the queue are exactly what
//! the perturbation attacks.
//!
//! With the feature disabled (the default), [`Perturber`] is a unit struct
//! whose methods are empty `#[inline]` bodies: the hooks in `pool.rs` and
//! `queue.rs` compile away entirely. With the feature enabled but no seed
//! armed, the perturber state is zero and every method returns on its first
//! branch, so production behaviour is unchanged there too.
//!
//! The sequential paths (effective thread count 1) are deliberately *not*
//! perturbed: they are the reference the parallel schedules are judged
//! against.

#[cfg(feature = "schedule-fuzz")]
mod imp {
    use std::cell::Cell;

    thread_local! {
        /// The armed seed; 0 means perturbation is off.
        static SCHEDULE_SEED: Cell<u64> = const { Cell::new(0) };
    }

    /// Run `f` with schedule perturbation armed. Workers spawned by pool
    /// combinators *while `f` runs on this thread* perturb their schedules
    /// deterministically from `seed`; a `seed` of 0 disables perturbation.
    /// The previous seed is restored even if `f` panics.
    pub fn with_schedule_seed<R>(seed: u64, f: impl FnOnce() -> R) -> R {
        struct Restore(u64);
        impl Drop for Restore {
            fn drop(&mut self) {
                SCHEDULE_SEED.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(SCHEDULE_SEED.with(|c| c.replace(seed)));
        f()
    }

    /// A per-worker perturbation stream. Constructed on the spawning thread
    /// (where the seed thread-local lives) and moved into the worker.
    pub(crate) struct Perturber {
        state: u64,
    }

    impl Perturber {
        /// Derive the stream for worker `worker` from the armed seed.
        /// Reads the calling thread's seed, so this must run before the
        /// closure is moved into `thread::scope`'s spawn.
        pub(crate) fn for_worker(worker: usize) -> Perturber {
            let seed = SCHEDULE_SEED.with(|c| c.get());
            let state = if seed == 0 {
                0
            } else {
                // SplitMix64 over seed ⊕ worker decorrelates the per-worker
                // streams; `| 1` keeps the xorshift state nonzero.
                let mut z = seed ^ ((worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) | 1
            };
            Perturber { state }
        }

        fn next(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.state = x;
            x
        }

        /// Maybe delay this worker: a quarter of calls yield the timeslice,
        /// a quarter spin briefly, the rest do nothing. No-op when unarmed.
        pub(crate) fn maybe_yield(&mut self) {
            if self.state == 0 {
                return;
            }
            match self.next() % 4 {
                0 => std::thread::yield_now(),
                1 => {
                    let spins = self.next() % 64;
                    for _ in 0..spins {
                        std::hint::spin_loop();
                    }
                }
                _ => {}
            }
        }

        /// Which of `len` queued tasks to steal next: index 0 (FIFO, the
        /// unperturbed behaviour) when unarmed, a seeded choice otherwise.
        pub(crate) fn pick(&mut self, len: usize) -> usize {
            if self.state == 0 || len <= 1 {
                0
            } else {
                (self.next() % len as u64) as usize
            }
        }
    }
}

#[cfg(not(feature = "schedule-fuzz"))]
mod imp {
    /// Zero-cost stand-in when `schedule-fuzz` is off: every hook inlines
    /// to nothing, so the production pool pays for none of this.
    pub(crate) struct Perturber;

    impl Perturber {
        #[inline(always)]
        pub(crate) fn for_worker(_worker: usize) -> Perturber {
            Perturber
        }

        #[inline(always)]
        pub(crate) fn maybe_yield(&mut self) {}

        #[inline(always)]
        pub(crate) fn pick(&mut self, _len: usize) -> usize {
            0
        }
    }
}

#[cfg(feature = "schedule-fuzz")]
pub use imp::with_schedule_seed;
pub(crate) use imp::Perturber;

#[cfg(all(test, feature = "schedule-fuzz"))]
mod tests {
    use super::*;

    #[test]
    fn unarmed_perturber_is_identity() {
        let mut p = Perturber::for_worker(3);
        p.maybe_yield();
        assert_eq!(p.pick(10), 0);
        assert_eq!(p.pick(10), 0);
    }

    #[test]
    fn armed_perturber_varies_picks_and_restores_seed() {
        let picks = with_schedule_seed(42, || {
            let mut p = Perturber::for_worker(0);
            (0..32).map(|_| p.pick(7)).collect::<Vec<_>>()
        });
        assert!(picks.iter().any(|&i| i != 0), "{picks:?}");
        assert!(picks.iter().all(|&i| i < 7), "{picks:?}");
        // Seed restored: a perturber built afterwards is unarmed.
        assert_eq!(Perturber::for_worker(0).pick(7), 0);
    }

    #[test]
    fn streams_are_deterministic_per_seed_and_worker() {
        let run = |seed, worker| {
            with_schedule_seed(seed, || {
                let mut p = Perturber::for_worker(worker);
                (0..16).map(|_| p.pick(100)).collect::<Vec<_>>()
            })
        };
        assert_eq!(run(7, 1), run(7, 1));
        assert_ne!(run(7, 1), run(7, 2));
        assert_ne!(run(7, 1), run(8, 1));
    }
}
