//! Scoped fork-join execution for the CQA workspace.
//!
//! The expensive regimes of consistent query answering are embarrassingly
//! parallel across *independent* units of work: repairs (certain answers
//! quantify over all of them), branches of the hitting-set search tree,
//! rules of an ASP program being grounded, and candidate causes whose
//! responsibility is computed one reduced hypergraph at a time. This crate
//! provides the one shared primitive those sites need — a std-only scoped
//! thread pool — without pulling in an external runtime (the build is
//! offline; no rayon).
//!
//! # Design
//!
//! * **Scoped, not pooled.** Workers are spawned per call with
//!   [`std::thread::scope`], so borrowed inputs (`&[T]`) cross into workers
//!   without `'static` bounds or `Arc` wrapping, and there is no global
//!   runtime to configure, leak, or shut down.
//! * **Deterministic by construction.** [`par_map`] and
//!   [`par_filter_map`] return results in input order regardless of
//!   completion order; [`run_queue`] makes no ordering promise, so callers
//!   merge its results into order-insensitive structures (`BTreeSet`s).
//!   Every call site in the workspace is byte-identical to its sequential
//!   behaviour at any thread count — see `tests/parallel_determinism.rs`
//!   at the workspace root.
//! * **Sequential means sequential.** With an effective thread count of 1
//!   the combinators run inline on the calling thread: no spawn, no
//!   channel, the exact code path a single-threaded build would take.
//! * **No nested oversubscription.** Worker threads record that they are
//!   inside a pool; [`threads`] returns 1 on such threads, so a parallel
//!   site reached from inside another parallel site (e.g. hitting-set
//!   search inside per-candidate responsibility) degrades to sequential
//!   instead of spawning `n²` threads.
//! * **Adversarially schedulable.** Under the `schedule-fuzz` feature the
//!   test suite arms a seed (`with_schedule_seed`) that makes workers
//!   yield/spin at random points and steal queued branches in seeded
//!   random order; `tests/schedule_fuzz.rs` at the workspace root asserts
//!   outputs stay byte-identical across ≥ 16 perturbed schedules. The
//!   feature is off by default and the hooks compile to nothing.
//!
//! The effective thread count is resolved, in priority order, from the
//! thread-local override ([`with_threads`]), the process-wide setting
//! ([`set_threads`], fed by `repairctl --threads N`), the `CQA_THREADS`
//! environment variable, and finally [`std::thread::available_parallelism`]
//! capped at 8.

#![forbid(unsafe_code)]

mod budget;
mod config;
mod fuzz;
mod pool;
mod queue;
mod service;

pub use budget::{Budget, CancelToken, Limits, Outcome, TruncationReason};
pub use config::{
    plan_cache_enabled, set_plan_cache, set_threads, threads, with_plan_cache, with_threads,
    ExecConfig,
};
#[cfg(feature = "schedule-fuzz")]
pub use fuzz::with_schedule_seed;
pub use pool::{chunks_of, par_any, par_filter_map, par_for_each, par_map, par_map_cancellable};
pub use queue::run_queue;
pub use service::{AdmissionGate, AdmissionPermit, ServiceGroup};
