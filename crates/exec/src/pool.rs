//! Order-preserving fork-join combinators over slices.
//!
//! Work distribution is a single shared [`AtomicUsize`] cursor: each worker
//! claims the next unprocessed index (or chunk) with `fetch_add`, so load
//! balances automatically across items of uneven cost — exactly the shape
//! of hitting-set branches and per-repair query evaluation. Each worker
//! keeps `(index, result)` pairs locally; the caller concatenates, sorts by
//! index once, and returns results in input order, making the output
//! independent of scheduling.

use crate::budget::CancelToken;
use crate::config::{threads, IN_POOL};
use crate::fuzz::Perturber;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Claim granularity for the shared cursor. Items are claimed in blocks of
/// this size to keep contention on the cursor negligible while still
/// balancing uneven per-item cost.
const CLAIM_BLOCK: usize = 4;

fn run_workers<T: Sync, R: Send>(
    items: &[T],
    n_workers: usize,
    f: &(impl Fn(usize, &T) -> R + Sync),
    stop: Option<&AtomicBool>,
) -> Vec<(usize, R)> {
    let cursor = AtomicUsize::new(0);
    // Schedule-fuzz hook: under an armed seed, each worker jitters before
    // claiming so the cursor interleaving varies run to run. The
    // order-restoring sort downstream must absorb every interleaving.
    let worker = |out: &mut Vec<(usize, R)>, perturb: &mut Perturber| loop {
        if stop.is_some_and(|s| s.load(Ordering::Relaxed)) {
            return;
        }
        perturb.maybe_yield();
        let start = cursor.fetch_add(CLAIM_BLOCK, Ordering::Relaxed);
        if start >= items.len() {
            return;
        }
        let end = (start + CLAIM_BLOCK).min(items.len());
        for (i, item) in items.iter().enumerate().take(end).skip(start) {
            out.push((i, f(i, item)));
            if stop.is_some_and(|s| s.load(Ordering::Relaxed)) {
                return;
            }
        }
    };
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_workers)
            .map(|w| {
                // Built on the spawning thread, where the seed lives.
                let mut perturb = Perturber::for_worker(w);
                let worker = &worker;
                scope.spawn(move || {
                    IN_POOL.with(|c| c.set(true));
                    let mut out = Vec::new();
                    worker(&mut out, &mut perturb);
                    out
                })
            })
            .collect();
        let mut all = Vec::with_capacity(items.len());
        for h in handles {
            match h.join() {
                Ok(part) => all.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        all
    })
}

/// Whether a call over `len` items should actually spawn. Returns the
/// worker count to use, or `None` to run inline.
fn plan(len: usize) -> Option<usize> {
    let n = threads();
    if n <= 1 || len <= 1 {
        None
    } else {
        Some(n.min(len.div_ceil(CLAIM_BLOCK)).max(2).min(len))
    }
}

/// Map `f` over `items`, in parallel when the effective thread count allows
/// it. Results are returned in input order regardless of which worker
/// produced them; with 1 thread this is exactly `items.iter().map(f)`.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    match plan(items.len()) {
        None => items.iter().map(f).collect(),
        Some(n) => {
            let mut tagged = run_workers(items, n, &|_, t| f(t), None);
            tagged.sort_unstable_by_key(|&(i, _)| i);
            tagged.into_iter().map(|(_, r)| r).collect()
        }
    }
}

/// [`par_map`] that drops `None` results, preserving input order among the
/// survivors.
pub fn par_filter_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> Option<R> + Sync) -> Vec<R> {
    match plan(items.len()) {
        None => items.iter().filter_map(f).collect(),
        Some(n) => {
            let mut tagged = run_workers(items, n, &|_, t| f(t), None);
            tagged.sort_unstable_by_key(|&(i, _)| i);
            tagged.into_iter().filter_map(|(_, r)| r).collect()
        }
    }
}

/// Run `f` over every item for its side effects on worker-local state the
/// caller owns; per-item results are discarded. `f` receives the item
/// index, so callers needing output can write into pre-sized shared
/// structures of their own (or just use [`par_map`]).
pub fn par_for_each<T: Sync>(items: &[T], f: impl Fn(usize, &T) + Sync) {
    match plan(items.len()) {
        None => items.iter().enumerate().for_each(|(i, t)| f(i, t)),
        Some(n) => {
            run_workers(items, n, &|i, t| f(i, t), None);
        }
    }
}

/// Does `f` hold for any item? Short-circuits across workers via a shared
/// flag: once one worker finds a witness the others stop claiming items.
/// The boolean result is scheduling-independent even though the set of
/// items inspected is not.
pub fn par_any<T: Sync>(items: &[T], f: impl Fn(&T) -> bool + Sync) -> bool {
    match plan(items.len()) {
        None => items.iter().any(f),
        Some(n) => {
            let stop = AtomicBool::new(false);
            let hits = run_workers(
                items,
                n,
                &|_, t| {
                    if f(t) {
                        stop.store(true, Ordering::Relaxed);
                        true
                    } else {
                        false
                    }
                },
                Some(&stop),
            );
            hits.into_iter().any(|(_, hit)| hit)
        }
    }
}

/// [`par_map`] that drains promptly when `cancel` fires: workers stop
/// claiming items and finish only the item they are on. Returns `None` if
/// cancellation was observed (partial results are *discarded*, so the value
/// a caller acts on never depends on how far scheduling happened to get),
/// `Some(results)` in input order otherwise.
///
/// The sequential path checks the token between items, so a single-threaded
/// run under a cancelled token returns `None` just the same.
pub fn par_map_cancellable<T: Sync, R: Send>(
    items: &[T],
    cancel: &CancelToken,
    f: impl Fn(&T) -> R + Sync,
) -> Option<Vec<R>> {
    match plan(items.len()) {
        None => {
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                if cancel.is_cancelled() {
                    return None;
                }
                out.push(f(item));
            }
            if cancel.is_cancelled() {
                return None;
            }
            Some(out)
        }
        Some(n) => {
            let mut tagged = run_workers(items, n, &|_, t| f(t), Some(cancel.flag()));
            if cancel.is_cancelled() || tagged.len() < items.len() {
                return None;
            }
            tagged.sort_unstable_by_key(|&(i, _)| i);
            Some(tagged.into_iter().map(|(_, r)| r).collect())
        }
    }
}

/// Split `0..len` into contiguous chunks of at most `chunk` items,
/// returned as `(start, end)` ranges. Used by call sites that need a
/// barrier between chunks (e.g. certain-answer intersection, which wants
/// to early-exit once the accumulator is empty).
pub fn chunks_of(len: usize, chunk: usize) -> Vec<(usize, usize)> {
    assert!(chunk > 0, "chunk size must be positive");
    (0..len.div_ceil(chunk))
        .map(|k| (k * chunk, ((k + 1) * chunk).min(len)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::with_threads;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        for t in [1, 2, 3, 8] {
            let got = with_threads(t, || par_map(&items, |&x| x * x));
            let want: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(got, want, "threads={t}");
        }
    }

    #[test]
    fn par_filter_map_preserves_order() {
        let items: Vec<i32> = (0..100).collect();
        for t in [1, 2, 8] {
            let got = with_threads(t, || {
                par_filter_map(&items, |&x| (x % 3 == 0).then_some(x * 2))
            });
            let want: Vec<i32> = items
                .iter()
                .filter_map(|&x| (x % 3 == 0).then_some(x * 2))
                .collect();
            assert_eq!(got, want, "threads={t}");
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<i32> = vec![];
        assert!(with_threads(8, || par_map(&empty, |&x| x)).is_empty());
        assert_eq!(with_threads(8, || par_map(&[42], |&x| x + 1)), vec![43]);
    }

    #[test]
    fn par_any_finds_witness() {
        let items: Vec<u32> = (0..1000).collect();
        for t in [1, 2, 8] {
            assert!(with_threads(t, || par_any(&items, |&x| x == 999)));
            assert!(!with_threads(t, || par_any(&items, |&x| x > 5000)));
        }
    }

    #[test]
    fn par_for_each_visits_every_item() {
        use std::sync::atomic::AtomicU64;
        let items: Vec<u64> = (1..=100).collect();
        for t in [1, 2, 8] {
            let sum = AtomicU64::new(0);
            with_threads(t, || {
                par_for_each(&items, |_, &x| {
                    sum.fetch_add(x, Ordering::Relaxed);
                })
            });
            assert_eq!(sum.load(Ordering::Relaxed), 5050, "threads={t}");
        }
    }

    #[test]
    fn nested_parallel_degrades_to_inline() {
        let outer: Vec<u32> = (0..8).collect();
        let got = with_threads(4, || {
            par_map(&outer, |&x| {
                // On a worker thread the effective count must be 1, so the
                // inner call runs inline instead of spawning again.
                assert_eq!(threads(), 1);
                let inner: Vec<u32> = (0..10).collect();
                par_map(&inner, |&y| y).into_iter().sum::<u32>() + x
            })
        });
        let want: Vec<u32> = (0..8).map(|x| 45 + x).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn panics_propagate() {
        let items: Vec<u32> = (0..64).collect();
        let r = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_map(&items, |&x| if x == 33 { panic!("x") } else { x })
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn par_map_cancellable_completes_when_not_cancelled() {
        let items: Vec<u64> = (0..257).collect();
        let want: Vec<u64> = items.iter().map(|&x| x + 1).collect();
        for t in [1, 2, 8] {
            let token = CancelToken::new();
            let got = with_threads(t, || par_map_cancellable(&items, &token, |&x| x + 1));
            assert_eq!(got, Some(want.clone()), "threads={t}");
        }
    }

    #[test]
    fn par_map_cancellable_discards_partial_results() {
        let items: Vec<u64> = (0..4096).collect();
        for t in [1, 4] {
            let token = CancelToken::new();
            let inner = token.clone();
            let got = with_threads(t, || {
                par_map_cancellable(&items, &token, |&x| {
                    if x == 17 {
                        inner.cancel();
                    }
                    x
                })
            });
            assert_eq!(got, None, "threads={t}");
        }
    }

    #[test]
    fn par_map_cancellable_pre_cancelled_is_none() {
        let token = CancelToken::new();
        token.cancel();
        let items: Vec<u32> = (0..64).collect();
        assert_eq!(
            with_threads(4, || par_map_cancellable(&items, &token, |&x| x)),
            None
        );
    }

    #[test]
    fn chunks_cover_range() {
        assert_eq!(chunks_of(0, 4), vec![]);
        assert_eq!(chunks_of(3, 4), vec![(0, 3)]);
        assert_eq!(chunks_of(8, 4), vec![(0, 4), (4, 8)]);
        assert_eq!(chunks_of(9, 4), vec![(0, 4), (4, 8), (8, 9)]);
    }
}
