//! A work queue for recursive branch splitting.
//!
//! Hitting-set enumeration explores a search tree whose shape is only
//! discovered while exploring it, so a static `par_map` over the root's
//! children load-balances poorly (one child may hold almost the whole
//! tree). [`run_queue`] instead lets each worker push newly discovered
//! branches back onto a shared queue, where any idle worker picks them up.
//!
//! Completion is detected with an *active counter*: a task is counted from
//! the moment it is popped until its subtasks (if any) have been pushed, so
//! "queue empty ∧ nothing active" is a stable termination condition.
//!
//! No ordering is promised for the returned results — callers must fold
//! them into order-insensitive structures (`BTreeSet`, min, sum…) to keep
//! output deterministic.

use crate::config::{threads, IN_POOL};
use crate::fuzz::Perturber;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Shared<T> {
    queue: VecDeque<T>,
    active: usize,
    panicked: bool,
}

/// Process `seeds` and every subtask transitively spawned from them.
///
/// For each task, `worker(task, &mut subtasks, &mut results)` runs exactly
/// once; tasks it appends to `subtasks` are fed back into the queue. With
/// an effective thread count of 1 this is a plain loop over a local queue
/// (FIFO, seeds first) on the calling thread.
pub fn run_queue<T: Send, R: Send>(
    seeds: Vec<T>,
    worker: impl Fn(T, &mut Vec<T>, &mut Vec<R>) + Sync,
) -> Vec<R> {
    let n = threads();
    if n <= 1 || seeds.len() <= 1 {
        // A single seed still fans out through subtasks, but going parallel
        // only pays once there is real breadth; the call sites pre-split
        // the root into one seed per branch.
        if n <= 1 || seeds.is_empty() {
            let mut queue: VecDeque<T> = seeds.into();
            let mut results = Vec::new();
            let mut spawn = Vec::new();
            while let Some(task) = queue.pop_front() {
                worker(task, &mut spawn, &mut results);
                queue.extend(spawn.drain(..));
            }
            return results;
        }
    }

    let shared = Mutex::new(Shared {
        queue: seeds.into(),
        active: 0,
        panicked: false,
    });
    let ready = Condvar::new();

    let run_one = |perturb: &mut Perturber| {
        let mut results = Vec::new();
        let mut spawn = Vec::new();
        let mut guard = shared.lock().expect("queue poisoned");
        loop {
            if guard.panicked {
                return results;
            }
            // Schedule-fuzz hook: under an armed seed a worker steals a
            // random queued branch instead of the FIFO head (`pick` is 0
            // when unarmed, and `remove(0)` is exactly `pop_front`). The
            // no-ordering promise above is what this attacks.
            let idx = perturb.pick(guard.queue.len());
            if let Some(task) = guard.queue.remove(idx) {
                guard.active += 1;
                drop(guard);
                perturb.maybe_yield();
                worker(task, &mut spawn, &mut results);
                guard = shared.lock().expect("queue poisoned");
                guard.active -= 1;
                if !spawn.is_empty() {
                    guard.queue.extend(spawn.drain(..));
                    ready.notify_all();
                } else if guard.active == 0 && guard.queue.is_empty() {
                    ready.notify_all();
                }
            } else if guard.active == 0 {
                return results;
            } else {
                guard = ready.wait(guard).expect("queue poisoned");
            }
        }
    };

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|w| {
                let mut perturb = Perturber::for_worker(w);
                let run_one = &run_one;
                let shared = &shared;
                let ready = &ready;
                scope.spawn(move || {
                    IN_POOL.with(|c| c.set(true));
                    // Make sure a worker panic wakes the others up instead
                    // of leaving them waiting on the condvar forever.
                    struct Alarm<'a, T> {
                        shared: &'a Mutex<Shared<T>>,
                        ready: &'a Condvar,
                        armed: bool,
                    }
                    impl<T> Drop for Alarm<'_, T> {
                        fn drop(&mut self) {
                            if self.armed {
                                if let Ok(mut g) = self.shared.lock() {
                                    g.panicked = true;
                                }
                                self.ready.notify_all();
                            }
                        }
                    }
                    let mut alarm = Alarm {
                        shared,
                        ready,
                        armed: true,
                    };
                    let out = run_one(&mut perturb);
                    alarm.armed = false;
                    out
                })
            })
            .collect();
        let mut all = Vec::new();
        let mut panic_payload = None;
        for h in handles {
            match h.join() {
                Ok(part) => all.extend(part),
                Err(p) => panic_payload = Some(p),
            }
        }
        if let Some(p) = panic_payload {
            std::panic::resume_unwind(p);
        }
        all
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::with_threads;
    use std::collections::BTreeSet;

    /// Count nodes of a binary tree of the given depth by splitting.
    fn tree_count(threads_n: usize, depth: u32) -> usize {
        with_threads(threads_n, || {
            run_queue(vec![depth], |d, spawn, results| {
                results.push(1usize);
                if d > 0 {
                    spawn.push(d - 1);
                    spawn.push(d - 1);
                }
            })
        })
        .len()
    }

    #[test]
    fn counts_tree_nodes_at_any_thread_count() {
        for t in [1, 2, 8] {
            assert_eq!(tree_count(t, 10), 2usize.pow(11) - 1, "threads={t}");
        }
    }

    #[test]
    fn results_match_sequential_as_a_set() {
        let collect = |t| -> BTreeSet<u32> {
            with_threads(t, || {
                run_queue(vec![0u32, 1, 2, 3], |x, spawn, results| {
                    results.push(x);
                    if x < 40 {
                        spawn.push(x + 4);
                    }
                })
            })
            .into_iter()
            .collect()
        };
        let seq = collect(1);
        assert_eq!(seq.len(), 44);
        for t in [2, 8] {
            assert_eq!(collect(t), seq, "threads={t}");
        }
    }

    #[test]
    fn empty_seeds_yield_nothing() {
        let out: Vec<u8> = with_threads(8, || run_queue(Vec::<u8>::new(), |_, _, r| r.push(1)));
        assert!(out.is_empty());
    }

    #[test]
    fn worker_panic_propagates_without_hanging() {
        let r = std::panic::catch_unwind(|| {
            with_threads(4, || {
                run_queue(
                    vec![0u32, 1, 2, 3, 4, 5, 6, 7],
                    |x, spawn, results: &mut Vec<u32>| {
                        if x == 5 {
                            panic!("branch failure");
                        }
                        if x < 100 {
                            spawn.push(x + 8);
                        }
                        results.push(x);
                    },
                )
            })
        });
        assert!(r.is_err());
    }
}
