//! Long-lived service threads and admission control.
//!
//! The fork-join combinators in [`crate::pool`] cover the *compute* side of
//! the workspace; a network server additionally needs a handful of
//! **service** threads (an accept loop, per-connection handlers, a
//! disconnect watcher) that outlive any single call, plus a bounded
//! admission gate so one expensive request cannot queue unbounded work
//! behind it. Those primitives live here — inside `cqa-exec` — so the rest
//! of the workspace never touches `std::thread` or ad-hoc synchronisation
//! directly (the L004 audit rule enforces exactly that).
//!
//! * [`ServiceGroup`] — spawn named service threads and join them all on
//!   shutdown. Threads receive a shared [`CancelToken`]-style stop flag via
//!   the closure they were built from; the group only guarantees that
//!   `join_all` blocks until every spawned thread has exited.
//! * [`AdmissionGate`] — a lock-free in-flight counter with a hard
//!   capacity: `try_enter` either hands out an RAII [`AdmissionPermit`] or
//!   refuses immediately (the caller answers "busy, retry later" — never
//!   blocks, never queues).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A set of long-lived service threads joined together on shutdown.
///
/// Unlike the scoped pool, these threads are `'static`: they own their
/// state (typically an `Arc` of the server internals plus a stop flag) and
/// run until that flag tells them to drain.
#[derive(Debug, Default)]
pub struct ServiceGroup {
    handles: Vec<(String, JoinHandle<()>)>,
}

impl ServiceGroup {
    /// An empty group.
    pub fn new() -> ServiceGroup {
        ServiceGroup::default()
    }

    /// Spawn a named service thread and track it for [`join_all`]. Returns
    /// `false` if the OS refused to spawn (resource exhaustion) — the
    /// closure is dropped unrun and the caller decides how to degrade.
    ///
    /// [`join_all`]: ServiceGroup::join_all
    pub fn spawn(&mut self, name: &str, f: impl FnOnce() + Send + 'static) -> bool {
        match std::thread::Builder::new().name(name.to_string()).spawn(f) {
            Ok(handle) => {
                self.handles.push((name.to_string(), handle));
                true
            }
            Err(_) => false,
        }
    }

    /// Detached variant for threads whose lifetime is bounded by something
    /// else (e.g. a per-connection handler that exits when the peer hangs
    /// up); the handle is dropped, not tracked. Returns `false` when the OS
    /// refused to spawn.
    pub fn spawn_detached(name: &str, f: impl FnOnce() + Send + 'static) -> bool {
        std::thread::Builder::new()
            .name(name.to_string())
            .spawn(f)
            .is_ok()
    }

    /// Number of tracked (not necessarily still running) threads.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// True when no threads are tracked.
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Block until every tracked thread has exited. Panics in service
    /// threads are contained: a poisoned handle is reported by name in the
    /// returned list instead of propagating.
    pub fn join_all(&mut self) -> Vec<String> {
        let mut panicked = Vec::new();
        for (name, handle) in self.handles.drain(..) {
            if handle.join().is_err() {
                panicked.push(name);
            }
        }
        panicked
    }
}

struct GateInner {
    in_flight: AtomicUsize,
    capacity: usize,
    /// Total requests ever refused; exposed for server stats.
    refused: AtomicUsize,
}

/// A bounded, non-blocking admission gate: at most `capacity` permits are
/// out at any instant. Cloning shares the counter.
#[derive(Clone)]
pub struct AdmissionGate {
    inner: Arc<GateInner>,
}

impl std::fmt::Debug for AdmissionGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionGate")
            .field("capacity", &self.inner.capacity)
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

impl AdmissionGate {
    /// A gate admitting at most `capacity` concurrent holders. A capacity
    /// of 0 refuses everything (useful to drain a server).
    pub fn new(capacity: usize) -> AdmissionGate {
        AdmissionGate {
            inner: Arc::new(GateInner {
                in_flight: AtomicUsize::new(0),
                capacity,
                refused: AtomicUsize::new(0),
            }),
        }
    }

    /// Try to enter: `Some(permit)` on success (released when the permit
    /// drops), `None` when the gate is at capacity. Never blocks.
    pub fn try_enter(&self) -> Option<AdmissionPermit> {
        let mut current = self.inner.in_flight.load(Ordering::Relaxed);
        loop {
            if current >= self.inner.capacity {
                self.inner.refused.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            match self.inner.in_flight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Some(AdmissionPermit {
                        gate: Arc::clone(&self.inner),
                    })
                }
                Err(seen) => current = seen,
            }
        }
    }

    /// Permits currently out.
    pub fn in_flight(&self) -> usize {
        self.inner.in_flight.load(Ordering::Relaxed)
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Total `try_enter` calls refused so far.
    pub fn refused(&self) -> usize {
        self.inner.refused.load(Ordering::Relaxed)
    }
}

/// RAII handle for one admitted unit of work; releases its slot on drop.
pub struct AdmissionPermit {
    gate: Arc<GateInner>,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        self.gate.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

impl std::fmt::Debug for AdmissionPermit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AdmissionPermit")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_caps_concurrency_and_counts_refusals() {
        let gate = AdmissionGate::new(2);
        let a = gate.try_enter().unwrap();
        let b = gate.try_enter().unwrap();
        assert_eq!(gate.in_flight(), 2);
        assert!(gate.try_enter().is_none());
        assert_eq!(gate.refused(), 1);
        drop(a);
        assert_eq!(gate.in_flight(), 1);
        let c = gate.try_enter().unwrap();
        drop(b);
        drop(c);
        assert_eq!(gate.in_flight(), 0);
        assert_eq!(gate.capacity(), 2);
    }

    #[test]
    fn zero_capacity_gate_refuses_everything() {
        let gate = AdmissionGate::new(0);
        assert!(gate.try_enter().is_none());
        assert_eq!(gate.refused(), 1);
    }

    #[test]
    fn gate_is_shared_across_clones() {
        let gate = AdmissionGate::new(1);
        let clone = gate.clone();
        let permit = gate.try_enter().unwrap();
        assert!(clone.try_enter().is_none());
        drop(permit);
        assert!(clone.try_enter().is_some());
    }

    #[test]
    fn service_group_joins_spawned_threads() {
        use std::sync::atomic::AtomicUsize;
        let counter = Arc::new(AtomicUsize::new(0));
        let mut group = ServiceGroup::new();
        for i in 0..4 {
            let counter = Arc::clone(&counter);
            group.spawn(&format!("svc-{i}"), move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(group.len(), 4);
        assert!(group.join_all().is_empty());
        assert!(group.is_empty());
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn service_group_reports_panicked_threads_by_name() {
        let mut group = ServiceGroup::new();
        group.spawn("doomed", || panic!("service thread panic"));
        let panicked = group.join_all();
        assert_eq!(panicked, vec!["doomed".to_string()]);
    }

    #[test]
    fn concurrent_try_enter_never_exceeds_capacity() {
        let gate = AdmissionGate::new(3);
        let peak = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let gate = gate.clone();
                let peak = Arc::clone(&peak);
                s.spawn(move || {
                    for _ in 0..500 {
                        if let Some(_permit) = gate.try_enter() {
                            let seen = gate.in_flight();
                            peak.fetch_max(seen, Ordering::Relaxed);
                            assert!(seen <= 3, "gate admitted {seen} > capacity");
                        }
                    }
                });
            }
        });
        assert_eq!(gate.in_flight(), 0);
        assert!(peak.load(Ordering::Relaxed) <= 3);
    }
}
