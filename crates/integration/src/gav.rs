//! Global-as-view (GAV) mediation (§5 of the paper).
//!
//! Under GAV each global predicate is defined as a Datalog view over the
//! source relations (the rules (8)–(9) of Example 5.1). Query answering is
//! view *unfolding*; since the workspace has a materializing Datalog engine,
//! we equivalently materialize the **retrieved global instance** — the
//! minimal global instance induced by the sources — and answer queries over
//! it. The two are identical for sound view definitions.

use cqa_query::{eval_ucq, NullSemantics, Program, UnionQuery};
use cqa_relation::{Database, RelationError, RelationSchema, Tuple};
use std::collections::BTreeSet;

/// A GAV mediator: source data plus Datalog view definitions whose heads
/// are the global predicates.
#[derive(Debug, Clone)]
pub struct GavMediator {
    /// The source relations.
    pub sources: Database,
    /// View definitions (global predicates in the heads).
    pub views: Program,
}

impl GavMediator {
    /// Build a mediator.
    pub fn new(sources: Database, views: Program) -> GavMediator {
        GavMediator { sources, views }
    }

    /// The global predicates (view heads).
    pub fn global_predicates(&self) -> BTreeSet<String> {
        self.views.idb_predicates()
    }

    /// Materialize the retrieved global instance: only the global relations,
    /// with fresh tids.
    pub fn retrieved_global_instance(&self) -> Result<Database, RelationError> {
        let materialized = self.views.evaluate(&self.sources)?;
        let globals = self.global_predicates();
        let mut db = Database::new();
        for rel in materialized.relations() {
            if globals.contains(rel.name()) {
                db.create_relation((**rel.schema()).clone())?;
                for t in rel.tuples() {
                    db.insert(rel.name(), t.clone())?;
                }
            }
        }
        Ok(db)
    }

    /// Answer a global query (certain answers under sound views = plain
    /// evaluation over the retrieved instance).
    pub fn answer(&self, query: &UnionQuery) -> Result<BTreeSet<Tuple>, RelationError> {
        let global = self.retrieved_global_instance()?;
        Ok(eval_ucq(&global, query, NullSemantics::Structural))
    }

    /// Give the retrieved instance named attributes (Datalog heads default to
    /// `a0, a1, …`): rebuild with `schema`'s attribute names.
    pub fn retrieved_with_schema(
        &self,
        schemas: &[RelationSchema],
    ) -> Result<Database, RelationError> {
        let plain = self.retrieved_global_instance()?;
        let mut db = Database::new();
        for schema in schemas {
            db.create_relation(schema.clone())?;
        }
        for (rel, _, tuple) in plain.facts() {
            if db.relation(rel).is_some() {
                db.insert(rel, tuple.clone())?;
            }
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_query::{parse_program, parse_query};
    use cqa_relation::tuple;

    /// The two-university sources of Example 5.1.
    pub(crate) fn university_sources() -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("CUstds", ["Number", "Name"]))
            .unwrap();
        db.create_relation(RelationSchema::new("SpecCU", ["Number", "Field"]))
            .unwrap();
        db.create_relation(RelationSchema::new("OUstds", ["Number", "Name"]))
            .unwrap();
        db.create_relation(RelationSchema::new("SpecOU", ["Number", "Field"]))
            .unwrap();
        db.insert("CUstds", tuple![101, "john"]).unwrap();
        db.insert("CUstds", tuple![102, "mary"]).unwrap();
        db.insert("SpecCU", tuple![101, "alg"]).unwrap();
        db.insert("SpecCU", tuple![102, "ai"]).unwrap();
        db.insert("OUstds", tuple![103, "claire"]).unwrap();
        db.insert("OUstds", tuple![104, "peter"]).unwrap();
        db.insert("SpecOU", tuple![103, "db"]).unwrap();
        db
    }

    pub(crate) fn university_views() -> Program {
        parse_program(
            "Stds(x, y, 'cu', z) :- CUstds(x, y), SpecCU(x, z).\n\
             Stds(x, y, 'ou', z) :- OUstds(x, y), SpecOU(x, z).",
        )
        .unwrap()
    }

    #[test]
    fn example_5_1_retrieved_instance() {
        let m = GavMediator::new(university_sources(), university_views());
        let global = m.retrieved_global_instance().unwrap();
        let stds = global.relation("Stds").unwrap();
        assert_eq!(stds.len(), 3);
        assert!(stds.contains(&tuple![101, "john", "cu", "alg"]));
        assert!(stds.contains(&tuple![102, "mary", "cu", "ai"]));
        assert!(stds.contains(&tuple![103, "claire", "ou", "db"]));
    }

    #[test]
    fn example_5_1_same_field_query() {
        // "names of students who study the same field at both universities"
        let mut sources = university_sources();
        // Give mary an OU record in the same field so the join is non-empty.
        sources.insert("OUstds", tuple![201, "mary"]).unwrap();
        sources.insert("SpecOU", tuple![201, "ai"]).unwrap();
        let m = GavMediator::new(sources, university_views());
        let q = UnionQuery::single(
            parse_query("Ans(x) :- Stds(z, x, 'cu', u), Stds(w, x, 'ou', u)").unwrap(),
        );
        let ans = m.answer(&q).unwrap();
        assert_eq!(ans, [tuple!["mary"]].into());
    }

    #[test]
    fn empty_sources_empty_global() {
        let mut db = Database::new();
        for (r, attrs) in [
            ("CUstds", ["Number", "Name"]),
            ("SpecCU", ["Number", "Field"]),
            ("OUstds", ["Number", "Name"]),
            ("SpecOU", ["Number", "Field"]),
        ] {
            db.create_relation(RelationSchema::new(r, attrs)).unwrap();
        }
        let m = GavMediator::new(db, university_views());
        assert_eq!(m.retrieved_global_instance().unwrap().total_tuples(), 0);
    }

    #[test]
    fn retrieved_with_named_schema() {
        let m = GavMediator::new(university_sources(), university_views());
        let schema = RelationSchema::new("Stds", ["Number", "Name", "Univ", "Field"]);
        let global = m.retrieved_with_schema(&[schema]).unwrap();
        let rel = global.relation("Stds").unwrap();
        assert_eq!(rel.schema().position_of("Univ"), Some(2));
        assert_eq!(rel.len(), 3);
    }
}
