//! Consistent query answering over a virtual integration system (§5,
//! Example 5.2 of the paper).
//!
//! Global ICs cannot be enforced on the sources (the mediator cannot update
//! them), so they are applied at *query-answering time*: the retrieved
//! global instance may violate the global ICs, and the consistent answers
//! are the certain answers over its (virtual) repairs. Both evaluation paths
//! of the paper are provided: repair-based CQA and FO rewriting evaluated
//! directly over the retrieved instance.

use crate::gav::GavMediator;
use cqa_constraints::ConstraintSet;
use cqa_core::{consistent_answers, RepairClass};
use cqa_query::{eval_fo, FoQuery, NullSemantics, UnionQuery};
use cqa_relation::{Database, RelationError, RelationSchema, Tuple};
use std::collections::BTreeSet;

/// A GAV integration system with global schema and global ICs.
#[derive(Debug, Clone)]
pub struct GlobalSystem {
    /// The mediator (sources + view definitions).
    pub mediator: GavMediator,
    /// Named global relation schemas.
    pub global_schemas: Vec<RelationSchema>,
    /// Global integrity constraints.
    pub sigma: ConstraintSet,
}

impl GlobalSystem {
    /// Build a system.
    pub fn new(
        mediator: GavMediator,
        global_schemas: Vec<RelationSchema>,
        sigma: ConstraintSet,
    ) -> GlobalSystem {
        GlobalSystem {
            mediator,
            global_schemas,
            sigma,
        }
    }

    /// The retrieved global instance with named attributes.
    pub fn retrieved(&self) -> Result<Database, RelationError> {
        self.mediator.retrieved_with_schema(&self.global_schemas)
    }

    /// Do the sources induce a globally consistent instance?
    pub fn is_globally_consistent(&self) -> Result<bool, RelationError> {
        self.sigma.is_satisfied(&self.retrieved()?)
    }

    /// Consistent answers to a global query: certain answers over the
    /// repairs of the retrieved global instance.
    pub fn consistent_answers(
        &self,
        query: &UnionQuery,
        class: &RepairClass,
    ) -> Result<BTreeSet<Tuple>, RelationError> {
        let retrieved = self.retrieved()?;
        consistent_answers(&retrieved, &self.sigma, query, class)
    }

    /// The rewriting path of Example 5.2: evaluate a (consistency-aware)
    /// first-order rewriting directly over the retrieved instance.
    pub fn answer_rewritten(&self, rewritten: &FoQuery) -> Result<BTreeSet<Tuple>, RelationError> {
        let retrieved = self.retrieved()?;
        Ok(eval_fo(&retrieved, rewritten, NullSemantics::Structural))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_constraints::FunctionalDependency;
    use cqa_core::rewrite::keys::{rewrite_key_query, KeyPositions};
    use cqa_query::{parse_program, parse_query};
    use cqa_relation::tuple;

    /// Example 5.2's scenario. The paper's table gives OU the extra student
    /// (101, sue); for the conflict to materialize through the GAV join we
    /// also give 101 an OU specialization (the paper elides this step and
    /// reasons directly on the virtual `Stds` relation).
    fn system() -> GlobalSystem {
        let mut sources = Database::new();
        sources
            .create_relation(RelationSchema::new("CUstds", ["Number", "Name"]))
            .unwrap();
        sources
            .create_relation(RelationSchema::new("SpecCU", ["Number", "Field"]))
            .unwrap();
        sources
            .create_relation(RelationSchema::new("OUstds", ["Number", "Name"]))
            .unwrap();
        sources
            .create_relation(RelationSchema::new("SpecOU", ["Number", "Field"]))
            .unwrap();
        sources.insert("CUstds", tuple![101, "john"]).unwrap();
        sources.insert("CUstds", tuple![102, "mary"]).unwrap();
        sources.insert("SpecCU", tuple![101, "alg"]).unwrap();
        sources.insert("SpecCU", tuple![102, "ai"]).unwrap();
        sources.insert("OUstds", tuple![103, "claire"]).unwrap();
        sources.insert("OUstds", tuple![104, "peter"]).unwrap();
        sources.insert("OUstds", tuple![101, "sue"]).unwrap();
        sources.insert("SpecOU", tuple![103, "db"]).unwrap();
        sources.insert("SpecOU", tuple![101, "cs"]).unwrap();
        let views = parse_program(
            "Stds(x, y, 'cu', z) :- CUstds(x, y), SpecCU(x, z).\n\
             Stds(x, y, 'ou', z) :- OUstds(x, y), SpecOU(x, z).",
        )
        .unwrap();
        let sigma =
            ConstraintSet::from_iter([FunctionalDependency::new("Stds", ["Number"], ["Name"])]);
        GlobalSystem::new(
            GavMediator::new(sources, views),
            vec![RelationSchema::new(
                "Stds",
                ["Number", "Name", "Univ", "Field"],
            )],
            sigma,
        )
    }

    #[test]
    fn example_5_2_retrieved_instance_violates_global_fd() {
        let sys = system();
        assert!(!sys.is_globally_consistent().unwrap());
        let retrieved = sys.retrieved().unwrap();
        let stds = retrieved.relation("Stds").unwrap();
        assert!(stds.contains(&tuple![101, "john", "cu", "alg"]));
        assert!(stds.contains(&tuple![101, "sue", "ou", "cs"]));
    }

    #[test]
    fn example_5_2_consistent_answers() {
        let sys = system();
        let q = UnionQuery::single(parse_query("Q(x, y) :- Stds(x, y, u, z)").unwrap());
        let ans = sys.consistent_answers(&q, &RepairClass::Subset).unwrap();
        // Student 101 has two names across repairs: not certain.
        assert!(ans.contains(&tuple![102, "mary"]));
        assert!(ans.contains(&tuple![103, "claire"]));
        assert!(!ans
            .iter()
            .any(|t| t.at(0) == &cqa_relation::Value::int(101)));
    }

    #[test]
    fn example_5_2_rewriting_agrees_with_repairs() {
        let sys = system();
        let q = parse_query("Q(x, y) :- Stds(x, y, u, z)").unwrap();
        // The certain rewriting under the key Number (positions: 0).
        let keys: KeyPositions = [("Stds".to_string(), vec![0usize])].into();
        let rewritten = rewrite_key_query(&q, &keys).unwrap();
        let via_rewriting = sys.answer_rewritten(&rewritten).unwrap();
        let via_repairs = sys
            .consistent_answers(&UnionQuery::single(q), &RepairClass::Subset)
            .unwrap();
        // The FD Number→Name is weaker than the full key Number→(all), so
        // the key rewriting is *sound* but may miss answers; on this
        // instance both 101-rows disagree on Name, Univ and Field alike, so
        // the two coincide.
        assert_eq!(via_rewriting, via_repairs);
    }

    #[test]
    fn consistent_sources_do_not_need_repairs() {
        let mut sys = system();
        // Remove the conflicting OU record.
        let tid = sys
            .mediator
            .sources
            .relation("OUstds")
            .unwrap()
            .tid_of(&tuple![101, "sue"])
            .unwrap();
        sys.mediator.sources.delete(tid).unwrap();
        assert!(sys.is_globally_consistent().unwrap());
        let q = UnionQuery::single(parse_query("Q(y) :- Stds(x, y, u, z)").unwrap());
        let ans = sys.consistent_answers(&q, &RepairClass::Subset).unwrap();
        assert!(ans.contains(&tuple!["john"]));
        assert_eq!(ans.len(), 3);
    }
}
