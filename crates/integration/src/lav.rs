//! Local-as-view (LAV) mediation via inverse rules (§5 of the paper).
//!
//! Under LAV a *source* relation is defined as a view over the global
//! schema, e.g. `CUstds(x, y) :- Stds(x, y, 'cu', z)` (Example 5.1). The
//! classical inverse-rules algorithm runs the definitions backwards: every
//! source tuple implies the existence of the global body atoms, with
//! existential body variables skolemized. We materialize this **canonical
//! global instance** with fresh labelled nulls as skolems (one per
//! existential variable per source tuple) and answer CQs over it, dropping
//! answers that contain a skolem — the textbook certain-answer procedure for
//! CQs under sound LAV views.

use cqa_query::{
    eval_ucq, match_atom, Bindings, NullSemantics, Rule, Term, UnionQuery, Var, VarTable,
};
use cqa_relation::{Database, RelationError, RelationSchema, Tuple};
use std::collections::{BTreeMap, BTreeSet};

/// One LAV mapping: `source(x̄) :- global-body` (the source relation defined
/// as a conjunctive view over global predicates).
#[derive(Debug, Clone)]
pub struct LavMapping {
    /// Head: the source predicate with its distinguished variables.
    pub rule: Rule,
    /// The variable table of the rule.
    pub vars: VarTable,
}

impl LavMapping {
    /// Parse from rule syntax: `LavMapping::parse("CUstds(x, y) :- Stds(x, y, 'cu', z)")`.
    ///
    /// Existential variables of the body (here `z`) are allowed.
    pub fn parse(rule: &str) -> Result<LavMapping, RelationError> {
        // Reuse the tgd parser trick: head vars may not cover body vars and
        // vice versa, so parse leniently through the program parser.
        let program = cqa_query::parse_program(rule)?;
        let [rule] = &program.rules[..] else {
            return Err(RelationError::Parse("expected exactly one LAV rule".into()));
        };
        if rule.negative().count() > 0 {
            return Err(RelationError::Parse(
                "LAV views must be conjunctive (no negation)".into(),
            ));
        }
        Ok(LavMapping {
            rule: rule.clone(),
            vars: program.vars,
        })
    }

    /// Head (source) predicate name.
    pub fn source_predicate(&self) -> &str {
        &self.rule.head.relation
    }

    /// Body variables that do not occur in the head (to be skolemized).
    pub fn existential_vars(&self) -> BTreeSet<Var> {
        let head: BTreeSet<Var> = self.rule.head.vars().collect();
        self.rule
            .positive()
            .flat_map(|a| a.vars())
            .filter(|v| !head.contains(v))
            .collect()
    }
}

/// A LAV mediator.
#[derive(Debug, Clone)]
pub struct LavMediator {
    /// The source relations.
    pub sources: Database,
    /// The global relation schemas.
    pub global_schemas: Vec<RelationSchema>,
    /// The mappings, one per source relation.
    pub mappings: Vec<LavMapping>,
}

impl LavMediator {
    /// Build a mediator.
    pub fn new(
        sources: Database,
        global_schemas: Vec<RelationSchema>,
        mappings: Vec<LavMapping>,
    ) -> LavMediator {
        LavMediator {
            sources,
            global_schemas,
            mappings,
        }
    }

    /// Materialize the canonical global instance by applying the inverse
    /// rules: one pass over each source relation per mapping, skolemizing
    /// existential variables with fresh labelled nulls.
    pub fn canonical_global_instance(&self) -> Result<Database, RelationError> {
        let mut global = Database::new();
        for schema in &self.global_schemas {
            global.create_relation(schema.clone())?;
        }
        for mapping in &self.mappings {
            let Some(source) = self.sources.relation(mapping.source_predicate()) else {
                continue;
            };
            let head = &mapping.rule.head;
            if head.terms.len() != source.schema().arity() {
                return Err(RelationError::ArityMismatch {
                    relation: source.name().to_string(),
                    expected: source.schema().arity(),
                    actual: head.terms.len(),
                });
            }
            let existentials = mapping.existential_vars();
            for (_, tuple) in source.iter() {
                // Bind the head variables against the source tuple.
                let mut bindings = Bindings::new(mapping.vars.len());
                let Some(_newly) =
                    match_atom(head, tuple, &mut bindings, NullSemantics::Structural)
                else {
                    continue; // repeated head vars/constants that don't match
                };
                // Skolemize: one fresh labelled null per existential var per
                // source tuple.
                let mut skolems: BTreeMap<Var, cqa_relation::Value> = BTreeMap::new();
                for &v in &existentials {
                    skolems.insert(v, global.fresh_null());
                }
                for atom in mapping.rule.positive() {
                    let args: Vec<cqa_relation::Value> = atom
                        .terms
                        .iter()
                        .map(|t| match t {
                            Term::Const(c) => c.clone(),
                            Term::Var(v) => bindings
                                .get(*v)
                                .cloned()
                                .or_else(|| skolems.get(v).cloned())
                                .expect("var is head-bound or skolemized"),
                        })
                        .collect();
                    global.insert(&atom.relation, Tuple::new(args))?;
                }
            }
        }
        Ok(global)
    }

    /// Certain answers to a global UCQ under sound views: evaluate over the
    /// canonical instance (skolems join structurally, as inverse rules
    /// require) and drop answers containing a skolem.
    pub fn certain_answers(&self, query: &UnionQuery) -> Result<BTreeSet<Tuple>, RelationError> {
        let canonical = self.canonical_global_instance()?;
        Ok(eval_ucq(&canonical, query, NullSemantics::Structural)
            .into_iter()
            .filter(|t| !t.has_null())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_query::parse_query;
    use cqa_relation::tuple;

    fn global_schemas() -> Vec<RelationSchema> {
        vec![RelationSchema::new(
            "Stds",
            ["Number", "Name", "Univ", "Field"],
        )]
    }

    fn sources() -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("CUstds", ["Number", "Name"]))
            .unwrap();
        db.insert("CUstds", tuple![101, "john"]).unwrap();
        db.insert("CUstds", tuple![102, "mary"]).unwrap();
        db
    }

    #[test]
    fn example_5_1_lav_inverse_rules() {
        // CUstds(x, y) :- Stds(x, y, 'cu', z) — z is skolemized.
        let mapping = LavMapping::parse("CUstds(x, y) :- Stds(x, y, 'cu', z)").unwrap();
        let m = LavMediator::new(sources(), global_schemas(), vec![mapping]);
        let canonical = m.canonical_global_instance().unwrap();
        let stds = canonical.relation("Stds").unwrap();
        assert_eq!(stds.len(), 2);
        // Every tuple has a skolem in the Field position.
        assert!(stds.tuples().all(|t| t.at(3).is_null()));
        // Distinct source tuples get distinct skolems.
        let fields: BTreeSet<_> = stds.tuples().map(|t| t.at(3).clone()).collect();
        assert_eq!(fields.len(), 2);
    }

    #[test]
    fn certain_answers_drop_skolems() {
        let mapping = LavMapping::parse("CUstds(x, y) :- Stds(x, y, 'cu', z)").unwrap();
        let m = LavMediator::new(sources(), global_schemas(), vec![mapping]);
        // Names are certain.
        let q = UnionQuery::single(parse_query("Q(y) :- Stds(x, y, u, z)").unwrap());
        let ans = m.certain_answers(&q).unwrap();
        assert_eq!(ans, [tuple!["john"], tuple!["mary"]].into());
        // Fields are unknown: no certain answers.
        let qf = UnionQuery::single(parse_query("Q(z) :- Stds(x, y, u, z)").unwrap());
        assert!(m.certain_answers(&qf).unwrap().is_empty());
    }

    #[test]
    fn skolems_join_within_a_view_expansion() {
        // V(x) :- E(x, z), F(z): the same skolem z must join across the two
        // body atoms of one expansion.
        let mut src = Database::new();
        src.create_relation(RelationSchema::new("V", ["X"]))
            .unwrap();
        src.insert("V", tuple!["a"]).unwrap();
        let mapping = LavMapping::parse("V(x) :- E(x, z), F(z)").unwrap();
        let m = LavMediator::new(
            src,
            vec![
                RelationSchema::new("E", ["A", "B"]),
                RelationSchema::new("F", ["A"]),
            ],
            vec![mapping],
        );
        let q = UnionQuery::single(parse_query("Q(x) :- E(x, z), F(z)").unwrap());
        let ans = m.certain_answers(&q).unwrap();
        assert_eq!(ans, [tuple!["a"]].into());
    }

    #[test]
    fn constants_in_view_bodies() {
        let mapping = LavMapping::parse("CUstds(x, y) :- Stds(x, y, 'cu', z)").unwrap();
        assert_eq!(mapping.source_predicate(), "CUstds");
        assert_eq!(mapping.existential_vars().len(), 1);
        let m = LavMediator::new(sources(), global_schemas(), vec![mapping]);
        let canonical = m.canonical_global_instance().unwrap();
        assert!(canonical
            .relation("Stds")
            .unwrap()
            .tuples()
            .all(|t| t.at(2) == &cqa_relation::Value::str("cu")));
    }

    #[test]
    fn negation_in_view_rejected() {
        assert!(LavMapping::parse("V(x) :- E(x), not F(x)").is_err());
    }
}
