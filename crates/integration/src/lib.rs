#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # cqa-integration
//!
//! Virtual data integration (§5 of the paper): mediators over independent
//! sources with **GAV** (global-as-view) and **LAV** (local-as-view)
//! mappings, and consistent query answering against *global* integrity
//! constraints that no one can enforce on the sources — the scenario the
//! paper calls "a perfect, if not unavoidable, scenario for CQA".
//!
//! * [`gav`] — Datalog view definitions, retrieved global instance,
//!   unfolding-equivalent query answering (Example 5.1).
//! * [`lav`] — inverse rules with labelled-null skolems, canonical instance,
//!   certain answers for CQs under sound views.
//! * [`peers`] — peer data exchange with protected neighbour data and
//!   local null-insertion repairs (§4.2, \[25\]).
//! * [`global_cqa`] — repairs and FO rewriting over the retrieved instance
//!   (Example 5.2).

pub mod gav;
pub mod global_cqa;
pub mod lav;
pub mod peers;

pub use gav::GavMediator;
pub use global_cqa::GlobalSystem;
pub use lav::{LavMapping, LavMediator};
pub use peers::PeerSystem;
