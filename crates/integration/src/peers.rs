//! Peer data exchange with local repairs (§4.2 of the paper;
//! Bertossi–Bravo \[25\]).
//!
//! Peers exchange data at query-answering time through inter-peer mappings
//! (tgds of the `ID′` form, possibly existential). A peer cannot update its
//! neighbours: when imported data conflicts with its own, the peer repairs
//! **locally** — neighbour tuples are *protected*, only the peer's own
//! tuples may be deleted, and missing imported tuples are inserted with
//! `NULL` for unknown attributes. The consistent instances reachable this
//! way are the peer's **solutions**; the *peer consistent answers* are the
//! certain answers over them.

use cqa_constraints::ConstraintSet;
use cqa_core::{certain_over, s_repairs_with, Repair, RepairOptions};
use cqa_query::UnionQuery;
use cqa_relation::{Database, RelationError, Tid, Tuple};
use std::collections::BTreeSet;

/// A peer's view of the exchange: the combined instance (its own relations
/// plus imported neighbour relations), which relations it owns, and the
/// constraints it must satisfy locally.
#[derive(Debug, Clone)]
pub struct PeerSystem {
    /// Combined instance: the peer's relations and its neighbours'.
    pub db: Database,
    /// Names of the relations the peer owns (deletable).
    pub local_relations: BTreeSet<String>,
    /// Inter-peer mappings (tgds, typically neighbour body → local head)
    /// plus the peer's local ICs.
    pub sigma: ConstraintSet,
}

impl PeerSystem {
    /// Build a peer system.
    pub fn new(
        db: Database,
        local_relations: impl IntoIterator<Item = impl Into<String>>,
        sigma: ConstraintSet,
    ) -> PeerSystem {
        PeerSystem {
            db,
            local_relations: local_relations.into_iter().map(Into::into).collect(),
            sigma,
        }
    }

    /// Tids of neighbour tuples (protected from deletion).
    fn protected(&self) -> BTreeSet<Tid> {
        self.db
            .facts()
            .filter(|(rel, _, _)| !self.local_relations.contains(*rel))
            .map(|(_, tid, _)| tid)
            .collect()
    }

    /// The peer's solutions: local repairs that keep every neighbour tuple.
    ///
    /// May be empty when a violation is repairable only by touching
    /// neighbour data and insertions cannot help — the "no solution" case
    /// of \[25\].
    pub fn solutions(&self) -> Result<Vec<Database>, RelationError> {
        let options = RepairOptions {
            protected: self.protected(),
            ..RepairOptions::default()
        };
        Ok(s_repairs_with(&self.db, &self.sigma, &options)?
            .into_iter()
            .map(Repair::into_db)
            .collect())
    }

    /// Does the peer have at least one solution?
    pub fn has_solution(&self) -> Result<bool, RelationError> {
        Ok(!self.solutions()?.is_empty())
    }

    /// Peer consistent answers: certain over all solutions (empty when no
    /// solution exists — the skeptical reading of \[25\]).
    pub fn peer_consistent_answers(
        &self,
        query: &UnionQuery,
    ) -> Result<BTreeSet<Tuple>, RelationError> {
        Ok(certain_over(&self.solutions()?, query))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_constraints::{DenialConstraint, Tgd};
    use cqa_query::parse_query;
    use cqa_relation::{tuple, RelationSchema, Value};

    /// The peer owns `Articles`; a neighbour exports `Supply`; the mapping
    /// demands every supplied item to appear locally (ID′ of Ex. 4.3).
    fn system() -> PeerSystem {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new(
            "NbrSupply",
            ["Company", "Receiver", "Item"],
        ))
        .unwrap();
        db.create_relation(RelationSchema::new("Articles", ["Item", "Cost"]))
            .unwrap();
        db.insert("NbrSupply", tuple!["C1", "R1", "I1"]).unwrap();
        db.insert("NbrSupply", tuple!["C2", "R1", "I3"]).unwrap();
        db.insert("Articles", tuple!["I1", 50]).unwrap();
        let sigma =
            ConstraintSet::from_iter([
                Tgd::parse("m", "Articles(z, v) :- NbrSupply(x, y, z)").unwrap()
            ]);
        PeerSystem::new(db, ["Articles"], sigma)
    }

    #[test]
    fn neighbour_tuples_are_never_deleted() {
        let sys = system();
        let solutions = sys.solutions().unwrap();
        assert!(!solutions.is_empty());
        for s in &solutions {
            // Both neighbour tuples survive in every solution.
            assert_eq!(s.relation("NbrSupply").unwrap().len(), 2);
            assert!(sys.sigma.is_satisfied(s).unwrap());
        }
        // The only way to satisfy the mapping is the null-insertion: the
        // deletion branch is blocked by protection.
        assert_eq!(solutions.len(), 1);
        let arts = solutions[0].relation("Articles").unwrap();
        assert_eq!(arts.len(), 2);
        assert!(arts
            .tuples()
            .any(|t| t.at(0) == &Value::str("I3") && t.at(1).is_null()));
    }

    #[test]
    fn peer_consistent_answers_import_certain_data() {
        let sys = system();
        let q = UnionQuery::single(parse_query("Q(z) :- Articles(z, c)").unwrap());
        let ans = sys.peer_consistent_answers(&q).unwrap();
        assert_eq!(ans, [tuple!["I1"], tuple!["I3"]].into());
        // Costs of imported items are unknown (null), hence not certain.
        let qc = UnionQuery::single(parse_query("Q(c) :- Articles(z, c)").unwrap());
        let costs = sys.peer_consistent_answers(&qc).unwrap();
        assert_eq!(costs, [tuple![50]].into());
    }

    #[test]
    fn no_solution_when_protection_blocks_every_fix() {
        // A denial constraint violated purely by neighbour tuples: nothing
        // the peer may do fixes it.
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("NbrS", ["A"]))
            .unwrap();
        db.create_relation(RelationSchema::new("Local", ["A"]))
            .unwrap();
        db.insert("NbrS", tuple!["a"]).unwrap();
        db.insert("NbrS", tuple!["b"]).unwrap();
        let sigma =
            ConstraintSet::from_iter([
                DenialConstraint::parse("d", "NbrS(x), NbrS(y), x != y").unwrap()
            ]);
        let sys = PeerSystem::new(db, ["Local"], sigma);
        assert!(!sys.has_solution().unwrap());
        let q = UnionQuery::single(parse_query("Q(x) :- NbrS(x)").unwrap());
        assert!(sys.peer_consistent_answers(&q).unwrap().is_empty());
    }

    #[test]
    fn local_conflicts_are_repaired_locally() {
        // The peer's own data violates a local DC with imported data: only
        // the local tuple may go.
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("NbrBan", ["Item"]))
            .unwrap();
        db.create_relation(RelationSchema::new("Articles", ["Item"]))
            .unwrap();
        db.insert("NbrBan", tuple!["I9"]).unwrap();
        db.insert("Articles", tuple!["I9"]).unwrap();
        db.insert("Articles", tuple!["I1"]).unwrap();
        let sigma =
            ConstraintSet::from_iter([
                DenialConstraint::parse("ban", "NbrBan(x), Articles(x)").unwrap()
            ]);
        let sys = PeerSystem::new(db, ["Articles"], sigma);
        let solutions = sys.solutions().unwrap();
        assert_eq!(solutions.len(), 1);
        assert!(!solutions[0]
            .relation("Articles")
            .unwrap()
            .contains(&tuple!["I9"]));
        assert!(solutions[0]
            .relation("NbrBan")
            .unwrap()
            .contains(&tuple!["I9"]));
    }
}
