//! Aggregate (scalar) queries over conjunctive bodies.
//!
//! §3.2 of the paper cites CQA for *aggregate queries under FDs* \[5\], where
//! the consistent answer to `SELECT SUM(…)` is an **interval** (greatest
//! lower / least upper bound over all repairs). This module provides the
//! underlying single-instance aggregate evaluation; the range-semantics CQA
//! wrapper lives in `cqa-core::cqa`.

use crate::ast::{ConjunctiveQuery, Term, Var};
use crate::eval::{for_each_witness, NullSemantics};
use cqa_relation::{Facts, Tuple, Value};
use std::collections::BTreeMap;

/// Aggregate operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggOp {
    /// Number of witnesses (bag semantics over the join, as in SQL).
    Count,
    /// Number of distinct target values.
    CountDistinct,
    /// Sum of the target values.
    Sum,
    /// Minimum target value.
    Min,
    /// Maximum target value.
    Max,
    /// Arithmetic mean of the target values.
    Avg,
}

/// An aggregate query: `SELECT group_by, op(target) FROM body GROUP BY group_by`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateQuery {
    /// The conjunctive body; its head is ignored.
    pub body: ConjunctiveQuery,
    /// Grouping variables (empty for a scalar aggregate).
    pub group_by: Vec<Var>,
    /// The aggregated variable (`None` only valid for `Count`).
    pub target: Option<Var>,
    /// The operator.
    pub op: AggOp,
}

/// The result of one group: group key → aggregate value.
pub type AggResult = BTreeMap<Tuple, Value>;

/// Evaluate an aggregate query over one instance.
///
/// Groups with no witnesses are absent from the result (SQL semantics).
/// `Sum`/`Avg` require numeric targets; non-numeric values make the witness
/// contribute nothing (documented deviation: SQL would error).
pub fn eval_aggregate<F: Facts + ?Sized>(
    facts: &F,
    q: &AggregateQuery,
    mode: NullSemantics,
) -> AggResult {
    let group_terms: Vec<Term> = q.group_by.iter().map(|v| Term::Var(*v)).collect();
    // group key -> (count, addends, min, max, distinct values)
    struct Acc {
        count: u64,
        /// Numeric targets, kept unsummed: witness *enumeration* order
        /// follows the join order the planner picked, and float addition
        /// is not associative — summing on the fly would let a plan change
        /// perturb `Sum`/`Avg` in the last ulp. The addends are a set
        /// regardless of order, so sorting them (`total_cmp`) before the
        /// fold at finalization makes the result plan-independent.
        addends: Vec<f64>,
        min: Option<Value>,
        max: Option<Value>,
        distinct: std::collections::BTreeSet<Value>,
    }
    let mut groups: BTreeMap<Tuple, Acc> = BTreeMap::new();

    for_each_witness(facts, &q.body, mode, &mut |w| {
        let Some(key) = w.bindings.project(&group_terms) else {
            return true;
        };
        let acc = groups.entry(key).or_insert_with(|| Acc {
            count: 0,
            addends: Vec::new(),
            min: None,
            max: None,
            distinct: std::collections::BTreeSet::new(),
        });
        acc.count += 1;
        if let Some(tv) = q.target {
            if let Some(value) = w.bindings.get(tv) {
                if !value.is_null() {
                    acc.distinct.insert(value.clone());
                    if let Some(f) = value.as_f64() {
                        acc.addends.push(f);
                    }
                    if acc.min.as_ref().is_none_or(|m| value < m) {
                        acc.min = Some(value.clone());
                    }
                    if acc.max.as_ref().is_none_or(|m| value > m) {
                        acc.max = Some(value.clone());
                    }
                }
            }
        }
        true
    });

    groups
        .into_iter()
        .filter_map(|(key, mut acc)| {
            acc.addends.sort_by(f64::total_cmp);
            let numeric = acc.addends.len() as u64;
            let sum: f64 = acc.addends.iter().sum();
            let value = match q.op {
                AggOp::Count => Some(Value::Int(acc.count as i64)),
                AggOp::CountDistinct => Some(Value::Int(acc.distinct.len() as i64)),
                AggOp::Sum => (numeric > 0).then(|| {
                    if sum.fract() == 0.0 && sum.abs() < i64::MAX as f64 {
                        Value::Int(sum as i64)
                    } else {
                        Value::Float(sum)
                    }
                }),
                AggOp::Min => acc.min,
                AggOp::Max => acc.max,
                AggOp::Avg => (numeric > 0).then(|| Value::Float(sum / numeric as f64)),
            };
            value.map(|v| (key, v))
        })
        .collect()
}

/// Evaluate a scalar (ungrouped) aggregate; `None` when the body is empty
/// and the operator has no neutral result (`Min`/`Max`/`Sum`/`Avg`).
/// A `Count` over an empty body returns `Some(0)`.
pub fn eval_scalar<F: Facts + ?Sized>(
    facts: &F,
    q: &AggregateQuery,
    mode: NullSemantics,
) -> Option<Value> {
    debug_assert!(q.group_by.is_empty());
    let r = eval_aggregate(facts, q, mode);
    match r.into_iter().next() {
        Some((_, v)) => Some(v),
        None => match q.op {
            AggOp::Count | AggOp::CountDistinct => Some(Value::Int(0)),
            _ => None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use cqa_relation::{tuple, Database, RelationSchema};

    fn salary_db() -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Employee", ["Name", "Dept", "Salary"]))
            .unwrap();
        db.insert("Employee", tuple!["page", "cs", 5000]).unwrap();
        db.insert("Employee", tuple!["smith", "cs", 3000]).unwrap();
        db.insert("Employee", tuple!["stowe", "math", 7000])
            .unwrap();
        db
    }

    fn q(db_query: &str, group: &[&str], target: Option<&str>, op: AggOp) -> AggregateQuery {
        let body = parse_query(db_query).unwrap();
        let group_by = group
            .iter()
            .map(|g| body.vars.lookup(g).expect("group var"))
            .collect();
        let target = target.map(|t| body.vars.lookup(t).expect("target var"));
        AggregateQuery {
            body,
            group_by,
            target,
            op,
        }
    }

    #[test]
    fn scalar_sum_and_count() {
        let db = salary_db();
        let sum = q("Q() :- Employee(n, d, s)", &[], Some("s"), AggOp::Sum);
        assert_eq!(
            eval_scalar(&db, &sum, NullSemantics::Structural),
            Some(Value::Int(15000))
        );
        let count = q("Q() :- Employee(n, d, s)", &[], None, AggOp::Count);
        assert_eq!(
            eval_scalar(&db, &count, NullSemantics::Structural),
            Some(Value::Int(3))
        );
    }

    #[test]
    fn grouped_max() {
        let db = salary_db();
        let agg = q("Q() :- Employee(n, d, s)", &["d"], Some("s"), AggOp::Max);
        let r = eval_aggregate(&db, &agg, NullSemantics::Structural);
        assert_eq!(r.get(&tuple!["cs"]), Some(&Value::int(5000)));
        assert_eq!(r.get(&tuple!["math"]), Some(&Value::int(7000)));
    }

    #[test]
    fn avg_and_min() {
        let db = salary_db();
        let avg = q("Q() :- Employee(n, 'cs', s)", &[], Some("s"), AggOp::Avg);
        assert_eq!(
            eval_scalar(&db, &avg, NullSemantics::Structural),
            Some(Value::Float(4000.0))
        );
        let min = q("Q() :- Employee(n, d, s)", &[], Some("s"), AggOp::Min);
        assert_eq!(
            eval_scalar(&db, &min, NullSemantics::Structural),
            Some(Value::Int(3000))
        );
    }

    #[test]
    fn float_sums_are_canonicalized_against_enumeration_order() {
        // 1e16 swallows 1.0 unless the addends are folded in canonical
        // (total_cmp) order; pin that insertion order — and hence any join
        // order the planner might pick — cannot change the sum.
        let build = |rows: &[f64]| {
            let mut db = Database::new();
            db.create_relation(RelationSchema::new("F", ["K", "V"]))
                .unwrap();
            for (i, &v) in rows.iter().enumerate() {
                db.insert("F", tuple![i as i64, v]).unwrap();
            }
            db
        };
        let s = q("Q() :- F(k, v)", &[], Some("v"), AggOp::Sum);
        let a = eval_scalar(&build(&[1.0, 1e16, -1e16]), &s, NullSemantics::Structural);
        let b = eval_scalar(&build(&[1e16, -1e16, 1.0]), &s, NullSemantics::Structural);
        let c = eval_scalar(&build(&[-1e16, 1.0, 1e16]), &s, NullSemantics::Structural);
        assert_eq!(a, b);
        assert_eq!(b, c);
        // The canonical fold is the ascending one: -1e16 + 1.0 loses the
        // 1.0, then + 1e16 lands on exactly zero.
        assert_eq!(a, Some(Value::Int(0)));
    }

    #[test]
    fn count_distinct_vs_count() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("R", ["A", "B"]))
            .unwrap();
        db.insert("R", tuple![1, 10]).unwrap();
        db.insert("R", tuple![2, 10]).unwrap();
        db.insert("R", tuple![3, 20]).unwrap();
        let c = q("Q() :- R(a, b)", &[], Some("b"), AggOp::Count);
        let cd = q("Q() :- R(a, b)", &[], Some("b"), AggOp::CountDistinct);
        assert_eq!(
            eval_scalar(&db, &c, NullSemantics::Structural),
            Some(Value::Int(3))
        );
        assert_eq!(
            eval_scalar(&db, &cd, NullSemantics::Structural),
            Some(Value::Int(2))
        );
    }

    #[test]
    fn empty_body_semantics() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("E", ["A"])).unwrap();
        let c = q("Q() :- E(a)", &[], None, AggOp::Count);
        assert_eq!(
            eval_scalar(&db, &c, NullSemantics::Structural),
            Some(Value::Int(0))
        );
        let s = q("Q() :- E(a)", &[], Some("a"), AggOp::Sum);
        assert_eq!(eval_scalar(&db, &s, NullSemantics::Structural), None);
    }

    #[test]
    fn nulls_are_ignored_by_aggregates() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("R", ["A"])).unwrap();
        db.insert("R", tuple![5]).unwrap();
        db.insert("R", Tuple::new(vec![Value::NULL])).unwrap();
        let s = q("Q() :- R(a)", &[], Some("a"), AggOp::Sum);
        assert_eq!(
            eval_scalar(&db, &s, NullSemantics::Structural),
            Some(Value::Int(5))
        );
        let c = q("Q() :- R(a)", &[], Some("a"), AggOp::CountDistinct);
        assert_eq!(
            eval_scalar(&db, &c, NullSemantics::Structural),
            Some(Value::Int(1))
        );
    }
}
