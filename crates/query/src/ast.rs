//! Query abstract syntax: terms, atoms, conjunctive queries, unions and full
//! first-order formulas.
//!
//! Variables are rule-/query-local `u32` indices managed by a [`VarTable`];
//! this keeps terms `Copy`-cheap in the evaluator's hot loops while still
//! giving readable names in `Display` output.

use cqa_relation::Value;
use std::fmt;

/// A query variable: an index into the owning query's [`VarTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

/// Registry of variable names for one query/rule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VarTable {
    names: Vec<String>,
}

impl VarTable {
    /// Empty table.
    pub fn new() -> VarTable {
        VarTable::default()
    }

    /// Intern `name`, returning its variable (idempotent).
    pub fn var(&mut self, name: impl AsRef<str>) -> Var {
        let name = name.as_ref();
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return Var(i as u32);
        }
        self.names.push(name.to_string());
        Var((self.names.len() - 1) as u32)
    }

    /// A fresh variable with a generated name.
    pub fn fresh(&mut self) -> Var {
        let name = format!("_v{}", self.names.len());
        self.names.push(name);
        Var((self.names.len() - 1) as u32)
    }

    /// Name of `v`.
    pub fn name(&self, v: Var) -> &str {
        &self.names[v.0 as usize]
    }

    /// Look up an existing variable by name.
    pub fn lookup(&self, name: &str) -> Option<Var> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| Var(i as u32))
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True iff no variable has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate all variables.
    pub fn iter(&self) -> impl Iterator<Item = Var> {
        (0..self.names.len() as u32).map(Var)
    }
}

/// A term: a variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A query variable.
    Var(Var),
    /// A constant value.
    Const(Value),
}

impl Term {
    /// The variable inside, if any.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    /// The constant inside, if any.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Const(v) => Some(v),
            Term::Var(_) => None,
        }
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Term {
        Term::Var(v)
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Term {
        Term::Const(v)
    }
}

/// A relational atom `R(t₁, …, tₖ)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Relation name.
    pub relation: String,
    /// Argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Build an atom.
    pub fn new(relation: impl Into<String>, terms: Vec<Term>) -> Atom {
        Atom {
            relation: relation.into(),
            terms,
        }
    }

    /// Variables occurring in the atom, with duplicates, in position order.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.terms.iter().filter_map(Term::as_var)
    }

    /// Positions at which `v` occurs.
    pub fn positions_of(&self, v: Var) -> Vec<usize> {
        self.terms
            .iter()
            .enumerate()
            .filter_map(|(i, t)| (t.as_var() == Some(v)).then_some(i))
            .collect()
    }
}

/// Comparison operators for built-in predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The operator with its arguments swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Logical negation (`a < b` ⇔ ¬(`a >= b`)).
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// Two-valued evaluation on concrete values (structural order).
    pub fn eval(self, a: &Value, b: &Value) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A built-in comparison `t₁ op t₂`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Comparison {
    /// Left term.
    pub left: Term,
    /// Operator.
    pub op: CmpOp,
    /// Right term.
    pub right: Term,
}

impl Comparison {
    /// Build a comparison.
    pub fn new(left: impl Into<Term>, op: CmpOp, right: impl Into<Term>) -> Comparison {
        Comparison {
            left: left.into(),
            op,
            right: right.into(),
        }
    }

    /// Variables of the comparison.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        [&self.left, &self.right]
            .into_iter()
            .filter_map(Term::as_var)
    }
}

/// A conjunctive query with optional safe negation and comparisons:
///
/// `Q(x̄) :- A₁, …, Aₙ, not B₁, …, not Bₘ, c₁, …`
///
/// All variables of the head, the negated atoms and the comparisons must
/// occur in some positive atom (safety); [`ConjunctiveQuery::check_safety`]
/// verifies this.
#[derive(Debug, Clone, PartialEq)]
pub struct ConjunctiveQuery {
    /// Variable names.
    pub vars: VarTable,
    /// Answer terms (usually variables; constants allowed).
    pub head: Vec<Term>,
    /// Positive body atoms.
    pub atoms: Vec<Atom>,
    /// Negated body atoms (`not R(…)`), evaluated as anti-joins.
    pub negated: Vec<Atom>,
    /// Built-in comparisons.
    pub comparisons: Vec<Comparison>,
}

impl ConjunctiveQuery {
    /// A Boolean query (empty head)?
    pub fn is_boolean(&self) -> bool {
        self.head.is_empty()
    }

    /// True iff no relation name occurs twice among the positive atoms.
    pub fn is_self_join_free(&self) -> bool {
        let mut seen = std::collections::BTreeSet::new();
        self.atoms.iter().all(|a| seen.insert(&a.relation))
    }

    /// All variables occurring in positive atoms.
    pub fn positive_vars(&self) -> std::collections::BTreeSet<Var> {
        self.atoms.iter().flat_map(|a| a.vars()).collect()
    }

    /// Head variables.
    pub fn head_vars(&self) -> std::collections::BTreeSet<Var> {
        self.head.iter().filter_map(Term::as_var).collect()
    }

    /// Existential (non-head) variables of the positive body.
    pub fn existential_vars(&self) -> std::collections::BTreeSet<Var> {
        let head = self.head_vars();
        self.positive_vars()
            .into_iter()
            .filter(|v| !head.contains(v))
            .collect()
    }

    /// Verify range-restriction/safety; returns the offending variable name
    /// on failure.
    pub fn check_safety(&self) -> Result<(), String> {
        let pos = self.positive_vars();
        let check = |v: Var, whr: &str| -> Result<(), String> {
            if pos.contains(&v) {
                Ok(())
            } else {
                Err(format!(
                    "unsafe variable `{}` in {whr}: not bound by any positive atom",
                    self.vars.name(v)
                ))
            }
        };
        for t in &self.head {
            if let Some(v) = t.as_var() {
                check(v, "head")?;
            }
        }
        for a in &self.negated {
            for v in a.vars() {
                check(v, "negated atom")?;
            }
        }
        for c in &self.comparisons {
            for v in c.vars() {
                check(v, "comparison")?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let term = |t: &Term| match t {
            Term::Var(v) => self.vars.name(*v).to_string(),
            Term::Const(c) => c.to_string(),
        };
        write!(f, "Q(")?;
        for (i, t) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", term(t))?;
        }
        write!(f, ") :- ")?;
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if !std::mem::take(&mut first) {
                write!(f, ", ")?;
            }
            Ok(())
        };
        for a in &self.atoms {
            sep(f)?;
            write!(f, "{}(", a.relation)?;
            for (i, t) in a.terms.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", term(t))?;
            }
            write!(f, ")")?;
        }
        for a in &self.negated {
            sep(f)?;
            write!(f, "not {}(", a.relation)?;
            for (i, t) in a.terms.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", term(t))?;
            }
            write!(f, ")")?;
        }
        for c in &self.comparisons {
            sep(f)?;
            write!(f, "{} {} {}", term(&c.left), c.op, term(&c.right))?;
        }
        Ok(())
    }
}

/// A union of conjunctive queries (all disjuncts must share head arity).
#[derive(Debug, Clone, PartialEq)]
pub struct UnionQuery {
    /// The disjuncts.
    pub disjuncts: Vec<ConjunctiveQuery>,
}

impl UnionQuery {
    /// Wrap a single CQ.
    pub fn single(cq: ConjunctiveQuery) -> UnionQuery {
        UnionQuery {
            disjuncts: vec![cq],
        }
    }

    /// Head arity (0 for Boolean).
    pub fn arity(&self) -> usize {
        self.disjuncts.first().map_or(0, |c| c.head.len())
    }
}

/// A full first-order formula (for rewritten queries).
#[derive(Debug, Clone, PartialEq)]
pub enum Fo {
    /// A relational atom.
    Atom(Atom),
    /// A built-in comparison.
    Cmp(Comparison),
    /// Conjunction.
    And(Vec<Fo>),
    /// Disjunction.
    Or(Vec<Fo>),
    /// Negation.
    Not(Box<Fo>),
    /// Existential quantification.
    Exists(Vec<Var>, Box<Fo>),
}

impl Fo {
    /// Conjoin, flattening nested `And`s.
    pub fn and(parts: Vec<Fo>) -> Fo {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Fo::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.pop() {
            Some(only) if flat.is_empty() => only,
            Some(last) => {
                flat.push(last);
                Fo::And(flat)
            }
            None => Fo::And(flat),
        }
    }

    /// Free variables of the formula.
    pub fn free_vars(&self) -> std::collections::BTreeSet<Var> {
        fn go(f: &Fo, bound: &mut Vec<Var>, out: &mut std::collections::BTreeSet<Var>) {
            match f {
                Fo::Atom(a) => {
                    for v in a.vars() {
                        if !bound.contains(&v) {
                            out.insert(v);
                        }
                    }
                }
                Fo::Cmp(c) => {
                    for v in c.vars() {
                        if !bound.contains(&v) {
                            out.insert(v);
                        }
                    }
                }
                Fo::And(fs) | Fo::Or(fs) => fs.iter().for_each(|g| go(g, bound, out)),
                Fo::Not(g) => go(g, bound, out),
                Fo::Exists(vs, g) => {
                    let n = bound.len();
                    bound.extend(vs.iter().copied());
                    go(g, bound, out);
                    bound.truncate(n);
                }
            }
        }
        let mut out = std::collections::BTreeSet::new();
        go(self, &mut Vec::new(), &mut out);
        out
    }
}

/// An FO query: free variables (the answer tuple) plus a formula, with its
/// variable names.
#[derive(Debug, Clone, PartialEq)]
pub struct FoQuery {
    /// Variable names.
    pub vars: VarTable,
    /// Answer variables, in output order.
    pub free: Vec<Var>,
    /// The formula; its free variables must be exactly `free`.
    pub formula: Fo,
}

impl FoQuery {
    /// Lift a conjunctive query into an FO query
    /// (`∃ existentials. atoms ∧ ¬negated ∧ comparisons`).
    pub fn from_cq(cq: &ConjunctiveQuery) -> FoQuery {
        let mut parts: Vec<Fo> = cq.atoms.iter().cloned().map(Fo::Atom).collect();
        parts.extend(
            cq.negated
                .iter()
                .cloned()
                .map(|a| Fo::Not(Box::new(Fo::Atom(a)))),
        );
        parts.extend(cq.comparisons.iter().cloned().map(Fo::Cmp));
        let body = Fo::and(parts);
        let ex: Vec<Var> = cq.existential_vars().into_iter().collect();
        let formula = if ex.is_empty() {
            body
        } else {
            Fo::Exists(ex, Box::new(body))
        };
        // Head terms that are constants are not free variables.
        let free: Vec<Var> = cq.head.iter().filter_map(Term::as_var).collect();
        FoQuery {
            vars: cq.vars.clone(),
            free,
            formula,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_relation::Value;

    fn v(t: &mut VarTable, n: &str) -> Term {
        Term::Var(t.var(n))
    }

    #[test]
    fn var_table_interns() {
        let mut t = VarTable::new();
        let x = t.var("x");
        let y = t.var("y");
        assert_ne!(x, y);
        assert_eq!(t.var("x"), x);
        assert_eq!(t.name(y), "y");
        assert_eq!(t.lookup("y"), Some(y));
        assert_eq!(t.lookup("z"), None);
        let f = t.fresh();
        assert_eq!(t.len(), 3);
        assert!(t.name(f).starts_with("_v"));
    }

    #[test]
    fn cq_display_and_classification() {
        let mut vars = VarTable::new();
        let x = vars.var("x");
        let q = ConjunctiveQuery {
            head: vec![Term::Var(x)],
            atoms: vec![
                Atom::new("R", vec![Term::Var(x), Term::Const(Value::int(1))]),
                Atom::new("S", vec![Term::Var(x)]),
            ],
            negated: vec![],
            comparisons: vec![],
            vars,
        };
        assert!(q.is_self_join_free());
        assert!(!q.is_boolean());
        assert_eq!(q.to_string(), "Q(x) :- R(x, 1), S(x)");
        assert!(q.check_safety().is_ok());
    }

    #[test]
    fn self_join_detected() {
        let mut vars = VarTable::new();
        let x = v(&mut vars, "x");
        let q = ConjunctiveQuery {
            head: vec![],
            atoms: vec![
                Atom::new("R", vec![x.clone()]),
                Atom::new("R", vec![x.clone()]),
            ],
            negated: vec![],
            comparisons: vec![],
            vars,
        };
        assert!(!q.is_self_join_free());
        assert!(q.is_boolean());
    }

    #[test]
    fn safety_rejects_unbound_head_and_negation() {
        let mut vars = VarTable::new();
        let x = vars.var("x");
        let y = vars.var("y");
        let q = ConjunctiveQuery {
            head: vec![Term::Var(y)],
            atoms: vec![Atom::new("R", vec![Term::Var(x)])],
            negated: vec![],
            comparisons: vec![],
            vars: vars.clone(),
        };
        assert!(q.check_safety().unwrap_err().contains('y'));
        let q2 = ConjunctiveQuery {
            head: vec![],
            atoms: vec![Atom::new("R", vec![Term::Var(x)])],
            negated: vec![Atom::new("S", vec![Term::Var(y)])],
            comparisons: vec![],
            vars,
        };
        assert!(q2.check_safety().is_err());
    }

    #[test]
    fn fo_free_vars_respect_quantifiers() {
        let mut vars = VarTable::new();
        let x = vars.var("x");
        let y = vars.var("y");
        let f = Fo::Exists(
            vec![y],
            Box::new(Fo::And(vec![
                Fo::Atom(Atom::new("R", vec![Term::Var(x), Term::Var(y)])),
                Fo::Cmp(Comparison::new(Term::Var(y), CmpOp::Ne, Term::Var(x))),
            ])),
        );
        let free = f.free_vars();
        assert!(free.contains(&x));
        assert!(!free.contains(&y));
    }

    #[test]
    fn from_cq_builds_exists() {
        let mut vars = VarTable::new();
        let x = vars.var("x");
        let y = vars.var("y");
        let cq = ConjunctiveQuery {
            head: vec![Term::Var(x)],
            atoms: vec![Atom::new("R", vec![Term::Var(x), Term::Var(y)])],
            negated: vec![],
            comparisons: vec![],
            vars,
        };
        let fo = FoQuery::from_cq(&cq);
        assert_eq!(fo.free, vec![x]);
        match &fo.formula {
            Fo::Exists(vs, _) => assert_eq!(vs, &vec![y]),
            other => panic!("expected Exists, got {other:?}"),
        }
    }

    #[test]
    fn cmp_op_algebra() {
        assert_eq!(CmpOp::Lt.flipped(), CmpOp::Gt);
        assert_eq!(CmpOp::Lt.negated(), CmpOp::Ge);
        assert!(CmpOp::Le.eval(&Value::int(1), &Value::int(1)));
        assert!(CmpOp::Ne.eval(&Value::int(1), &Value::int(2)));
        assert!(!CmpOp::Gt.eval(&Value::int(1), &Value::int(2)));
    }

    #[test]
    fn and_flattens() {
        let a = Fo::Atom(Atom::new("R", vec![]));
        let f = Fo::and(vec![Fo::And(vec![a.clone(), a.clone()]), a.clone()]);
        match f {
            Fo::And(parts) => assert_eq!(parts.len(), 3),
            _ => panic!(),
        }
        // Single part collapses.
        assert_eq!(Fo::and(vec![a.clone()]), a);
    }
}
