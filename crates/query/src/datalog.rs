//! Stratified Datalog with negation, evaluated semi-naively.
//!
//! This engine backs the virtual-data-integration crate (GAV view expansion,
//! LAV inverse rules, §5 of the paper) and provides the "monotone query"
//! language over which causality is defined in §7. It is deliberately a
//! *materializing* engine: `evaluate` returns a database holding the EDB plus
//! every derived IDB fact, which the ordinary query evaluator can then query.

use crate::ast::{Atom, Comparison, ConjunctiveQuery, Term, VarTable};
use crate::eval::{for_each_witness, NullSemantics};
use cqa_relation::{Database, RelationError, RelationSchema, Tuple};
use std::collections::{BTreeMap, BTreeSet};

/// A body literal.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Positive atom.
    Pos(Atom),
    /// Negated atom (must be on a strictly lower stratum).
    Neg(Atom),
    /// Built-in comparison.
    Cmp(Comparison),
}

/// A Datalog rule `head :- body` (facts have an empty body and a ground head).
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Head atom; its predicate is an IDB predicate.
    pub head: Atom,
    /// Body literals.
    pub body: Vec<Literal>,
}

impl Rule {
    /// Positive body atoms.
    pub fn positive(&self) -> impl Iterator<Item = &Atom> {
        self.body.iter().filter_map(|l| match l {
            Literal::Pos(a) => Some(a),
            _ => None,
        })
    }

    /// Negative body atoms.
    pub fn negative(&self) -> impl Iterator<Item = &Atom> {
        self.body.iter().filter_map(|l| match l {
            Literal::Neg(a) => Some(a),
            _ => None,
        })
    }

    /// Comparisons.
    pub fn comparisons(&self) -> impl Iterator<Item = &Comparison> {
        self.body.iter().filter_map(|l| match l {
            Literal::Cmp(c) => Some(c),
            _ => None,
        })
    }
}

/// A Datalog program. Variables of all rules share one [`VarTable`]
/// (indices are only used for binding slots, so sharing is harmless).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// The rules, facts included.
    pub rules: Vec<Rule>,
    /// Shared variable names.
    pub vars: VarTable,
}

impl Program {
    /// Predicates defined by some rule head.
    pub fn idb_predicates(&self) -> BTreeSet<String> {
        self.rules.iter().map(|r| r.head.relation.clone()).collect()
    }

    /// Check range-restriction: head, negated and comparison variables must
    /// occur in the positive body.
    pub fn check_safety(&self) -> Result<(), String> {
        for (i, rule) in self.rules.iter().enumerate() {
            let pos: BTreeSet<_> = rule.positive().flat_map(|a| a.vars()).collect();
            let mut need = Vec::new();
            need.extend(rule.head.vars());
            need.extend(rule.negative().flat_map(|a| a.vars()));
            need.extend(rule.comparisons().flat_map(|c| c.vars()));
            for v in need {
                if !pos.contains(&v) {
                    return Err(format!("rule {i}: unsafe variable `{}`", self.vars.name(v)));
                }
            }
        }
        Ok(())
    }

    /// Compute a stratification: predicate → stratum number. Fails iff some
    /// negation occurs in a recursive cycle.
    pub fn stratify(&self) -> Result<BTreeMap<String, usize>, String> {
        let idb = self.idb_predicates();
        let mut stratum: BTreeMap<String, usize> =
            idb.iter().map(|p| (p.clone(), 0usize)).collect();
        let max_rounds = idb.len() + 1;
        for _ in 0..=max_rounds {
            let mut changed = false;
            for rule in &self.rules {
                let h = rule.head.relation.clone();
                let hs = stratum[&h];
                let mut new_hs = hs;
                for a in rule.positive() {
                    if let Some(&s) = stratum.get(&a.relation) {
                        new_hs = new_hs.max(s);
                    }
                }
                for a in rule.negative() {
                    if let Some(&s) = stratum.get(&a.relation) {
                        new_hs = new_hs.max(s + 1);
                    }
                }
                if new_hs > hs {
                    if new_hs > idb.len() {
                        return Err(format!(
                            "program is not stratifiable: negation through recursion at `{h}`"
                        ));
                    }
                    stratum.insert(h, new_hs);
                    changed = true;
                }
            }
            if !changed {
                return Ok(stratum);
            }
        }
        Err("program is not stratifiable".to_string())
    }

    /// Evaluate the program over `edb`, returning a database containing the
    /// EDB relations plus all materialized IDB relations.
    pub fn evaluate(&self, edb: &Database) -> Result<Database, RelationError> {
        self.check_safety().map_err(RelationError::Parse)?;
        let strata = self.stratify().map_err(RelationError::Parse)?;

        let mut db = edb.clone();
        // Create IDB relations (arity from the first head occurrence).
        let mut arity: BTreeMap<String, usize> = BTreeMap::new();
        for rule in &self.rules {
            let a = rule.head.terms.len();
            if let Some(&prev) = arity.get(&rule.head.relation) {
                if prev != a {
                    return Err(RelationError::Parse(format!(
                        "predicate `{}` used with arities {prev} and {a}",
                        rule.head.relation
                    )));
                }
            } else {
                arity.insert(rule.head.relation.clone(), a);
            }
        }
        for (pred, &a) in &arity {
            if db.relation(pred).is_none() {
                let attrs: Vec<String> = (0..a).map(|i| format!("a{i}")).collect();
                db.create_relation(RelationSchema::new(pred.clone(), attrs))?;
            }
            // A delta twin for semi-naive evaluation.
            let attrs: Vec<String> = (0..a).map(|i| format!("a{i}")).collect();
            db.create_relation(RelationSchema::new(delta_name(pred), attrs))?;
        }

        let max_stratum = strata.values().copied().max().unwrap_or(0);
        for s in 0..=max_stratum {
            let rules_here: Vec<&Rule> = self
                .rules
                .iter()
                .filter(|r| strata[&r.head.relation] == s)
                .collect();
            if rules_here.is_empty() {
                continue;
            }
            self.evaluate_stratum(&mut db, &rules_here, &strata, s)?;
        }

        // Drop the delta relations from the result by rebuilding without them.
        let mut clean = Database::new();
        for rel in db.relations() {
            if rel.name().starts_with(DELTA_PREFIX) {
                continue;
            }
            clean.create_relation((**rel.schema()).clone())?;
            for t in rel.tuples() {
                clean.insert(rel.name(), t.clone())?;
            }
        }
        Ok(clean)
    }

    /// Answer a single goal atom over `edb`, goal-directed when possible:
    /// the set of `goal.relation` facts matching the goal's constants (and
    /// repeated-variable equalities).
    ///
    /// When the program is positive and the goal is a bound IDB atom, the
    /// magic-sets rewrite ([`crate::magic`]) passes the goal's bindings
    /// sideways through rule bodies so evaluation derives only relevant
    /// facts; otherwise (negation, unbound or EDB goals) it falls back to
    /// full materialization. Answers are identical either way — pinned by
    /// `goal_directed_answers_match_full_evaluation`.
    pub fn answers_for_goal(
        &self,
        edb: &Database,
        goal: &Atom,
    ) -> Result<BTreeSet<Tuple>, RelationError> {
        let has_binding = goal.terms.iter().any(|t| matches!(t, Term::Const(_)));
        if has_binding {
            if let Ok(magic) = crate::magic::magic_rewrite(self, goal) {
                let out = magic.program.evaluate(edb)?;
                return Ok(collect_goal_matches(&out, &magic.goal.relation, goal));
            }
        }
        let out = self.evaluate(edb)?;
        Ok(collect_goal_matches(&out, &goal.relation, goal))
    }

    fn evaluate_stratum(
        &self,
        db: &mut Database,
        rules: &[&Rule],
        strata: &BTreeMap<String, usize>,
        stratum: usize,
    ) -> Result<(), RelationError> {
        // Round 0: evaluate every rule in full; the results seed the deltas.
        let mut delta: BTreeMap<String, BTreeSet<Tuple>> = BTreeMap::new();
        for rule in rules {
            for t in self.fire(db, rule, None)? {
                if insert_new(db, &rule.head.relation, &t)? {
                    delta
                        .entry(rule.head.relation.clone())
                        .or_default()
                        .insert(t);
                }
            }
        }
        // Semi-naive rounds: re-fire only rules with a positive atom on a
        // predicate of this stratum, once per such occurrence, reading the
        // delta for that occurrence.
        loop {
            if delta.values().all(BTreeSet::is_empty) {
                break;
            }
            // Materialize current deltas into Δ relations.
            for (pred, tuples) in &delta {
                clear_relation(db, &delta_name(pred))?;
                for t in tuples {
                    db.insert(&delta_name(pred), t.clone())?;
                }
            }
            let mut next: BTreeMap<String, BTreeSet<Tuple>> = BTreeMap::new();
            for rule in rules {
                let rec_positions: Vec<usize> = rule
                    .positive()
                    .enumerate()
                    .filter(|(_, a)| {
                        strata.get(&a.relation) == Some(&stratum)
                            && delta.get(&a.relation).is_some_and(|d| !d.is_empty())
                    })
                    .map(|(i, _)| i)
                    .collect();
                for &occ in &rec_positions {
                    for t in self.fire(db, rule, Some(occ))? {
                        if insert_new(db, &rule.head.relation, &t)? {
                            next.entry(rule.head.relation.clone())
                                .or_default()
                                .insert(t);
                        }
                    }
                }
            }
            delta = next;
        }
        // Clear deltas for hygiene.
        for rule in rules {
            clear_relation(db, &delta_name(&rule.head.relation))?;
        }
        Ok(())
    }

    /// Evaluate one rule body over `db`; if `delta_occurrence` is set, the
    /// n-th positive atom reads from its Δ relation instead.
    fn fire(
        &self,
        db: &Database,
        rule: &Rule,
        delta_occurrence: Option<usize>,
    ) -> Result<Vec<Tuple>, RelationError> {
        let mut atoms: Vec<Atom> = rule.positive().cloned().collect();
        if let Some(occ) = delta_occurrence {
            atoms[occ].relation = delta_name(&atoms[occ].relation);
        }
        let cq = ConjunctiveQuery {
            vars: self.vars.clone(),
            head: rule.head.terms.clone(),
            atoms,
            negated: rule.negative().cloned().collect(),
            comparisons: rule.comparisons().cloned().collect(),
        };
        let mut out = Vec::new();
        for_each_witness(db, &cq, NullSemantics::Structural, &mut |w| {
            if let Some(t) = w.bindings.project(&cq.head) {
                out.push(t);
            }
            true
        });
        Ok(out)
    }
}

const DELTA_PREFIX: &str = "\u{0394}#"; // "Δ#", cannot clash with user names

/// Facts of `relation` in `db` matching `pattern`'s constants and
/// repeated-variable equality constraints.
fn collect_goal_matches(db: &Database, relation: &str, pattern: &Atom) -> BTreeSet<Tuple> {
    let Some(rel) = db.relation(relation) else {
        return BTreeSet::new();
    };
    rel.tuples()
        .filter(|t| {
            if t.values().len() != pattern.terms.len() {
                return false;
            }
            let mut bound: BTreeMap<crate::ast::Var, &cqa_relation::Value> = BTreeMap::new();
            pattern
                .terms
                .iter()
                .zip(t.values())
                .all(|(term, val)| match term {
                    Term::Const(c) => c == val,
                    Term::Var(v) => match bound.entry(*v) {
                        std::collections::btree_map::Entry::Occupied(e) => *e.get() == val,
                        std::collections::btree_map::Entry::Vacant(e) => {
                            e.insert(val);
                            true
                        }
                    },
                })
        })
        .cloned()
        .collect()
}

fn delta_name(pred: &str) -> String {
    format!("{DELTA_PREFIX}{pred}")
}

fn insert_new(db: &mut Database, pred: &str, t: &Tuple) -> Result<bool, RelationError> {
    if db.require_relation(pred)?.contains(t) {
        Ok(false)
    } else {
        db.insert(pred, t.clone())?;
        Ok(true)
    }
}

fn clear_relation(db: &mut Database, pred: &str) -> Result<(), RelationError> {
    let tids: Vec<_> = db.require_relation(pred)?.tids().collect();
    for tid in tids {
        db.delete(tid)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, parse_query};
    use cqa_relation::tuple;

    fn edge_db(edges: &[(i64, i64)]) -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Edge", ["From", "To"]))
            .unwrap();
        for &(a, b) in edges {
            db.insert("Edge", tuple![a, b]).unwrap();
        }
        db
    }

    #[test]
    fn transitive_closure() {
        let p = parse_program(
            "Path(x, y) :- Edge(x, y).\n\
             Path(x, z) :- Edge(x, y), Path(y, z).",
        )
        .unwrap();
        let db = edge_db(&[(1, 2), (2, 3), (3, 4)]);
        let out = p.evaluate(&db).unwrap();
        let path = out.relation("Path").unwrap();
        assert_eq!(path.len(), 6); // all ordered pairs i<j
        assert!(path.contains(&tuple![1, 4]));
    }

    #[test]
    fn transitive_closure_with_cycle_terminates() {
        let p = parse_program(
            "Path(x, y) :- Edge(x, y).\n\
             Path(x, z) :- Path(x, y), Edge(y, z).",
        )
        .unwrap();
        let db = edge_db(&[(1, 2), (2, 1)]);
        let out = p.evaluate(&db).unwrap();
        assert_eq!(out.relation("Path").unwrap().len(), 4);
    }

    #[test]
    fn goal_directed_answers_match_full_evaluation() {
        let p = parse_program(
            "Path(x, y) :- Edge(x, y).\n\
             Path(x, z) :- Path(x, y), Edge(y, z).",
        )
        .unwrap();
        // Two disconnected chains; a goal bound to source 1 should only
        // ever need the first chain.
        let db = edge_db(&[(1, 2), (2, 3), (10, 11), (11, 12), (12, 13)]);
        let goal_q = parse_query("Q(y) :- Path(1, y)").unwrap();
        let goal = goal_q.atoms[0].clone();

        let directed = p.answers_for_goal(&db, &goal).unwrap();
        let full: BTreeSet<Tuple> = p
            .evaluate(&db)
            .unwrap()
            .relation("Path")
            .unwrap()
            .tuples()
            .filter(|t| t.at(0).as_i64() == Some(1))
            .cloned()
            .collect();
        assert_eq!(directed, full);
        assert_eq!(directed.len(), 2); // Path(1,2), Path(1,3)

        // Unbound goal falls back to full evaluation: all Path facts.
        let open = parse_query("Q(x, y) :- Path(x, y)").unwrap().atoms[0].clone();
        let all = p.answers_for_goal(&db, &open).unwrap();
        assert_eq!(
            all.len(),
            p.evaluate(&db).unwrap().relation("Path").unwrap().len()
        );

        // Repeated variables constrain: Path(x, x) over an acyclic graph
        // is empty.
        let diag = parse_query("Q(x) :- Path(x, x)").unwrap().atoms[0].clone();
        assert!(p.answers_for_goal(&db, &diag).unwrap().is_empty());
    }

    #[test]
    fn goal_directed_handles_negation_by_fallback() {
        let p = parse_program(
            "Reach(x) :- Source(x).\n\
             Reach(y) :- Reach(x), Edge(x, y).\n\
             Unreached(x) :- Node(x), not Reach(x).",
        )
        .unwrap();
        let mut db = edge_db(&[(1, 2)]);
        db.create_relation(RelationSchema::new("Source", ["N"]))
            .unwrap();
        db.create_relation(RelationSchema::new("Node", ["N"]))
            .unwrap();
        db.insert("Source", tuple![1]).unwrap();
        for n in 1..=3 {
            db.insert("Node", tuple![n]).unwrap();
        }
        // Magic sets reject negation; answers_for_goal must still answer.
        let goal = parse_query("Q() :- Unreached(3)").unwrap().atoms[0].clone();
        assert_eq!(p.answers_for_goal(&db, &goal).unwrap().len(), 1);
    }

    #[test]
    fn stratified_negation() {
        let p = parse_program(
            "Reach(x) :- Source(x).\n\
             Reach(y) :- Reach(x), Edge(x, y).\n\
             Unreached(x) :- Node(x), not Reach(x).",
        )
        .unwrap();
        let mut db = edge_db(&[(1, 2), (3, 4)]);
        db.create_relation(RelationSchema::new("Source", ["N"]))
            .unwrap();
        db.create_relation(RelationSchema::new("Node", ["N"]))
            .unwrap();
        db.insert("Source", tuple![1]).unwrap();
        for n in 1..=4 {
            db.insert("Node", tuple![n]).unwrap();
        }
        let out = p.evaluate(&db).unwrap();
        let unreached: Vec<i64> = out
            .relation("Unreached")
            .unwrap()
            .tuples()
            .map(|t| t.at(0).as_i64().unwrap())
            .collect();
        assert_eq!(unreached, vec![3, 4]);
    }

    #[test]
    fn non_stratifiable_rejected() {
        let p = parse_program(
            "P(x) :- Node(x), not Q(x).\n\
             Q(x) :- Node(x), not P(x).",
        )
        .unwrap();
        assert!(p.stratify().is_err());
        assert!(p.evaluate(&Database::new()).is_err());
    }

    #[test]
    fn facts_and_rules_mix() {
        let p = parse_program(
            "Edge(A, B).\n\
             Edge(B, C).\n\
             Path(x, y) :- Edge(x, y).\n\
             Path(x, z) :- Edge(x, y), Path(y, z).",
        )
        .unwrap();
        let out = p.evaluate(&Database::new()).unwrap();
        assert_eq!(out.relation("Path").unwrap().len(), 3);
        // EDB-less program: Edge was created as IDB.
        assert_eq!(out.relation("Edge").unwrap().len(), 2);
    }

    #[test]
    fn gav_style_view_unfolding() {
        // The GAV views of Example 5.1.
        let p = parse_program(
            "Stds(x, y, 'cu', z) :- CUstds(x, y), SpecCU(x, z).\n\
             Stds(x, y, 'ou', z) :- OUstds(x, y), SpecOU(x, z).",
        )
        .unwrap();
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("CUstds", ["Number", "Name"]))
            .unwrap();
        db.create_relation(RelationSchema::new("SpecCU", ["Number", "Field"]))
            .unwrap();
        db.create_relation(RelationSchema::new("OUstds", ["Number", "Name"]))
            .unwrap();
        db.create_relation(RelationSchema::new("SpecOU", ["Number", "Field"]))
            .unwrap();
        db.insert("CUstds", tuple![101, "john"]).unwrap();
        db.insert("SpecCU", tuple![101, "alg"]).unwrap();
        db.insert("OUstds", tuple![103, "claire"]).unwrap();
        db.insert("SpecOU", tuple![103, "db"]).unwrap();
        let out = p.evaluate(&db).unwrap();
        let stds = out.relation("Stds").unwrap();
        assert_eq!(stds.len(), 2);
        assert!(stds.contains(&tuple![101, "john", "cu", "alg"]));
        // The materialized view can now be queried normally.
        let q = parse_query("Q(n) :- Stds(x, n, 'ou', f)").unwrap();
        let ans = crate::eval::eval_cq(&out, &q, NullSemantics::Structural);
        assert!(ans.contains(&tuple!["claire"]));
    }

    #[test]
    fn arity_conflict_rejected() {
        let p = parse_program("P(x) :- R(x).\nP(x, y) :- R(x), R(y).").unwrap();
        assert!(p.evaluate(&Database::new()).is_err());
    }

    #[test]
    fn unsafe_rule_rejected() {
        let p = parse_program("P(x, y) :- R(x).").unwrap();
        assert!(p.evaluate(&Database::new()).is_err());
    }
}
