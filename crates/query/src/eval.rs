//! Evaluation of conjunctive queries (with safe negation and comparisons)
//! and unions thereof, with optional witness (provenance) extraction.
//!
//! The evaluator is a bind-and-filter join with a greedy atom order
//! (most-bound, smallest-relation first) that runs entirely in **id space**:
//! atom constants are resolved to [`Vid`]s once per query, joins compare
//! word-sized vids instead of values, and per-atom probes hit the base
//! instance's shared *multi-column* hash indexes
//! ([`cqa_relation::Database::hash_index`]) on every bound position at once.
//! Values reappear only at the emission boundary — a [`Witness`] resolves its
//! vid assignment back through the dictionary — so answers are byte-identical
//! to the old value-space evaluator. This keeps the code honest and
//! auditable, which matters more here than raw speed: repairs and CQA are
//! *defined* in terms of query answers, so the evaluator is the trusted base
//! of the whole workspace.
//!
//! Every entry point is generic over [`Facts`], so the same code path
//! evaluates plain [`cqa_relation::Database`]s and zero-clone [`cqa_relation::DeltaView`]
//! repair views: indexed probes hit the base's cached buckets, filter deleted
//! tids, and union the insert overlay (whose novel values carry per-view
//! extension vids that can never alias base ids).

use crate::ast::{Atom, Comparison, ConjunctiveQuery, Term, UnionQuery, Var};
use cqa_relation::fxhash::WordHashMap;
use cqa_relation::{sql_eq, Facts, HashIndex, Tid, Truth, Tuple, Value, Vid, VidRow};
use std::collections::BTreeSet;
use std::sync::Arc;

/// How nulls behave during matching (see `cqa-relation::value`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NullSemantics {
    /// Nulls are ordinary constants: `NULL = NULL` holds (label-wise). The
    /// right choice for null-free instances and for model-theoretic checks.
    #[default]
    Structural,
    /// SQL three-valued semantics: a comparison or join involving any null is
    /// *unknown* and therefore never satisfied. The right choice when
    /// querying null-based repairs (§4.2–4.3 of the paper).
    Sql,
}

impl NullSemantics {
    /// Can `a` be considered equal to `b` for joining/selection?
    #[inline]
    pub fn values_join(self, a: &Value, b: &Value) -> bool {
        match self {
            NullSemantics::Structural => a == b,
            NullSemantics::Sql => sql_eq(a, b) == Truth::True,
        }
    }

    /// Evaluate a comparison under this semantics.
    pub fn cmp(self, op: crate::ast::CmpOp, a: &Value, b: &Value) -> bool {
        match self {
            NullSemantics::Structural => op.eval(a, b),
            NullSemantics::Sql => {
                if a.is_null() || b.is_null() {
                    false
                } else {
                    op.eval(a, b)
                }
            }
        }
    }
}

/// A partial assignment of values to a query's variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bindings {
    slots: Vec<Option<Value>>,
}

impl Bindings {
    /// All-unbound assignment for `n_vars` variables.
    pub fn new(n_vars: usize) -> Bindings {
        Bindings {
            slots: vec![None; n_vars],
        }
    }

    /// Value bound to `v`, if any.
    pub fn get(&self, v: Var) -> Option<&Value> {
        self.slots.get(v.0 as usize).and_then(Option::as_ref)
    }

    /// Bind `v` (overwrites).
    pub fn set(&mut self, v: Var, value: Value) {
        let i = v.0 as usize;
        if i >= self.slots.len() {
            self.slots.resize(i + 1, None);
        }
        self.slots[i] = Some(value);
    }

    /// Unbind `v`.
    pub fn unset(&mut self, v: Var) {
        if let Some(slot) = self.slots.get_mut(v.0 as usize) {
            *slot = None;
        }
    }

    /// Resolve a term to a value under this assignment.
    pub fn resolve(&self, term: &Term) -> Option<Value> {
        match term {
            Term::Const(v) => Some(v.clone()),
            Term::Var(v) => self.get(*v).cloned(),
        }
    }

    /// Project the given head terms into an answer tuple. `None` if some head
    /// variable is unbound.
    pub fn project(&self, head: &[Term]) -> Option<Tuple> {
        head.iter()
            .map(|t| self.resolve(t))
            .collect::<Option<Vec<_>>>()
            .map(Tuple::new)
    }
}

/// One satisfying assignment of a CQ's positive body: the answer projection
/// plus the tids of the matched atoms (in atom order). This is the
/// "violation witness" used to build conflict hyper-graphs, and the
/// "explanation witness" used by causality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// Full variable assignment.
    pub bindings: Bindings,
    /// Matched tuple ids, one per positive atom, in the query's atom order.
    pub tids: Vec<Tid>,
}

/// Try to extend `bindings` by matching `atom` against `tuple`.
///
/// Returns the list of variables newly bound on success so the caller can
/// backtrack cheaply.
pub fn match_atom(
    atom: &Atom,
    tuple: &Tuple,
    bindings: &mut Bindings,
    mode: NullSemantics,
) -> Option<Vec<Var>> {
    debug_assert_eq!(atom.terms.len(), tuple.arity());
    let mut newly = Vec::new();
    for (term, value) in atom.terms.iter().zip(tuple.iter()) {
        match term {
            Term::Const(c) => {
                if !mode.values_join(c, value) {
                    for v in newly {
                        bindings.unset(v);
                    }
                    return None;
                }
            }
            Term::Var(v) => match bindings.get(*v) {
                Some(bound) => {
                    if !mode.values_join(bound, value) {
                        for v in newly {
                            bindings.unset(v);
                        }
                        return None;
                    }
                }
                None => {
                    bindings.set(*v, value.clone());
                    newly.push(*v);
                }
            },
        }
    }
    Some(newly)
}

/// A vid-space variable assignment (one slot per variable). This is what the
/// evaluator joins on internally; the public value-level [`Bindings`] is
/// materialized from it only at the witness-emission boundary.
#[derive(Debug, Clone)]
pub struct VidBindings {
    slots: Vec<Option<Vid>>,
}

impl VidBindings {
    /// All-unbound assignment for `n_vars` variables.
    pub fn new(n_vars: usize) -> VidBindings {
        VidBindings {
            slots: vec![None; n_vars],
        }
    }

    /// Vid bound to `v`, if any.
    #[inline]
    pub fn get(&self, v: Var) -> Option<Vid> {
        self.slots.get(v.0 as usize).copied().flatten()
    }

    /// Bind `v` (overwrites).
    pub fn set(&mut self, v: Var, vid: Vid) {
        let i = v.0 as usize;
        if i >= self.slots.len() {
            self.slots.resize(i + 1, None);
        }
        if let Some(slot) = self.slots.get_mut(i) {
            *slot = Some(vid);
        }
    }

    /// Unbind `v`.
    pub fn unset(&mut self, v: Var) {
        if let Some(slot) = self.slots.get_mut(v.0 as usize) {
            *slot = None;
        }
    }

    /// Resolve a term to a *value* through the view's dictionary (comparison
    /// filters operate on values, not ids).
    pub fn resolve_value<F: Facts + ?Sized>(&self, facts: &F, term: &Term) -> Option<Value> {
        match term {
            Term::Const(v) => Some(v.clone()),
            Term::Var(v) => self.get(*v).and_then(|vid| facts.resolve_vid(vid)),
        }
    }

    /// Materialize the public value-level assignment (emission boundary).
    pub fn to_bindings<F: Facts + ?Sized>(&self, facts: &F) -> Bindings {
        let mut cache = WordHashMap::default();
        self.to_bindings_cached(facts, &mut cache)
    }

    /// Like [`Self::to_bindings`], but each distinct vid resolves through
    /// the dictionary at most once per `cache` lifetime. An evaluation emits
    /// many witnesses over few distinct vids (a join key repeats across its
    /// whole bucket), so keeping one cache per query turns the per-witness
    /// dictionary-lock round-trips into word-sized map hits. Lookups are
    /// point reads — the cache is never iterated, so hash order cannot
    /// reach the output.
    pub fn to_bindings_cached<F: Facts + ?Sized>(
        &self,
        facts: &F,
        cache: &mut WordHashMap<Vid, Value>,
    ) -> Bindings {
        let mut out = Bindings::new(self.slots.len());
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some(vid) = slot {
                if let Some(value) = resolve_vid_cached(facts, *vid, cache) {
                    out.set(Var(i as u32), value);
                }
            }
        }
        out
    }
}

/// Resolve `vid` through `cache`, falling back to the view's dictionary and
/// memoizing the hit. Sound because a vid's resolution never changes within
/// an evaluation (the dictionary is append-only).
fn resolve_vid_cached<F: Facts + ?Sized>(
    facts: &F,
    vid: Vid,
    cache: &mut WordHashMap<Vid, Value>,
) -> Option<Value> {
    if let Some(v) = cache.get(&vid) {
        return Some(v.clone());
    }
    let v = facts.resolve_vid(vid)?;
    cache.insert(vid, v.clone());
    Some(v)
}

/// An atom's constant terms resolved to vids, once per evaluation.
pub struct AtomVids {
    /// Aligned with the atom's terms; `Some` only at `Const` positions.
    consts: Vec<Option<Vid>>,
    /// True when no visible row can ever match this atom: a constant the
    /// view has never stored, or (under SQL semantics) a null constant.
    unmatchable: bool,
}

impl AtomVids {
    /// Resolve `atom`'s constants against the view's dictionary.
    pub fn resolve<F: Facts + ?Sized>(facts: &F, atom: &Atom, mode: NullSemantics) -> AtomVids {
        resolve_atom_consts(facts, atom, mode)
    }

    /// Can this atom never match a visible row?
    pub fn is_unmatchable(&self) -> bool {
        self.unmatchable
    }
}

fn resolve_atom_consts<F: Facts + ?Sized>(facts: &F, atom: &Atom, mode: NullSemantics) -> AtomVids {
    let mut unmatchable = false;
    let consts = atom
        .terms
        .iter()
        .map(|t| match t {
            Term::Const(c) => {
                if mode == NullSemantics::Sql && c.is_null() {
                    unmatchable = true;
                }
                let vid = facts.vid_of(c);
                if vid.is_none() {
                    unmatchable = true;
                }
                vid
            }
            Term::Var(_) => None,
        })
        .collect();
    AtomVids {
        consts,
        unmatchable,
    }
}

/// One-position join check in vid space. Vid equality *is* structural value
/// equality (the dictionary canonicalizes), so SQL semantics only adds the
/// null rejection.
#[inline]
fn vids_join<F: Facts + ?Sized>(
    facts: &F,
    mode: NullSemantics,
    expected: Vid,
    actual: Vid,
) -> bool {
    expected == actual && (mode == NullSemantics::Structural || !facts.vid_is_null(actual))
}

/// Vid-space [`match_atom`]: extend `bindings` by matching `atom` against an
/// id-space row. Returns the newly bound variables for cheap backtracking.
/// `av` must be [`AtomVids::resolve`]d for the same atom and mode.
pub fn match_atom_vids<F: Facts + ?Sized>(
    facts: &F,
    atom: &Atom,
    av: &AtomVids,
    row: &VidRow<'_>,
    bindings: &mut VidBindings,
    mode: NullSemantics,
) -> Option<Vec<Var>> {
    if av.unmatchable || row.arity() != atom.terms.len() {
        return None;
    }
    let mut newly = Vec::new();
    for (pos, term) in atom.terms.iter().enumerate() {
        let Some(actual) = row.at(pos) else {
            for v in newly {
                bindings.unset(v);
            }
            return None;
        };
        let ok = match term {
            Term::Const(_) => av
                .consts
                .get(pos)
                .copied()
                .flatten()
                .is_some_and(|expected| vids_join(facts, mode, expected, actual)),
            Term::Var(v) => match bindings.get(*v) {
                Some(expected) => vids_join(facts, mode, expected, actual),
                None => {
                    bindings.set(*v, actual);
                    newly.push(*v);
                    true
                }
            },
        };
        if !ok {
            for v in newly {
                bindings.unset(v);
            }
            return None;
        }
    }
    Some(newly)
}

/// Does any visible row match `atom` under `bindings`? (Used for negation.)
fn atom_has_match_vids<F: Facts + ?Sized>(
    facts: &F,
    atom: &Atom,
    av: &AtomVids,
    bindings: &VidBindings,
    mode: NullSemantics,
) -> bool {
    if av.unmatchable {
        return false;
    }
    // Fast path: fully bound atom → id-space membership probe. Under SQL
    // semantics a null key can never join, so bail before the probe.
    let full: Option<Vec<Vid>> = atom
        .terms
        .iter()
        .enumerate()
        .map(|(i, t)| match t {
            Term::Const(_) => av.consts.get(i).copied().flatten(),
            Term::Var(v) => bindings.get(*v),
        })
        .collect();
    if let Some(key) = full {
        if mode == NullSemantics::Sql && key.iter().any(|&k| facts.vid_is_null(k)) {
            return false;
        }
        return facts.contains_vids(&atom.relation, &key);
    }
    let mut scratch = bindings.clone();
    facts.vid_rows(&atom.relation).any(|(_, row)| {
        match match_atom_vids(facts, atom, av, &row, &mut scratch, mode) {
            Some(newly) => {
                for v in newly {
                    scratch.unset(v);
                }
                true
            }
            None => false,
        }
    })
}

/// Evaluate a comparison once both sides are bound; `None` if not yet bound.
fn try_comparison_vids<F: Facts + ?Sized>(
    c: &Comparison,
    facts: &F,
    bindings: &VidBindings,
    mode: NullSemantics,
) -> Option<bool> {
    let a = bindings.resolve_value(facts, &c.left)?;
    let b = bindings.resolve_value(facts, &c.right)?;
    Some(mode.cmp(c.op, &a, &b))
}

/// Pick the join order for `cq`'s positive atoms.
///
/// Delegates to the cost-based planner ([`crate::plan::join_order`]), which
/// scores candidate atoms by estimated access cost from column statistics
/// and breaks every tie down to the atom index — a strict total order, so
/// the chosen order is stable under relation insertion order. (The
/// boundness-greedy heuristic this replaced used `max_by_key` over a
/// `swap_remove`-perturbed worklist, where equally-scored atoms resolved
/// by whichever the perturbed iteration visited last.)
fn atom_order<F: Facts + ?Sized>(facts: &F, cq: &ConjunctiveQuery) -> Vec<usize> {
    crate::plan::join_order(facts, cq)
}

/// Evaluate the positive part of `cq` and call `sink` for every witness that
/// also passes the comparisons and negated atoms.
///
/// `sink` returns `true` to continue enumeration, `false` to stop early
/// (used by Boolean queries).
pub fn for_each_witness<F: Facts + ?Sized>(
    facts: &F,
    cq: &ConjunctiveQuery,
    mode: NullSemantics,
    sink: &mut dyn FnMut(&Witness) -> bool,
) {
    // Materialize values at this boundary only; the enumeration below stays
    // in id space. One resolve cache spans every witness of the query.
    let mut cache: WordHashMap<Vid, Value> = WordHashMap::default();
    for_each_witness_vids(facts, cq, mode, &mut |bindings, tids| {
        let witness = Witness {
            bindings: bindings.to_bindings_cached(facts, &mut cache),
            tids: tids.to_vec(),
        };
        sink(&witness)
    });
}

/// The id-space core of [`for_each_witness`]: `sink` receives the raw vid
/// assignment and the matched tids, with **no** dictionary access on the
/// emission path. Callers that only need a projection (or just existence)
/// skip the per-witness value materialization entirely and resolve at the
/// very end — resolve, then sort, so id order never shapes the output.
pub fn for_each_witness_vids<F: Facts + ?Sized>(
    facts: &F,
    cq: &ConjunctiveQuery,
    mode: NullSemantics,
    sink: &mut dyn FnMut(&VidBindings, &[Tid]) -> bool,
) {
    let order = atom_order(facts, cq);
    for_each_witness_vids_ordered(facts, cq, mode, &order, sink);
}

/// [`for_each_witness_vids`] with a caller-supplied join order. Any
/// permutation of `0..cq.atoms.len()` is admissible — the evaluator scans
/// when probe variables are unbound — and every admissible order yields the
/// same witness *set* (enumeration order differs). Anything that is not a
/// permutation falls back to the planner's order. Exercised by the
/// plan-equivalence suite to pin answer/order independence.
pub fn for_each_witness_vids_ordered<F: Facts + ?Sized>(
    facts: &F,
    cq: &ConjunctiveQuery,
    mode: NullSemantics,
    order: &[usize],
    sink: &mut dyn FnMut(&VidBindings, &[Tid]) -> bool,
) {
    let n = cq.atoms.len();
    let planned;
    let order = {
        let mut seen = vec![false; n];
        let valid = order.len() == n
            && order.iter().all(|&i| match seen.get_mut(i) {
                Some(s) => !std::mem::replace(s, true),
                None => false,
            });
        if valid {
            order
        } else {
            planned = atom_order(facts, cq);
            planned.as_slice()
        }
    };

    // Resolve every atom constant to a vid once. A positive atom whose
    // constant the view has never stored (or, under SQL semantics, whose
    // constant is a null) can match nothing: the whole CQ is empty.
    let atom_vids: Vec<AtomVids> = cq
        .atoms
        .iter()
        .map(|a| resolve_atom_consts(facts, a, mode))
        .collect();
    if atom_vids.iter().any(|av| av.unmatchable) {
        return;
    }
    let neg_vids: Vec<AtomVids> = cq
        .negated
        .iter()
        .map(|a| resolve_atom_consts(facts, a, mode))
        .collect();

    // Probe planning: for each atom (in join order), collect *every*
    // position whose vid will be known when the atom is reached — constants
    // and variables bound by earlier atoms. Relations at or above the
    // threshold probe the base's cached multi-column hash index on those
    // positions, turning the scan into a bucket lookup (deleted tids
    // filtered, insert overlay unioned). Under SQL semantics null probe keys
    // bail out before the lookup, so nulls never join.
    use crate::plan::INDEX_THRESHOLD;
    let mut probe_cols: Vec<Vec<usize>> = vec![Vec::new(); cq.atoms.len()];
    {
        let mut bound: BTreeSet<Var> = BTreeSet::new();
        for &idx in order {
            let Some(atom) = cq.atoms.get(idx) else {
                continue;
            };
            if facts.relation_len(&atom.relation) >= INDEX_THRESHOLD {
                if let Some(slot) = probe_cols.get_mut(idx) {
                    *slot = atom
                        .terms
                        .iter()
                        .enumerate()
                        .filter_map(|(pos, t)| match t {
                            Term::Const(_) => Some(pos),
                            Term::Var(v) => bound.contains(v).then_some(pos),
                        })
                        .collect();
                }
            }
            bound.extend(atom.vars());
        }
    }

    struct Eval<'a, 'b, F: Facts + ?Sized> {
        facts: &'a F,
        cq: &'a ConjunctiveQuery,
        order: &'b [usize],
        probe_cols: &'b [Vec<usize>],
        atom_vids: &'b [AtomVids],
        neg_vids: &'b [AtomVids],
        mode: NullSemantics,
        /// Shared base indexes, one per indexed atom, cloned out of the
        /// base's cache on first use so recursion re-probes lock-free.
        indexes: Vec<Option<Arc<HashIndex>>>,
        /// Per-evaluation vid → value memo (point reads only): comparisons
        /// and witness emission resolve each distinct vid once per query
        /// instead of once per candidate row.
        resolve_cache: WordHashMap<Vid, Value>,
    }

    impl<'a, 'b, F: Facts + ?Sized> Eval<'a, 'b, F> {
        fn recurse(
            &mut self,
            depth: usize,
            bindings: &mut VidBindings,
            tids: &mut Vec<Tid>,
            sink: &mut dyn FnMut(&VidBindings, &[Tid]) -> bool,
        ) -> bool {
            let facts: &'a F = self.facts;
            if depth == self.order.len() {
                // All positive atoms matched: check filters.
                let cq = self.cq;
                let mode = self.mode;
                {
                    let cache = &mut self.resolve_cache;
                    for c in &cq.comparisons {
                        let mut resolve = |t: &Term| match t {
                            Term::Const(v) => Some(v.clone()),
                            Term::Var(v) => bindings
                                .get(*v)
                                .and_then(|vid| resolve_vid_cached(facts, vid, cache)),
                        };
                        match (resolve(&c.left), resolve(&c.right)) {
                            (Some(a), Some(b)) if mode.cmp(c.op, &a, &b) => {}
                            // Unbound comparison variables are a safety
                            // violation; treat as failure rather than panic.
                            _ => return true,
                        }
                    }
                }
                for (neg, av) in self.cq.negated.iter().zip(self.neg_vids) {
                    if atom_has_match_vids(facts, neg, av, bindings, self.mode) {
                        return true;
                    }
                }
                // Emission: hand over the id-space assignment as-is.
                return sink(bindings, tids);
            }
            let atom_idx = self.order[depth];
            let atom: &'a Atom = &self.cq.atoms[atom_idx];
            let av: &'b AtomVids = &self.atom_vids[atom_idx];
            let cols: &'b [usize] = &self.probe_cols[atom_idx];
            // Candidate rows: the probe bucket if indexed, else a scan.
            let bucket: Option<Vec<(Tid, VidRow<'a>)>> = if cols.is_empty() {
                None
            } else {
                let key: Option<Vec<Vid>> = cols
                    .iter()
                    .map(|&pos| match &atom.terms[pos] {
                        Term::Const(_) => av.consts.get(pos).copied().flatten(),
                        Term::Var(v) => bindings.get(*v),
                    })
                    .collect();
                match key {
                    Some(key) => {
                        if self.mode == NullSemantics::Sql
                            && key.iter().any(|&k| facts.vid_is_null(k))
                        {
                            return true; // null never joins: no matches
                        }
                        if self.indexes[atom_idx].is_none() {
                            self.indexes[atom_idx] = facts.base().hash_index(&atom.relation, cols);
                        }
                        match self.indexes[atom_idx]
                            .clone()
                            .zip(facts.base().relation(&atom.relation))
                        {
                            Some((index, rel)) => {
                                let store = rel.store();
                                let mut pairs: Vec<(Tid, VidRow<'a>)> = Vec::new();
                                for &pos in index.rows_for(&key) {
                                    let pos = pos as usize;
                                    let Some(tid) = store.tid_at(pos) else {
                                        continue;
                                    };
                                    if facts.is_deleted(tid) {
                                        continue;
                                    }
                                    if let Some(row) = store.row(pos) {
                                        pairs.push((tid, row));
                                    }
                                }
                                // Overlay rows are few: let the full match in
                                // `step` filter them instead of pre-probing.
                                for (tid, row) in facts.overlay_rows(&atom.relation) {
                                    pairs.push((*tid, VidRow::Slice(row)));
                                }
                                Some(pairs)
                            }
                            None => None, // base lacks the relation: scan
                        }
                    }
                    None => None, // probe var unbound at runtime: scan
                }
            };

            let step = |tid: Tid,
                        row: &VidRow<'_>,
                        this: &mut Self,
                        bindings: &mut VidBindings,
                        tids: &mut Vec<Tid>,
                        sink: &mut dyn FnMut(&VidBindings, &[Tid]) -> bool|
             -> bool {
                if let Some(newly) = match_atom_vids(facts, atom, av, row, bindings, this.mode) {
                    if let Some(t) = tids.get_mut(atom_idx) {
                        *t = tid;
                    }
                    let pruned = this.cq.comparisons.iter().any(|c| {
                        matches!(
                            try_comparison_vids(c, facts, bindings, this.mode),
                            Some(false)
                        )
                    });
                    let keep_going = if pruned {
                        true
                    } else {
                        this.recurse(depth + 1, bindings, tids, sink)
                    };
                    for v in newly {
                        bindings.unset(v);
                    }
                    keep_going
                } else {
                    true
                }
            };

            match bucket {
                Some(pairs) => {
                    for (tid, row) in pairs {
                        if !step(tid, &row, self, bindings, tids, sink) {
                            return false;
                        }
                    }
                }
                None => {
                    for (tid, row) in facts.vid_rows(&atom.relation) {
                        if !step(tid, &row, self, bindings, tids, sink) {
                            return false;
                        }
                    }
                }
            }
            true
        }
    }

    let mut eval = Eval {
        facts,
        cq,
        order,
        probe_cols: &probe_cols,
        atom_vids: &atom_vids,
        neg_vids: &neg_vids,
        mode,
        indexes: vec![None; cq.atoms.len()],
        resolve_cache: WordHashMap::default(),
    };
    let mut bindings = VidBindings::new(cq.vars.len());
    let mut tids: Vec<Tid> = vec![Tid(0); cq.atoms.len()];
    eval.recurse(0, &mut bindings, &mut tids, sink);
}

/// All witnesses of `cq` over the visible facts.
pub fn witnesses<F: Facts + ?Sized>(
    facts: &F,
    cq: &ConjunctiveQuery,
    mode: NullSemantics,
) -> Vec<Witness> {
    let mut out = Vec::new();
    for_each_witness(facts, cq, mode, &mut |w| {
        out.push(w.clone());
        true
    });
    out
}

/// Evaluate a conjunctive query: the set of answer tuples.
///
/// A Boolean query returns either the empty set (false) or the set containing
/// the empty tuple (true); see [`holds`].
pub fn eval_cq<F: Facts + ?Sized>(
    facts: &F,
    cq: &ConjunctiveQuery,
    mode: NullSemantics,
) -> BTreeSet<Tuple> {
    // Deduplicate answers in id space: a witness contributes only its head
    // variables' vids (word-sized; vid equality is value equality), so no
    // witness touches the dictionary. Values reappear below, once per
    // *distinct* answer — resolve, then sort into the output set, so the
    // order is the resolved tuples' Value order, never the id order.
    let mut distinct: BTreeSet<Vec<Vid>> = BTreeSet::new();
    for_each_witness_vids(facts, cq, mode, &mut |bindings, _| {
        let mut key = Vec::with_capacity(cq.head.len());
        for t in &cq.head {
            if let Term::Var(v) = t {
                match bindings.get(*v) {
                    Some(vid) => key.push(vid),
                    None => return true, // unbound head var: no projection
                }
            }
        }
        distinct.insert(key);
        true
    });
    resolve_distinct_answers(facts, cq, &distinct)
}

/// Resolve deduplicated id-space answer keys into value-space tuples.
fn resolve_distinct_answers<F: Facts + ?Sized>(
    facts: &F,
    cq: &ConjunctiveQuery,
    distinct: &BTreeSet<Vec<Vid>>,
) -> BTreeSet<Tuple> {
    let mut cache: WordHashMap<Vid, Value> = WordHashMap::default();
    let mut out = BTreeSet::new();
    'answers: for key in distinct {
        let mut vals = Vec::with_capacity(cq.head.len());
        let mut vids = key.iter();
        for t in &cq.head {
            match t {
                Term::Const(v) => vals.push(v.clone()),
                Term::Var(_) => {
                    let Some(&vid) = vids.next() else {
                        continue 'answers;
                    };
                    let Some(v) = resolve_vid_cached(facts, vid, &mut cache) else {
                        continue 'answers; // dangling vid: drop the answer
                    };
                    vals.push(v);
                }
            }
        }
        out.insert(Tuple::new(vals));
    }
    out
}

/// [`eval_cq`] under a caller-supplied join order (see
/// [`for_each_witness_vids_ordered`] for admissibility). The answer set is
/// identical for every admissible order; only evaluation cost varies.
pub fn eval_cq_ordered<F: Facts + ?Sized>(
    facts: &F,
    cq: &ConjunctiveQuery,
    mode: NullSemantics,
    order: &[usize],
) -> BTreeSet<Tuple> {
    let mut distinct: BTreeSet<Vec<Vid>> = BTreeSet::new();
    for_each_witness_vids_ordered(facts, cq, mode, order, &mut |bindings, _| {
        let mut key = Vec::with_capacity(cq.head.len());
        for t in &cq.head {
            if let Term::Var(v) = t {
                match bindings.get(*v) {
                    Some(vid) => key.push(vid),
                    None => return true,
                }
            }
        }
        distinct.insert(key);
        true
    });
    resolve_distinct_answers(facts, cq, &distinct)
}

/// Evaluate a union of conjunctive queries.
pub fn eval_ucq<F: Facts + ?Sized>(
    facts: &F,
    q: &UnionQuery,
    mode: NullSemantics,
) -> BTreeSet<Tuple> {
    let mut out = BTreeSet::new();
    for cq in &q.disjuncts {
        out.extend(eval_cq(facts, cq, mode));
    }
    out
}

/// Does a Boolean CQ hold? (Stops at the first witness.)
pub fn holds<F: Facts + ?Sized>(facts: &F, cq: &ConjunctiveQuery, mode: NullSemantics) -> bool {
    let mut found = false;
    for_each_witness_vids(facts, cq, mode, &mut |_, _| {
        found = true;
        false
    });
    found
}

/// Does a Boolean UCQ hold?
pub fn holds_ucq<F: Facts + ?Sized>(facts: &F, q: &UnionQuery, mode: NullSemantics) -> bool {
    q.disjuncts.iter().any(|cq| holds(facts, cq, mode))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use cqa_relation::{tuple, Database, RelationSchema};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new(
            "Supply",
            ["Company", "Receiver", "Item"],
        ))
        .unwrap();
        db.create_relation(RelationSchema::new("Articles", ["Item"]))
            .unwrap();
        db.insert("Supply", tuple!["C1", "R1", "I1"]).unwrap();
        db.insert("Supply", tuple!["C2", "R2", "I2"]).unwrap();
        db.insert("Supply", tuple!["C2", "R1", "I3"]).unwrap();
        db.insert("Articles", tuple!["I1"]).unwrap();
        db.insert("Articles", tuple!["I2"]).unwrap();
        db
    }

    #[test]
    fn projection_query() {
        let q = parse_query("Q(z) :- Supply(x, y, z)").unwrap();
        let ans = eval_cq(&db(), &q, NullSemantics::Structural);
        let items: Vec<String> = ans.iter().map(|t| t.at(0).render().into_owned()).collect();
        assert_eq!(items, vec!["I1", "I2", "I3"]);
    }

    #[test]
    fn join_query_example_2_2() {
        // The rewritten query of Example 2.2 returns only I1, I2.
        let q = parse_query("Q(z) :- Supply(x, y, z), Articles(z)").unwrap();
        let ans = eval_cq(&db(), &q, NullSemantics::Structural);
        assert_eq!(ans.len(), 2);
        assert!(ans.contains(&tuple!["I1"]));
        assert!(ans.contains(&tuple!["I2"]));
    }

    #[test]
    fn negation_as_anti_join() {
        let q = parse_query("Q(z) :- Supply(x, y, z), not Articles(z)").unwrap();
        let ans = eval_cq(&db(), &q, NullSemantics::Structural);
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&tuple!["I3"]));
    }

    #[test]
    fn comparisons_filter() {
        let mut d = Database::new();
        d.create_relation(RelationSchema::new("N", ["V"])).unwrap();
        for i in 0..10 {
            d.insert("N", tuple![i]).unwrap();
        }
        let q = parse_query("Q(x) :- N(x), x >= 7").unwrap();
        let ans = eval_cq(&d, &q, NullSemantics::Structural);
        assert_eq!(ans.len(), 3);
    }

    #[test]
    fn boolean_query_short_circuits() {
        let q = parse_query("Q() :- Supply(x, y, z)").unwrap();
        assert!(holds(&db(), &q, NullSemantics::Structural));
        let q2 = parse_query("Q() :- Supply(x, y, 'nope')").unwrap();
        assert!(!holds(&db(), &q2, NullSemantics::Structural));
    }

    #[test]
    fn witnesses_carry_tids() {
        let q = parse_query("Q(z) :- Supply(x, y, z), Articles(z)").unwrap();
        let ws = witnesses(&db(), &q, NullSemantics::Structural);
        assert_eq!(ws.len(), 2);
        for w in &ws {
            assert_eq!(w.tids.len(), 2);
        }
        // tids are in atom order: Supply tid first, Articles tid second.
        let first = &ws[0];
        assert!(first.tids[0].0 <= 3);
        assert!(first.tids[1].0 >= 4);
    }

    #[test]
    fn repeated_variable_forces_join() {
        let mut d = Database::new();
        d.create_relation(RelationSchema::new("R", ["A", "B"]))
            .unwrap();
        d.insert("R", tuple!["a", "a"]).unwrap();
        d.insert("R", tuple!["a", "b"]).unwrap();
        let q = parse_query("Q(x) :- R(x, x)").unwrap();
        let ans = eval_cq(&d, &q, NullSemantics::Structural);
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&tuple!["a"]));
    }

    #[test]
    fn sql_mode_nulls_never_join() {
        let mut d = Database::new();
        d.create_relation(RelationSchema::new("R", ["A", "B"]))
            .unwrap();
        d.create_relation(RelationSchema::new("S", ["A"])).unwrap();
        d.insert("R", Tuple::new(vec![Value::str("a"), Value::NULL]))
            .unwrap();
        d.insert("S", Tuple::new(vec![Value::NULL])).unwrap();
        // Join on the null value fails under SQL semantics…
        let q = parse_query("Q(x) :- R(x, y), S(y)").unwrap();
        assert!(eval_cq(&d, &q, NullSemantics::Sql).is_empty());
        // …but succeeds structurally (labels equal).
        assert_eq!(eval_cq(&d, &q, NullSemantics::Structural).len(), 1);
        // Repeated variable on a null also fails in SQL mode.
        let q2 = parse_query("Q() :- R(x, y), S(z), y = z").unwrap();
        assert!(!holds(&d, &q2, NullSemantics::Sql));
    }

    #[test]
    fn missing_relation_means_no_matches() {
        let q = parse_query("Q(x) :- Nothing(x)").unwrap();
        assert!(eval_cq(&db(), &q, NullSemantics::Structural).is_empty());
    }

    #[test]
    fn union_query() {
        let a = parse_query("Q(z) :- Articles(z)").unwrap();
        let b = parse_query("Q(z) :- Supply(x, y, z)").unwrap();
        let u = UnionQuery {
            disjuncts: vec![a, b],
        };
        let ans = eval_ucq(&db(), &u, NullSemantics::Structural);
        assert_eq!(ans.len(), 3);
        assert!(holds_ucq(&db(), &u, NullSemantics::Structural));
    }

    #[test]
    fn constants_in_head() {
        let q = parse_query("Q('tag', z) :- Articles(z)").unwrap();
        let ans = eval_cq(&db(), &q, NullSemantics::Structural);
        assert!(ans.contains(&tuple!["tag", "I1"]));
    }
}

#[cfg(test)]
mod index_tests {
    //! The probe-index fast path only engages for relations with ≥ 32
    //! tuples; these tests cross-check it against a naive nested-loop
    //! reference on instances big enough to trigger it.

    use super::*;
    use crate::parser::parse_query;
    use cqa_relation::{tuple, Database, RelationSchema};

    fn big_db(n: usize) -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("R", ["A", "B"]))
            .unwrap();
        db.create_relation(RelationSchema::new("S", ["B", "C"]))
            .unwrap();
        for i in 0..n as i64 {
            db.insert("R", tuple![i % 17, i]).unwrap();
            db.insert("S", tuple![i, i % 13]).unwrap();
        }
        db
    }

    /// Naive reference: nested loops, no ordering heuristics, no indexes.
    fn reference_join(db: &Database, mode: NullSemantics) -> BTreeSet<Tuple> {
        let r = db.relation("R").unwrap();
        let s = db.relation("S").unwrap();
        let mut out = BTreeSet::new();
        for (_, tr) in r.iter() {
            for (_, ts) in s.iter() {
                if mode.values_join(tr.at(1), ts.at(0)) {
                    out.insert(Tuple::new(vec![tr.at(0).clone(), ts.at(1).clone()]));
                }
            }
        }
        out
    }

    #[test]
    fn indexed_join_matches_nested_loop_reference() {
        let db = big_db(120); // well above INDEX_THRESHOLD
        let q = parse_query("Q(a, c) :- R(a, b), S(b, c)").unwrap();
        for mode in [NullSemantics::Structural, NullSemantics::Sql] {
            let fast = eval_cq(&db, &q, mode);
            let slow = reference_join(&db, mode);
            assert_eq!(fast, slow);
            assert_eq!(fast.len(), slow.len());
        }
    }

    #[test]
    fn indexed_join_with_nulls_under_sql_semantics() {
        let mut db = big_db(80);
        // Null join keys on both sides: must never match in SQL mode.
        db.insert("R", Tuple::new(vec![Value::int(999), Value::NULL]))
            .unwrap();
        db.insert("S", Tuple::new(vec![Value::NULL, Value::int(999)]))
            .unwrap();
        let q = parse_query("Q(a, c) :- R(a, b), S(b, c)").unwrap();
        let fast = eval_cq(&db, &q, NullSemantics::Sql);
        let slow = reference_join(&db, NullSemantics::Sql);
        assert_eq!(fast, slow);
        assert!(!fast.iter().any(|t| t.at(0) == &Value::int(999)));
        // Structurally the two nulls have equal labels (both 0) and join.
        let structural = eval_cq(&db, &q, NullSemantics::Structural);
        assert!(structural.iter().any(|t| t.at(0) == &Value::int(999)));
    }

    #[test]
    fn indexed_constant_probe() {
        let db = big_db(200);
        let q = parse_query("Q(b) :- R(3, b)").unwrap();
        let ans = eval_cq(&db, &q, NullSemantics::Structural);
        // i % 17 == 3 for i in 0..200.
        let expected: BTreeSet<Tuple> = (0..200i64)
            .filter(|i| i % 17 == 3)
            .map(|i| tuple![i])
            .collect();
        assert_eq!(ans, expected);
    }

    #[test]
    fn early_exit_with_index() {
        let db = big_db(100);
        let q = parse_query("Q() :- R(a, b), S(b, c)").unwrap();
        assert!(holds(&db, &q, NullSemantics::Structural));
        let q2 = parse_query("Q() :- R(a, b), S(b, 'nothing')").unwrap();
        assert!(!holds(&db, &q2, NullSemantics::Structural));
    }

    #[test]
    fn witnesses_through_the_index_carry_correct_tids() {
        let db = big_db(64);
        let q = parse_query("Q(a) :- R(a, b), S(b, c)").unwrap();
        let mut count = 0usize;
        for_each_witness(&db, &q, NullSemantics::Structural, &mut |w| {
            // Verify the tids really point at matching tuples.
            let (rel_r, tr) = db.get(w.tids[0]).unwrap();
            let (rel_s, ts) = db.get(w.tids[1]).unwrap();
            assert_eq!(rel_r, "R");
            assert_eq!(rel_s, "S");
            assert_eq!(tr.at(1), ts.at(0));
            count += 1;
            true
        });
        assert_eq!(count, 64); // each R row joins exactly its S twin
    }
}
