//! Evaluation of conjunctive queries (with safe negation and comparisons)
//! and unions thereof, with optional witness (provenance) extraction.
//!
//! The evaluator is a straightforward bind-and-filter join with a greedy atom
//! order (most-bound, smallest-relation first). Per-atom hash probes use the
//! base instance's *shared* one-column index cache ([`cqa_relation::Database::column_index`])
//! when a probe position is bound; otherwise the relation is scanned. This is
//! comfortably fast for the instance sizes the benchmarks sweep (10⁴–10⁵
//! tuples) and keeps the code honest and auditable, which matters more here:
//! repairs and CQA are *defined* in terms of query answers, so the evaluator
//! is the trusted base of the whole workspace.
//!
//! Every entry point is generic over [`Facts`], so the same code path
//! evaluates plain [`cqa_relation::Database`]s and zero-clone [`cqa_relation::DeltaView`]
//! repair views: indexed probes hit the base's cached buckets, filter deleted
//! tids, and union the insert overlay.

use crate::ast::{Atom, Comparison, ConjunctiveQuery, Term, UnionQuery, Var};
use cqa_relation::{sql_eq, ColumnIndex, Facts, Tid, Truth, Tuple, Value};
use std::collections::BTreeSet;
use std::sync::Arc;

/// How nulls behave during matching (see `cqa-relation::value`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NullSemantics {
    /// Nulls are ordinary constants: `NULL = NULL` holds (label-wise). The
    /// right choice for null-free instances and for model-theoretic checks.
    #[default]
    Structural,
    /// SQL three-valued semantics: a comparison or join involving any null is
    /// *unknown* and therefore never satisfied. The right choice when
    /// querying null-based repairs (§4.2–4.3 of the paper).
    Sql,
}

impl NullSemantics {
    /// Can `a` be considered equal to `b` for joining/selection?
    #[inline]
    pub fn values_join(self, a: &Value, b: &Value) -> bool {
        match self {
            NullSemantics::Structural => a == b,
            NullSemantics::Sql => sql_eq(a, b) == Truth::True,
        }
    }

    /// Evaluate a comparison under this semantics.
    pub fn cmp(self, op: crate::ast::CmpOp, a: &Value, b: &Value) -> bool {
        match self {
            NullSemantics::Structural => op.eval(a, b),
            NullSemantics::Sql => {
                if a.is_null() || b.is_null() {
                    false
                } else {
                    op.eval(a, b)
                }
            }
        }
    }
}

/// A partial assignment of values to a query's variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bindings {
    slots: Vec<Option<Value>>,
}

impl Bindings {
    /// All-unbound assignment for `n_vars` variables.
    pub fn new(n_vars: usize) -> Bindings {
        Bindings {
            slots: vec![None; n_vars],
        }
    }

    /// Value bound to `v`, if any.
    pub fn get(&self, v: Var) -> Option<&Value> {
        self.slots.get(v.0 as usize).and_then(Option::as_ref)
    }

    /// Bind `v` (overwrites).
    pub fn set(&mut self, v: Var, value: Value) {
        let i = v.0 as usize;
        if i >= self.slots.len() {
            self.slots.resize(i + 1, None);
        }
        self.slots[i] = Some(value);
    }

    /// Unbind `v`.
    pub fn unset(&mut self, v: Var) {
        if let Some(slot) = self.slots.get_mut(v.0 as usize) {
            *slot = None;
        }
    }

    /// Resolve a term to a value under this assignment.
    pub fn resolve(&self, term: &Term) -> Option<Value> {
        match term {
            Term::Const(v) => Some(v.clone()),
            Term::Var(v) => self.get(*v).cloned(),
        }
    }

    /// Project the given head terms into an answer tuple. `None` if some head
    /// variable is unbound.
    pub fn project(&self, head: &[Term]) -> Option<Tuple> {
        head.iter()
            .map(|t| self.resolve(t))
            .collect::<Option<Vec<_>>>()
            .map(Tuple::new)
    }
}

/// One satisfying assignment of a CQ's positive body: the answer projection
/// plus the tids of the matched atoms (in atom order). This is the
/// "violation witness" used to build conflict hyper-graphs, and the
/// "explanation witness" used by causality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// Full variable assignment.
    pub bindings: Bindings,
    /// Matched tuple ids, one per positive atom, in the query's atom order.
    pub tids: Vec<Tid>,
}

/// Try to extend `bindings` by matching `atom` against `tuple`.
///
/// Returns the list of variables newly bound on success so the caller can
/// backtrack cheaply.
pub fn match_atom(
    atom: &Atom,
    tuple: &Tuple,
    bindings: &mut Bindings,
    mode: NullSemantics,
) -> Option<Vec<Var>> {
    debug_assert_eq!(atom.terms.len(), tuple.arity());
    let mut newly = Vec::new();
    for (term, value) in atom.terms.iter().zip(tuple.iter()) {
        match term {
            Term::Const(c) => {
                if !mode.values_join(c, value) {
                    for v in newly {
                        bindings.unset(v);
                    }
                    return None;
                }
            }
            Term::Var(v) => match bindings.get(*v) {
                Some(bound) => {
                    if !mode.values_join(bound, value) {
                        for v in newly {
                            bindings.unset(v);
                        }
                        return None;
                    }
                }
                None => {
                    bindings.set(*v, value.clone());
                    newly.push(*v);
                }
            },
        }
    }
    Some(newly)
}

/// Does any visible tuple match `atom` under `bindings`? (Used for negation.)
fn atom_has_match<F: Facts + ?Sized>(
    facts: &F,
    atom: &Atom,
    bindings: &Bindings,
    mode: NullSemantics,
) -> bool {
    // Fast path: fully bound atom with structural semantics → hash probe.
    if mode == NullSemantics::Structural {
        if let Some(values) = atom
            .terms
            .iter()
            .map(|t| bindings.resolve(t))
            .collect::<Option<Vec<_>>>()
        {
            return facts.contains_fact(&atom.relation, &Tuple::new(values));
        }
    }
    let mut scratch = bindings.clone();
    facts.facts_in(&atom.relation).any(|(_, t)| {
        if let Some(newly) = match_atom(atom, t, &mut scratch, mode) {
            for v in newly {
                scratch.unset(v);
            }
            true
        } else {
            false
        }
    })
}

/// Evaluate a comparison once both sides are bound; `None` if not yet bound.
fn try_comparison(c: &Comparison, bindings: &Bindings, mode: NullSemantics) -> Option<bool> {
    let a = bindings.resolve(&c.left)?;
    let b = bindings.resolve(&c.right)?;
    Some(mode.cmp(c.op, &a, &b))
}

/// Pick a greedy join order: repeatedly choose the atom with the most terms
/// bound so far, breaking ties by smaller relation.
fn atom_order<F: Facts + ?Sized>(facts: &F, cq: &ConjunctiveQuery) -> Vec<usize> {
    let n = cq.atoms.len();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    let mut bound: BTreeSet<Var> = BTreeSet::new();
    while let Some((pos, &best)) = remaining.iter().enumerate().max_by_key(|(_, &i)| {
        let atom = &cq.atoms[i];
        let bound_terms = atom
            .terms
            .iter()
            .filter(|t| match t {
                Term::Const(_) => true,
                Term::Var(v) => bound.contains(v),
            })
            .count();
        let size = facts.relation_len(&atom.relation);
        (bound_terms, std::cmp::Reverse(size))
    }) {
        order.push(best);
        bound.extend(cq.atoms[best].vars());
        remaining.swap_remove(pos);
    }
    order
}

/// Evaluate the positive part of `cq` and call `sink` for every witness that
/// also passes the comparisons and negated atoms.
///
/// `sink` returns `true` to continue enumeration, `false` to stop early
/// (used by Boolean queries).
pub fn for_each_witness<F: Facts + ?Sized>(
    facts: &F,
    cq: &ConjunctiveQuery,
    mode: NullSemantics,
    sink: &mut dyn FnMut(&Witness) -> bool,
) {
    let order = atom_order(facts, cq);

    // Probe planning: for each atom (in join order), pick one position whose
    // value will be known when the atom is reached — a constant, or a
    // variable bound by an earlier atom. Relations larger than the threshold
    // probe the base's cached one-column hash index on that position, turning
    // the scan into a bucket lookup (deleted tids filtered, insert overlay
    // unioned). Under SQL semantics null probe keys bail out before the
    // lookup, so nulls never join.
    const INDEX_THRESHOLD: usize = 32;
    let mut probe_pos: Vec<Option<usize>> = vec![None; cq.atoms.len()];
    {
        let mut bound: BTreeSet<Var> = BTreeSet::new();
        for &idx in &order {
            let atom = &cq.atoms[idx];
            if facts.relation_len(&atom.relation) >= INDEX_THRESHOLD {
                probe_pos[idx] = atom.terms.iter().position(|t| match t {
                    Term::Const(c) => !c.is_null() || mode == NullSemantics::Structural,
                    Term::Var(v) => bound.contains(v),
                });
            }
            bound.extend(atom.vars());
        }
    }

    struct Eval<'a, 'b, F: Facts + ?Sized> {
        facts: &'a F,
        cq: &'a ConjunctiveQuery,
        order: &'b [usize],
        probe_pos: &'b [Option<usize>],
        mode: NullSemantics,
        /// Shared base indexes, one per indexed atom, cloned out of the
        /// base's cache on first use so recursion re-probes lock-free.
        indexes: Vec<Option<Arc<ColumnIndex>>>,
    }

    impl<'a, F: Facts + ?Sized> Eval<'a, '_, F> {
        fn recurse(
            &mut self,
            depth: usize,
            bindings: &mut Bindings,
            tids: &mut Vec<Tid>,
            sink: &mut dyn FnMut(&Witness) -> bool,
        ) -> bool {
            if depth == self.order.len() {
                // All positive atoms matched: check filters.
                for c in &self.cq.comparisons {
                    match try_comparison(c, bindings, self.mode) {
                        Some(true) => {}
                        // Unbound comparison variables are a safety
                        // violation; treat as failure rather than panic.
                        Some(false) | None => return true,
                    }
                }
                for neg in &self.cq.negated {
                    if atom_has_match(self.facts, neg, bindings, self.mode) {
                        return true;
                    }
                }
                let witness = Witness {
                    bindings: bindings.clone(),
                    tids: tids.clone(),
                };
                return sink(&witness);
            }
            let atom_idx = self.order[depth];
            // Clone the atom (cheap: `Arc<str>` terms) so the `step` closure
            // below can re-borrow `self` mutably; copy the `&'a F` out so the
            // fact borrows outlive `self`'s re-borrows.
            let atom = self.cq.atoms[atom_idx].clone();
            let facts: &'a F = self.facts;
            // Candidate tuples: the probe bucket if indexed, else a scan.
            let bucket: Option<Vec<(Tid, &'a Tuple)>> = match self.probe_pos[atom_idx] {
                Some(pos) => match bindings.resolve(&atom.terms[pos]) {
                    Some(key) => {
                        if self.mode == NullSemantics::Sql && key.is_null() {
                            return true; // null never joins: no matches
                        }
                        if self.indexes[atom_idx].is_none() {
                            self.indexes[atom_idx] = facts.base().column_index(&atom.relation, pos);
                        }
                        // `column_index` only returns an index for a
                        // relation the base actually has, so the lookup
                        // cannot miss; fall back to a scan if it ever did.
                        match self.indexes[atom_idx]
                            .clone()
                            .zip(facts.base().relation(&atom.relation))
                        {
                            Some((index, rel)) => {
                                let mut pairs: Vec<(Tid, &'a Tuple)> = Vec::new();
                                if let Some(hits) = index.get(&key) {
                                    for &tid in hits {
                                        if facts.is_deleted(tid) {
                                            continue;
                                        }
                                        if let Some(t) = rel.get(tid) {
                                            pairs.push((tid, t));
                                        }
                                    }
                                }
                                for (tid, t) in facts.overlay_of(&atom.relation) {
                                    let v = t.at(pos);
                                    if self.mode == NullSemantics::Sql && v.is_null() {
                                        continue;
                                    }
                                    if *v == key {
                                        pairs.push((*tid, t));
                                    }
                                }
                                Some(pairs)
                            }
                            None => None, // base lacks the relation: scan
                        }
                    }
                    None => None, // probe var unbound at runtime: scan
                },
                None => None,
            };

            let step = |tid: Tid,
                        tuple: &Tuple,
                        this: &mut Self,
                        bindings: &mut Bindings,
                        tids: &mut Vec<Tid>,
                        sink: &mut dyn FnMut(&Witness) -> bool|
             -> bool {
                if let Some(newly) = match_atom(&atom, tuple, bindings, this.mode) {
                    tids[atom_idx] = tid;
                    let pruned = this
                        .cq
                        .comparisons
                        .iter()
                        .any(|c| matches!(try_comparison(c, bindings, this.mode), Some(false)));
                    let keep_going = if pruned {
                        true
                    } else {
                        this.recurse(depth + 1, bindings, tids, sink)
                    };
                    for v in newly {
                        bindings.unset(v);
                    }
                    keep_going
                } else {
                    true
                }
            };

            match bucket {
                Some(pairs) => {
                    for (tid, tuple) in pairs {
                        if !step(tid, tuple, self, bindings, tids, sink) {
                            return false;
                        }
                    }
                }
                None => {
                    for (tid, tuple) in facts.facts_in(&atom.relation) {
                        if !step(tid, tuple, self, bindings, tids, sink) {
                            return false;
                        }
                    }
                }
            }
            true
        }
    }

    let mut eval = Eval {
        facts,
        cq,
        order: &order,
        probe_pos: &probe_pos,
        mode,
        indexes: vec![None; cq.atoms.len()],
    };
    let mut bindings = Bindings::new(cq.vars.len());
    let mut tids: Vec<Tid> = vec![Tid(0); cq.atoms.len()];
    eval.recurse(0, &mut bindings, &mut tids, sink);
}

/// All witnesses of `cq` over the visible facts.
pub fn witnesses<F: Facts + ?Sized>(
    facts: &F,
    cq: &ConjunctiveQuery,
    mode: NullSemantics,
) -> Vec<Witness> {
    let mut out = Vec::new();
    for_each_witness(facts, cq, mode, &mut |w| {
        out.push(w.clone());
        true
    });
    out
}

/// Evaluate a conjunctive query: the set of answer tuples.
///
/// A Boolean query returns either the empty set (false) or the set containing
/// the empty tuple (true); see [`holds`].
pub fn eval_cq<F: Facts + ?Sized>(
    facts: &F,
    cq: &ConjunctiveQuery,
    mode: NullSemantics,
) -> BTreeSet<Tuple> {
    let mut out = BTreeSet::new();
    for_each_witness(facts, cq, mode, &mut |w| {
        if let Some(t) = w.bindings.project(&cq.head) {
            out.insert(t);
        }
        true
    });
    out
}

/// Evaluate a union of conjunctive queries.
pub fn eval_ucq<F: Facts + ?Sized>(
    facts: &F,
    q: &UnionQuery,
    mode: NullSemantics,
) -> BTreeSet<Tuple> {
    let mut out = BTreeSet::new();
    for cq in &q.disjuncts {
        out.extend(eval_cq(facts, cq, mode));
    }
    out
}

/// Does a Boolean CQ hold? (Stops at the first witness.)
pub fn holds<F: Facts + ?Sized>(facts: &F, cq: &ConjunctiveQuery, mode: NullSemantics) -> bool {
    let mut found = false;
    for_each_witness(facts, cq, mode, &mut |_| {
        found = true;
        false
    });
    found
}

/// Does a Boolean UCQ hold?
pub fn holds_ucq<F: Facts + ?Sized>(facts: &F, q: &UnionQuery, mode: NullSemantics) -> bool {
    q.disjuncts.iter().any(|cq| holds(facts, cq, mode))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use cqa_relation::{tuple, Database, RelationSchema};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new(
            "Supply",
            ["Company", "Receiver", "Item"],
        ))
        .unwrap();
        db.create_relation(RelationSchema::new("Articles", ["Item"]))
            .unwrap();
        db.insert("Supply", tuple!["C1", "R1", "I1"]).unwrap();
        db.insert("Supply", tuple!["C2", "R2", "I2"]).unwrap();
        db.insert("Supply", tuple!["C2", "R1", "I3"]).unwrap();
        db.insert("Articles", tuple!["I1"]).unwrap();
        db.insert("Articles", tuple!["I2"]).unwrap();
        db
    }

    #[test]
    fn projection_query() {
        let q = parse_query("Q(z) :- Supply(x, y, z)").unwrap();
        let ans = eval_cq(&db(), &q, NullSemantics::Structural);
        let items: Vec<String> = ans.iter().map(|t| t.at(0).render().into_owned()).collect();
        assert_eq!(items, vec!["I1", "I2", "I3"]);
    }

    #[test]
    fn join_query_example_2_2() {
        // The rewritten query of Example 2.2 returns only I1, I2.
        let q = parse_query("Q(z) :- Supply(x, y, z), Articles(z)").unwrap();
        let ans = eval_cq(&db(), &q, NullSemantics::Structural);
        assert_eq!(ans.len(), 2);
        assert!(ans.contains(&tuple!["I1"]));
        assert!(ans.contains(&tuple!["I2"]));
    }

    #[test]
    fn negation_as_anti_join() {
        let q = parse_query("Q(z) :- Supply(x, y, z), not Articles(z)").unwrap();
        let ans = eval_cq(&db(), &q, NullSemantics::Structural);
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&tuple!["I3"]));
    }

    #[test]
    fn comparisons_filter() {
        let mut d = Database::new();
        d.create_relation(RelationSchema::new("N", ["V"])).unwrap();
        for i in 0..10 {
            d.insert("N", tuple![i]).unwrap();
        }
        let q = parse_query("Q(x) :- N(x), x >= 7").unwrap();
        let ans = eval_cq(&d, &q, NullSemantics::Structural);
        assert_eq!(ans.len(), 3);
    }

    #[test]
    fn boolean_query_short_circuits() {
        let q = parse_query("Q() :- Supply(x, y, z)").unwrap();
        assert!(holds(&db(), &q, NullSemantics::Structural));
        let q2 = parse_query("Q() :- Supply(x, y, 'nope')").unwrap();
        assert!(!holds(&db(), &q2, NullSemantics::Structural));
    }

    #[test]
    fn witnesses_carry_tids() {
        let q = parse_query("Q(z) :- Supply(x, y, z), Articles(z)").unwrap();
        let ws = witnesses(&db(), &q, NullSemantics::Structural);
        assert_eq!(ws.len(), 2);
        for w in &ws {
            assert_eq!(w.tids.len(), 2);
        }
        // tids are in atom order: Supply tid first, Articles tid second.
        let first = &ws[0];
        assert!(first.tids[0].0 <= 3);
        assert!(first.tids[1].0 >= 4);
    }

    #[test]
    fn repeated_variable_forces_join() {
        let mut d = Database::new();
        d.create_relation(RelationSchema::new("R", ["A", "B"]))
            .unwrap();
        d.insert("R", tuple!["a", "a"]).unwrap();
        d.insert("R", tuple!["a", "b"]).unwrap();
        let q = parse_query("Q(x) :- R(x, x)").unwrap();
        let ans = eval_cq(&d, &q, NullSemantics::Structural);
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&tuple!["a"]));
    }

    #[test]
    fn sql_mode_nulls_never_join() {
        let mut d = Database::new();
        d.create_relation(RelationSchema::new("R", ["A", "B"]))
            .unwrap();
        d.create_relation(RelationSchema::new("S", ["A"])).unwrap();
        d.insert("R", Tuple::new(vec![Value::str("a"), Value::NULL]))
            .unwrap();
        d.insert("S", Tuple::new(vec![Value::NULL])).unwrap();
        // Join on the null value fails under SQL semantics…
        let q = parse_query("Q(x) :- R(x, y), S(y)").unwrap();
        assert!(eval_cq(&d, &q, NullSemantics::Sql).is_empty());
        // …but succeeds structurally (labels equal).
        assert_eq!(eval_cq(&d, &q, NullSemantics::Structural).len(), 1);
        // Repeated variable on a null also fails in SQL mode.
        let q2 = parse_query("Q() :- R(x, y), S(z), y = z").unwrap();
        assert!(!holds(&d, &q2, NullSemantics::Sql));
    }

    #[test]
    fn missing_relation_means_no_matches() {
        let q = parse_query("Q(x) :- Nothing(x)").unwrap();
        assert!(eval_cq(&db(), &q, NullSemantics::Structural).is_empty());
    }

    #[test]
    fn union_query() {
        let a = parse_query("Q(z) :- Articles(z)").unwrap();
        let b = parse_query("Q(z) :- Supply(x, y, z)").unwrap();
        let u = UnionQuery {
            disjuncts: vec![a, b],
        };
        let ans = eval_ucq(&db(), &u, NullSemantics::Structural);
        assert_eq!(ans.len(), 3);
        assert!(holds_ucq(&db(), &u, NullSemantics::Structural));
    }

    #[test]
    fn constants_in_head() {
        let q = parse_query("Q('tag', z) :- Articles(z)").unwrap();
        let ans = eval_cq(&db(), &q, NullSemantics::Structural);
        assert!(ans.contains(&tuple!["tag", "I1"]));
    }
}

#[cfg(test)]
mod index_tests {
    //! The probe-index fast path only engages for relations with ≥ 32
    //! tuples; these tests cross-check it against a naive nested-loop
    //! reference on instances big enough to trigger it.

    use super::*;
    use crate::parser::parse_query;
    use cqa_relation::{tuple, Database, RelationSchema};

    fn big_db(n: usize) -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("R", ["A", "B"]))
            .unwrap();
        db.create_relation(RelationSchema::new("S", ["B", "C"]))
            .unwrap();
        for i in 0..n as i64 {
            db.insert("R", tuple![i % 17, i]).unwrap();
            db.insert("S", tuple![i, i % 13]).unwrap();
        }
        db
    }

    /// Naive reference: nested loops, no ordering heuristics, no indexes.
    fn reference_join(db: &Database, mode: NullSemantics) -> BTreeSet<Tuple> {
        let r = db.relation("R").unwrap();
        let s = db.relation("S").unwrap();
        let mut out = BTreeSet::new();
        for (_, tr) in r.iter() {
            for (_, ts) in s.iter() {
                if mode.values_join(tr.at(1), ts.at(0)) {
                    out.insert(Tuple::new(vec![tr.at(0).clone(), ts.at(1).clone()]));
                }
            }
        }
        out
    }

    #[test]
    fn indexed_join_matches_nested_loop_reference() {
        let db = big_db(120); // well above INDEX_THRESHOLD
        let q = parse_query("Q(a, c) :- R(a, b), S(b, c)").unwrap();
        for mode in [NullSemantics::Structural, NullSemantics::Sql] {
            let fast = eval_cq(&db, &q, mode);
            let slow = reference_join(&db, mode);
            assert_eq!(fast, slow);
            assert_eq!(fast.len(), slow.len());
        }
    }

    #[test]
    fn indexed_join_with_nulls_under_sql_semantics() {
        let mut db = big_db(80);
        // Null join keys on both sides: must never match in SQL mode.
        db.insert("R", Tuple::new(vec![Value::int(999), Value::NULL]))
            .unwrap();
        db.insert("S", Tuple::new(vec![Value::NULL, Value::int(999)]))
            .unwrap();
        let q = parse_query("Q(a, c) :- R(a, b), S(b, c)").unwrap();
        let fast = eval_cq(&db, &q, NullSemantics::Sql);
        let slow = reference_join(&db, NullSemantics::Sql);
        assert_eq!(fast, slow);
        assert!(!fast.iter().any(|t| t.at(0) == &Value::int(999)));
        // Structurally the two nulls have equal labels (both 0) and join.
        let structural = eval_cq(&db, &q, NullSemantics::Structural);
        assert!(structural.iter().any(|t| t.at(0) == &Value::int(999)));
    }

    #[test]
    fn indexed_constant_probe() {
        let db = big_db(200);
        let q = parse_query("Q(b) :- R(3, b)").unwrap();
        let ans = eval_cq(&db, &q, NullSemantics::Structural);
        // i % 17 == 3 for i in 0..200.
        let expected: BTreeSet<Tuple> = (0..200i64)
            .filter(|i| i % 17 == 3)
            .map(|i| tuple![i])
            .collect();
        assert_eq!(ans, expected);
    }

    #[test]
    fn early_exit_with_index() {
        let db = big_db(100);
        let q = parse_query("Q() :- R(a, b), S(b, c)").unwrap();
        assert!(holds(&db, &q, NullSemantics::Structural));
        let q2 = parse_query("Q() :- R(a, b), S(b, 'nothing')").unwrap();
        assert!(!holds(&db, &q2, NullSemantics::Structural));
    }

    #[test]
    fn witnesses_through_the_index_carry_correct_tids() {
        let db = big_db(64);
        let q = parse_query("Q(a) :- R(a, b), S(b, c)").unwrap();
        let mut count = 0usize;
        for_each_witness(&db, &q, NullSemantics::Structural, &mut |w| {
            // Verify the tids really point at matching tuples.
            let (rel_r, tr) = db.get(w.tids[0]).unwrap();
            let (rel_s, ts) = db.get(w.tids[1]).unwrap();
            assert_eq!(rel_r, "R");
            assert_eq!(rel_s, "S");
            assert_eq!(tr.at(1), ts.at(0));
            count += 1;
            true
        });
        assert_eq!(count, 64); // each R row joins exactly its S twin
    }
}
