//! Evaluation of first-order queries under active-domain semantics.
//!
//! The consistent-answer *rewritings* of the paper (Examples 2.2 and 3.4, and
//! the key-constraint rewritings of §3.2) are first-order but not conjunctive:
//! they contain `¬∃` subformulas. This module evaluates any [`FoQuery`] by
//! enumerating bindings from positive atoms wherever possible and falling
//! back to the active domain only when a subformula cannot generate bindings
//! (e.g. a negation over unbound variables). For the formulas the rewriters
//! emit, the fallback never triggers and evaluation is join-like.

use crate::ast::{Atom, Fo, FoQuery, Term, Var};
use crate::eval::{match_atom, Bindings, NullSemantics};
use cqa_relation::{Database, Tuple, Value};
use std::collections::BTreeSet;

/// Evaluation context: database, semantics, and the (lazily built) domain for
/// fallback enumeration.
struct Ctx<'a> {
    db: &'a Database,
    mode: NullSemantics,
    domain: Vec<Value>,
}

impl<'a> Ctx<'a> {
    fn new(db: &'a Database, mode: NullSemantics, q: &FoQuery) -> Ctx<'a> {
        let mut dom: BTreeSet<Value> = db.active_domain();
        collect_constants(&q.formula, &mut dom);
        Ctx {
            db,
            mode,
            domain: dom.into_iter().collect(),
        }
    }

    /// Is the closed-under-`binding` formula `fo` true?
    fn sat(&self, fo: &Fo, binding: &mut Bindings) -> bool {
        match fo {
            Fo::Atom(atom) => self.atom_matches(atom, binding),
            Fo::Cmp(c) => {
                let (Some(a), Some(b)) = (binding.resolve(&c.left), binding.resolve(&c.right))
                else {
                    return false; // unbound comparison: vacuously unsatisfied
                };
                self.mode.cmp(c.op, &a, &b)
            }
            Fo::And(parts) => parts.iter().all(|p| self.sat(p, binding)),
            Fo::Or(parts) => parts.iter().any(|p| self.sat(p, binding)),
            Fo::Not(g) => !self.sat(g, binding),
            Fo::Exists(vars, g) => {
                let mut found = false;
                self.enumerate(g, binding, &mut |_, b| {
                    found = true;
                    let _ = b;
                    false
                });
                // `enumerate` leaves `binding` untouched on return; but the
                // quantified vars may have leaked if they were already bound
                // outside — Exists shadows, so unbind defensively.
                for v in vars {
                    let _ = v;
                }
                found
            }
        }
    }

    fn atom_matches(&self, atom: &Atom, binding: &mut Bindings) -> bool {
        let Some(rel) = self.db.relation(&atom.relation) else {
            return false;
        };
        for (_, t) in rel.iter() {
            if let Some(newly) = match_atom(atom, t, binding, self.mode) {
                for v in newly {
                    binding.unset(v);
                }
                return true;
            }
        }
        false
    }

    /// Enumerate extensions of `binding` satisfying `fo`, invoking
    /// `sink(bound_vars, binding)` once per extension (with the extension
    /// applied to `binding`; it is rolled back afterwards). `sink` returns
    /// `false` to stop. Returns `false` if stopped early.
    fn enumerate(
        &self,
        fo: &Fo,
        binding: &mut Bindings,
        sink: &mut dyn FnMut(&BTreeSet<Var>, &mut Bindings) -> bool,
    ) -> bool {
        match fo {
            Fo::Atom(atom) => {
                let Some(rel) = self.db.relation(&atom.relation) else {
                    return true;
                };
                let vars: BTreeSet<Var> = atom.vars().collect();
                for (_, t) in rel.iter() {
                    if let Some(newly) = match_atom(atom, t, binding, self.mode) {
                        let go = sink(&vars, binding);
                        for v in newly {
                            binding.unset(v);
                        }
                        if !go {
                            return false;
                        }
                    }
                }
                true
            }
            Fo::Cmp(c) => {
                // An equality with exactly one unbound variable can generate.
                if c.op == crate::ast::CmpOp::Eq {
                    let lv = c.left.as_var().filter(|v| binding.get(*v).is_none());
                    let rv = c.right.as_var().filter(|v| binding.get(*v).is_none());
                    match (lv, rv, binding.resolve(&c.right), binding.resolve(&c.left)) {
                        (Some(v), None, Some(val), _) | (None, Some(v), _, Some(val)) => {
                            if self.mode == NullSemantics::Sql && val.is_null() {
                                return true;
                            }
                            binding.set(v, val);
                            let vars: BTreeSet<Var> = [v].into();
                            let go = sink(&vars, binding);
                            binding.unset(v);
                            return go;
                        }
                        _ => {}
                    }
                }
                // Otherwise it is a filter (or needs fallback).
                let unbound: Vec<Var> = fo
                    .free_vars()
                    .into_iter()
                    .filter(|v| binding.get(*v).is_none())
                    .collect();
                if unbound.is_empty() {
                    if self.sat(fo, binding) {
                        return sink(&BTreeSet::new(), binding);
                    }
                    return true;
                }
                self.domain_fallback(fo, &unbound, binding, sink)
            }
            Fo::And(parts) => self.enumerate_and(parts, binding, sink),
            Fo::Or(parts) => {
                for p in parts {
                    if !self.enumerate(p, binding, sink) {
                        return false;
                    }
                }
                true
            }
            Fo::Exists(vars, g) => {
                // Enumerate the body, then mask the quantified variables so
                // callers never observe them; dedupe is the caller's concern
                // (answers are collected into sets).
                self.enumerate(g, binding, &mut |bound, b| {
                    let visible: BTreeSet<Var> = bound
                        .iter()
                        .copied()
                        .filter(|v| !vars.contains(v))
                        .collect();
                    sink(&visible, b)
                })
            }
            Fo::Not(_) => {
                let unbound: Vec<Var> = fo
                    .free_vars()
                    .into_iter()
                    .filter(|v| binding.get(*v).is_none())
                    .collect();
                if unbound.is_empty() {
                    if self.sat(fo, binding) {
                        return sink(&BTreeSet::new(), binding);
                    }
                    return true;
                }
                self.domain_fallback(fo, &unbound, binding, sink)
            }
        }
    }

    /// Conjunction: repeatedly pick a conjunct that is fully bound (filter) or
    /// can generate (atom/equality/disjunction/quantifier); fall back to the
    /// active domain only if stuck.
    fn enumerate_and(
        &self,
        parts: &[Fo],
        binding: &mut Bindings,
        sink: &mut dyn FnMut(&BTreeSet<Var>, &mut Bindings) -> bool,
    ) -> bool {
        // Choose processing order once, greedily, by a static heuristic:
        // atoms first (generators), then equalities, then everything else;
        // filters are applied as soon as their variables are bound, which the
        // recursive driver below handles naturally.
        let mut order: Vec<&Fo> = parts.iter().collect();
        order.sort_by_key(|p| match p {
            Fo::Atom(_) => 0,
            Fo::Exists(_, _) => 1,
            Fo::Or(_) | Fo::And(_) => 2,
            Fo::Cmp(_) => 3,
            Fo::Not(_) => 4,
        });
        self.and_driver(&order, 0, binding, &mut BTreeSet::new(), sink)
    }

    fn and_driver(
        &self,
        order: &[&Fo],
        idx: usize,
        binding: &mut Bindings,
        bound_acc: &mut BTreeSet<Var>,
        sink: &mut dyn FnMut(&BTreeSet<Var>, &mut Bindings) -> bool,
    ) -> bool {
        if idx == order.len() {
            return sink(&bound_acc.clone(), binding);
        }
        let part = order[idx];
        // Fast path: fully bound conjunct is a filter.
        let unbound: Vec<Var> = part
            .free_vars()
            .into_iter()
            .filter(|v| binding.get(*v).is_none())
            .collect();
        if unbound.is_empty() {
            if self.sat(part, binding) {
                return self.and_driver(order, idx + 1, binding, bound_acc, sink);
            }
            return true;
        }
        let mut keep_going = true;
        self.enumerate(part, binding, &mut |bound, b| {
            let added: Vec<Var> = bound
                .iter()
                .copied()
                .filter(|v| bound_acc.insert(*v))
                .collect();
            keep_going = self.and_driver(order, idx + 1, b, bound_acc, sink);
            for v in added {
                bound_acc.remove(&v);
            }
            keep_going
        }) && keep_going
    }

    /// Enumerate `unbound` over the active domain, keeping assignments that
    /// satisfy `fo`. Exponential in `unbound.len()`; only reached for
    /// domain-dependent formulas.
    fn domain_fallback(
        &self,
        fo: &Fo,
        unbound: &[Var],
        binding: &mut Bindings,
        sink: &mut dyn FnMut(&BTreeSet<Var>, &mut Bindings) -> bool,
    ) -> bool {
        fn go(
            ctx: &Ctx<'_>,
            fo: &Fo,
            unbound: &[Var],
            depth: usize,
            binding: &mut Bindings,
            sink: &mut dyn FnMut(&BTreeSet<Var>, &mut Bindings) -> bool,
        ) -> bool {
            if depth == unbound.len() {
                if ctx.sat(fo, binding) {
                    let vars: BTreeSet<Var> = unbound.iter().copied().collect();
                    return sink(&vars, binding);
                }
                return true;
            }
            for val in &ctx.domain {
                binding.set(unbound[depth], val.clone());
                let go_on = go(ctx, fo, unbound, depth + 1, binding, sink);
                binding.unset(unbound[depth]);
                if !go_on {
                    return false;
                }
            }
            true
        }
        go(self, fo, unbound, 0, binding, sink)
    }
}

fn collect_constants(fo: &Fo, out: &mut BTreeSet<Value>) {
    match fo {
        Fo::Atom(a) => {
            for t in &a.terms {
                if let Term::Const(v) = t {
                    out.insert(v.clone());
                }
            }
        }
        Fo::Cmp(c) => {
            for t in [&c.left, &c.right] {
                if let Term::Const(v) = t {
                    out.insert(v.clone());
                }
            }
        }
        Fo::And(fs) | Fo::Or(fs) => fs.iter().for_each(|g| collect_constants(g, out)),
        Fo::Not(g) => collect_constants(g, out),
        Fo::Exists(_, g) => collect_constants(g, out),
    }
}

/// Evaluate an FO query: the set of answer tuples over its free variables.
pub fn eval_fo(db: &Database, q: &FoQuery, mode: NullSemantics) -> BTreeSet<Tuple> {
    let ctx = Ctx::new(db, mode, q);
    let mut out = BTreeSet::new();
    let mut binding = Bindings::new(
        q.vars
            .len()
            .max(q.free.iter().map(|v| v.0 as usize + 1).max().unwrap_or(0)),
    );
    if q.free.is_empty() {
        if ctx.sat(&q.formula, &mut binding) {
            out.insert(Tuple::new(Vec::new()));
        }
        return out;
    }
    ctx.enumerate(&q.formula, &mut binding, &mut |_, b| {
        let unbound: Vec<Var> = q
            .free
            .iter()
            .copied()
            .filter(|v| b.get(*v).is_none())
            .collect();
        if unbound.is_empty() {
            if let Some(t) = b.project(&q.free.iter().map(|v| Term::Var(*v)).collect::<Vec<_>>()) {
                out.insert(t);
            }
        } else {
            // Domain-dependent answer variables: expand over the domain,
            // keeping assignments under which the formula still holds.
            let mut scratch = b.clone();
            ctx.domain_fallback(&q.formula, &unbound, &mut scratch, &mut |_, b2| {
                if let Some(t) =
                    b2.project(&q.free.iter().map(|v| Term::Var(*v)).collect::<Vec<_>>())
                {
                    out.insert(t);
                }
                true
            });
        }
        true
    });
    out
}

/// Does a Boolean FO query hold?
pub fn holds_fo(db: &Database, q: &FoQuery, mode: NullSemantics) -> bool {
    debug_assert!(q.free.is_empty(), "holds_fo expects a Boolean query");
    let ctx = Ctx::new(db, mode, q);
    let mut binding = Bindings::new(q.vars.len());
    ctx.sat(&q.formula, &mut binding)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_fo, parse_query};
    use cqa_relation::{tuple, RelationSchema};

    fn employee_db() -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Employee", ["Name", "Salary"]))
            .unwrap();
        db.insert("Employee", tuple!["page", 5000]).unwrap();
        db.insert("Employee", tuple!["page", 8000]).unwrap();
        db.insert("Employee", tuple!["smith", 3000]).unwrap();
        db.insert("Employee", tuple!["stowe", 7000]).unwrap();
        db
    }

    #[test]
    fn example_3_4_rewriting_returns_consistent_answers() {
        // Q'(x, y): Employee(x, y) ∧ ¬∃z(Employee(x, z) ∧ z ≠ y)
        let q = parse_fo("x, y : Employee(x, y) & !exists z (Employee(x, z) & z != y)").unwrap();
        let ans = eval_fo(&employee_db(), &q, NullSemantics::Structural);
        assert_eq!(ans.len(), 2);
        assert!(ans.contains(&tuple!["smith", 3000]));
        assert!(ans.contains(&tuple!["stowe", 7000]));
    }

    #[test]
    fn plain_cq_via_fo_matches_cq_eval() {
        let db = employee_db();
        let fo = parse_fo("x : exists y (Employee(x, y))").unwrap();
        let cq = parse_query("Q(x) :- Employee(x, y)").unwrap();
        let a = eval_fo(&db, &fo, NullSemantics::Structural);
        let b = crate::eval::eval_cq(&db, &cq, NullSemantics::Structural);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn boolean_fo() {
        let db = employee_db();
        let q = parse_fo("exists x, y, z (Employee(x, y) & Employee(x, z) & y != z)").unwrap();
        assert!(holds_fo(&db, &q, NullSemantics::Structural));
        let q2 = parse_fo("exists x (Employee(x, 3000) & Employee(x, 5000))").unwrap();
        assert!(!holds_fo(&db, &q2, NullSemantics::Structural));
    }

    #[test]
    fn disjunction() {
        let db = employee_db();
        let q = parse_fo("x : exists y (Employee(x, y) & (y = 3000 | y = 7000))").unwrap();
        let ans = eval_fo(&db, &q, NullSemantics::Structural);
        assert_eq!(ans.len(), 2);
    }

    #[test]
    fn negation_with_free_vars_uses_domain() {
        // "names x such that x is not an employee name" over the active
        // domain — domain-dependent, exercises the fallback.
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("P", ["A"])).unwrap();
        db.create_relation(RelationSchema::new("Q", ["A"])).unwrap();
        db.insert("P", tuple!["a"]).unwrap();
        db.insert("P", tuple!["b"]).unwrap();
        db.insert("Q", tuple!["a"]).unwrap();
        let q = parse_fo("x : P(x) & !Q(x)").unwrap();
        let ans = eval_fo(&db, &q, NullSemantics::Structural);
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&tuple!["b"]));
    }

    #[test]
    fn equality_generates_bindings() {
        let db = employee_db();
        let q = parse_fo("x, y : Employee(x, y) & x = 'smith'").unwrap();
        let ans = eval_fo(&db, &q, NullSemantics::Structural);
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&tuple!["smith", 3000]));
    }

    #[test]
    fn sql_mode_blocks_null_joins_in_fo() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("R", ["A", "B"]))
            .unwrap();
        db.create_relation(RelationSchema::new("S", ["A"])).unwrap();
        db.insert("R", Tuple::new(vec![Value::str("a"), Value::NULL]))
            .unwrap();
        db.insert("S", Tuple::new(vec![Value::NULL])).unwrap();
        let q = parse_fo("exists x, y (R(x, y) & S(y))").unwrap();
        assert!(!holds_fo(&db, &q, NullSemantics::Sql));
        assert!(holds_fo(&db, &q, NullSemantics::Structural));
    }

    #[test]
    fn nested_not_exists_chain() {
        // Employees earning the unique maximum salary:
        // Employee(x, y) ∧ ¬∃u,v(Employee(u, v) ∧ v > y)
        let q = parse_fo("x, y : Employee(x, y) & !exists u, v (Employee(u, v) & v > y)").unwrap();
        let ans = eval_fo(&employee_db(), &q, NullSemantics::Structural);
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&tuple!["page", 8000]));
    }

    #[test]
    fn empty_relation_fo() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("E", ["A"])).unwrap();
        let q = parse_fo("x : E(x)").unwrap();
        assert!(eval_fo(&db, &q, NullSemantics::Structural).is_empty());
        let qb = parse_fo("!exists x (E(x))").unwrap();
        assert!(holds_fo(&db, &qb, NullSemantics::Structural));
    }
}

#[cfg(test)]
mod domain_dependence_tests {
    //! Domain-dependent formulas fall back to active-domain enumeration;
    //! these tests pin down that behaviour (it is the classical
    //! active-domain semantics, documented rather than hidden).

    use super::*;
    use crate::parser::parse_fo;
    use cqa_relation::{tuple, Database, RelationSchema};

    fn db() -> Database {
        let mut d = Database::new();
        d.create_relation(RelationSchema::new("P", ["A"])).unwrap();
        d.create_relation(RelationSchema::new("R", ["A"])).unwrap();
        d.insert("P", tuple!["a"]).unwrap();
        d.insert("P", tuple!["b"]).unwrap();
        d.insert("R", tuple!["c"]).unwrap();
        d
    }

    #[test]
    fn disjunction_with_unbinding_branch_expands_over_domain() {
        // y : P(y) | R('c') — when R(c) holds, *every* active-domain value
        // satisfies the formula (classical active-domain semantics).
        let q = parse_fo("y : P(y) | R('c')").unwrap();
        let ans = eval_fo(&db(), &q, NullSemantics::Structural);
        assert_eq!(ans, [tuple!["a"], tuple!["b"], tuple!["c"]].into());
        // Without the witness for the right branch, only P's members remain.
        let mut d2 = db();
        let tid = d2.relation("R").unwrap().tid_of(&tuple!["c"]).unwrap();
        d2.delete(tid).unwrap();
        let ans2 = eval_fo(&d2, &q, NullSemantics::Structural);
        assert_eq!(ans2, [tuple!["a"], tuple!["b"]].into());
    }

    #[test]
    fn pure_negation_is_domain_complement() {
        let q = parse_fo("x : !P(x)").unwrap();
        let ans = eval_fo(&db(), &q, NullSemantics::Structural);
        // Active domain {a, b, c} minus P = {c}.
        assert_eq!(ans, [tuple!["c"]].into());
    }

    #[test]
    fn constants_extend_the_domain() {
        // 'z' appears only in the formula, not in the data; the domain
        // includes formula constants, so the complement sees it.
        let q = parse_fo("x : !P(x) & x != 'z'").unwrap();
        let ans = eval_fo(&db(), &q, NullSemantics::Structural);
        assert_eq!(ans, [tuple!["c"]].into());
        let q2 = parse_fo("x : !P(x) & x = 'z'").unwrap();
        let ans2 = eval_fo(&db(), &q2, NullSemantics::Structural);
        assert_eq!(ans2, [tuple!["z"]].into());
    }
}
