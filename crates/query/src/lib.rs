#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Untrusted input must never panic the process: unwraps/expects are banned
// outside tests (allow-listed per site where an invariant is locally proven).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! # cqa-query
//!
//! Query languages and evaluation over `cqa-relation` databases:
//!
//! * **Conjunctive queries** (with safe negation and comparisons) and unions
//!   thereof — the language for which repairs, CQA and causality are studied
//!   in the paper; evaluation can surface *witnesses* (matched tuple ids),
//!   which is how constraint violations and causes are extracted.
//! * **Full first-order queries** — the target language of consistent-answer
//!   rewritings (Examples 2.2 and 3.4).
//! * **Stratified Datalog with negation** — the view-definition language of
//!   virtual data integration (§5) and the monotone-query language of §7.
//! * **Aggregates** — the basis of range-semantics CQA for aggregation \[5\].
//! * **Magic sets** — goal-directed Datalog rewriting, as ConsEx used for
//!   repair-program optimization (§3.3).
//!
//! Evaluation is parameterized by [`NullSemantics`]: structural (nulls are
//! constants) or SQL three-valued (nulls never join), the latter implementing
//! the "logical reconstruction of SQL nulls" the paper relies on for
//! null-based repairs.

pub mod aggregate;
pub mod ast;
pub mod datalog;
pub mod eval;
pub mod fo;
pub mod magic;
pub mod parser;
pub mod plan;
pub mod sql;

pub use aggregate::{eval_aggregate, eval_scalar, AggOp, AggregateQuery};
pub use ast::{
    Atom, CmpOp, Comparison, ConjunctiveQuery, Fo, FoQuery, Term, UnionQuery, Var, VarTable,
};
pub use datalog::{Literal, Program, Rule};
pub use eval::{
    eval_cq, eval_cq_ordered, eval_ucq, for_each_witness, holds, holds_ucq, match_atom,
    match_atom_vids, witnesses, AtomVids, Bindings, NullSemantics, VidBindings, Witness,
};
pub use fo::{eval_fo, holds_fo};
pub use magic::{magic_rewrite, MagicProgram};
pub use parser::{parse_fo, parse_program, parse_query, parse_ucq};
pub use plan::{
    cached_certain_answers, join_order, plan_cache_stats, reset_plan_cache, ucq_signature,
    PlanCacheStats, PlanExplain, PlanStep,
};
pub use sql::fo_to_sql;
