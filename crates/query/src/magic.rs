//! The magic-sets transformation for Datalog.
//!
//! §3.3 of the paper notes that *ConsEx* "uses magic-sets for query
//! optimization" when running repair programs on DLV. This module provides
//! the classical transformation for positive Datalog: given a program and a
//! goal atom with some constant arguments, produce an *adorned* program
//! whose evaluation derives only facts relevant to the goal, seeded by
//! *magic* predicates that push the goal's bindings sideways through rule
//! bodies (left-to-right SIPS).
//!
//! Guarantee (tested): evaluating the transformed program answers the goal
//! identically to evaluating the original program, while deriving a subset
//! of the IDB facts — often a dramatically smaller one on goal-directed
//! workloads (e.g. single-source reachability).

use crate::ast::{Atom, Term, Var};
use crate::datalog::{Literal, Program, Rule};
use std::collections::{BTreeSet, VecDeque};

/// An adornment: which argument positions are bound (`true`).
type Adornment = Vec<bool>;

fn adornment_suffix(a: &Adornment) -> String {
    a.iter().map(|&b| if b { 'b' } else { 'f' }).collect()
}

fn adorned_name(pred: &str, a: &Adornment) -> String {
    format!("{pred}__{}", adornment_suffix(a))
}

fn magic_name(pred: &str, a: &Adornment) -> String {
    format!("m__{pred}__{}", adornment_suffix(a))
}

/// Result of the transformation.
#[derive(Debug, Clone)]
pub struct MagicProgram {
    /// The transformed program (adorned rules + magic rules + seed fact).
    pub program: Program,
    /// The adorned goal atom to query after evaluation.
    pub goal: Atom,
}

/// Apply the magic-sets transformation to a **positive** program (no
/// negation; comparisons allowed) for the given goal atom. Goal argument
/// positions holding constants are bound; variables are free.
pub fn magic_rewrite(program: &Program, goal: &Atom) -> Result<MagicProgram, String> {
    if program.rules.iter().any(|r| r.negative().next().is_some()) {
        return Err("magic sets are implemented for positive programs only".into());
    }
    program.check_safety()?;
    let idb = program.idb_predicates();
    if !idb.contains(&goal.relation) {
        return Err(format!(
            "goal predicate `{}` is not defined by the program",
            goal.relation
        ));
    }

    let goal_adornment: Adornment = goal
        .terms
        .iter()
        .map(|t| matches!(t, Term::Const(_)))
        .collect();

    let mut out = Program {
        rules: Vec::new(),
        vars: program.vars.clone(),
    };
    let mut done: BTreeSet<(String, Adornment)> = BTreeSet::new();
    let mut queue: VecDeque<(String, Adornment)> = VecDeque::new();
    queue.push_back((goal.relation.clone(), goal_adornment.clone()));

    // Seed: the goal's bound constants.
    let seed_args: Vec<Term> = goal
        .terms
        .iter()
        .filter(|t| matches!(t, Term::Const(_)))
        .cloned()
        .collect();
    out.rules.push(Rule {
        head: Atom::new(magic_name(&goal.relation, &goal_adornment), seed_args),
        body: Vec::new(),
    });

    while let Some((pred, adornment)) = queue.pop_front() {
        if !done.insert((pred.clone(), adornment.clone())) {
            continue;
        }
        for rule in program.rules.iter().filter(|r| r.head.relation == pred) {
            transform_rule(rule, &adornment, &idb, &mut out, &mut queue);
        }
    }

    // The adorned goal: same terms, adorned predicate.
    let adorned_goal = Atom::new(
        adorned_name(&goal.relation, &goal_adornment),
        goal.terms.clone(),
    );
    Ok(MagicProgram {
        program: out,
        goal: adorned_goal,
    })
}

fn bound_args(atom: &Atom, adornment: &Adornment) -> Vec<Term> {
    atom.terms
        .iter()
        .zip(adornment)
        .filter(|(_, &b)| b)
        .map(|(t, _)| t.clone())
        .collect()
}

fn transform_rule(
    rule: &Rule,
    head_adornment: &Adornment,
    idb: &BTreeSet<String>,
    out: &mut Program,
    queue: &mut VecDeque<(String, Adornment)>,
) {
    // Variables bound so far: head vars at bound positions.
    let mut bound: BTreeSet<Var> = rule
        .head
        .terms
        .iter()
        .zip(head_adornment)
        .filter(|(_, &b)| b)
        .filter_map(|(t, _)| t.as_var())
        .collect();

    let magic_head_atom = Atom::new(
        magic_name(&rule.head.relation, head_adornment),
        bound_args(&rule.head, head_adornment),
    );

    // Walk body atoms left-to-right, emitting magic rules for IDB atoms and
    // building the transformed body.
    let mut new_body: Vec<Literal> = vec![Literal::Pos(magic_head_atom.clone())];
    let mut prefix: Vec<Literal> = vec![Literal::Pos(magic_head_atom)];
    for lit in &rule.body {
        match lit {
            Literal::Pos(atom) if idb.contains(&atom.relation) => {
                let adornment: Adornment = atom
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Const(_) => true,
                        Term::Var(v) => bound.contains(v),
                    })
                    .collect();
                // Magic rule: m_q_a(bound args) :- prefix.
                out.rules.push(Rule {
                    head: Atom::new(
                        magic_name(&atom.relation, &adornment),
                        bound_args(atom, &adornment),
                    ),
                    body: prefix.clone(),
                });
                queue.push_back((atom.relation.clone(), adornment.clone()));
                let adorned =
                    Atom::new(adorned_name(&atom.relation, &adornment), atom.terms.clone());
                new_body.push(Literal::Pos(adorned.clone()));
                prefix.push(Literal::Pos(adorned));
                bound.extend(atom.vars());
            }
            Literal::Pos(atom) => {
                new_body.push(Literal::Pos(atom.clone()));
                prefix.push(Literal::Pos(atom.clone()));
                bound.extend(atom.vars());
            }
            Literal::Cmp(c) => {
                new_body.push(Literal::Cmp(c.clone()));
                prefix.push(Literal::Cmp(c.clone()));
            }
            Literal::Neg(_) => unreachable!("checked positive"),
        }
    }

    out.rules.push(Rule {
        head: Atom::new(
            adorned_name(&rule.head.relation, head_adornment),
            rule.head.terms.clone(),
        ),
        body: new_body,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_cq, NullSemantics};
    use crate::parser::{parse_program, parse_query};
    use cqa_relation::{tuple, Database, RelationSchema};
    use std::collections::BTreeSet as Set;

    fn edge_db(edges: &[(i64, i64)]) -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Edge", ["From", "To"]))
            .unwrap();
        for &(a, b) in edges {
            db.insert("Edge", tuple![a, b]).unwrap();
        }
        db
    }

    fn tc_program() -> Program {
        parse_program(
            "Path(x, y) :- Edge(x, y).\n\
             Path(x, z) :- Edge(x, y), Path(y, z).",
        )
        .unwrap()
    }

    /// Answers to `goal` via a program, as a set of tuples.
    fn answers(program: &Program, db: &Database, goal_text: &str) -> Set<cqa_relation::Tuple> {
        let out = program.evaluate(db).unwrap();
        let q = parse_query(goal_text).unwrap();
        eval_cq(&out, &q, NullSemantics::Structural)
    }

    #[test]
    fn magic_tc_same_answers_fewer_facts() {
        // Two disconnected components; goal asks only about component 1.
        let db = edge_db(&[(1, 2), (2, 3), (3, 4), (100, 101), (101, 102), (102, 103)]);
        let program = tc_program();
        let goal = parse_query("Q(y) :- Path(1, y)").unwrap().atoms[0].clone();
        let magic = magic_rewrite(&program, &goal).unwrap();

        let direct = answers(&program, &db, "Q(y) :- Path(1, y)");
        let via_magic = {
            let out = magic.program.evaluate(&db).unwrap();
            let mut q = parse_query("Q(y) :- Path(1, y)").unwrap();
            q.atoms[0].relation = magic.goal.relation.clone();
            eval_cq(&out, &q, NullSemantics::Structural)
        };
        assert_eq!(direct, via_magic);
        assert_eq!(direct.len(), 3); // 2, 3, 4

        // Magic derives strictly fewer Path facts: only component 1.
        let full = program.evaluate(&db).unwrap();
        let magic_out = magic.program.evaluate(&db).unwrap();
        let full_paths = full.relation("Path").unwrap().len();
        let magic_paths = magic_out.relation(&magic.goal.relation).unwrap().len();
        // Full evaluation derives both components (12 paths); magic only
        // derives paths from magic-reachable sources {1, 2, 3} (6 paths).
        assert_eq!(full_paths, 12);
        assert_eq!(magic_paths, 6);
        assert!(magic_paths < full_paths);
    }

    #[test]
    fn fully_free_goal_still_correct() {
        let db = edge_db(&[(1, 2), (2, 3)]);
        let program = tc_program();
        let goal = parse_query("Q(x, y) :- Path(x, y)").unwrap().atoms[0].clone();
        let magic = magic_rewrite(&program, &goal).unwrap();
        let out = magic.program.evaluate(&db).unwrap();
        assert_eq!(out.relation(&magic.goal.relation).unwrap().len(), 3);
    }

    #[test]
    fn both_bound_goal() {
        let db = edge_db(&[(1, 2), (2, 3), (5, 6)]);
        let program = tc_program();
        let goal = parse_query("Q() :- Path(1, 3)").unwrap().atoms[0].clone();
        let magic = magic_rewrite(&program, &goal).unwrap();
        let out = magic.program.evaluate(&db).unwrap();
        let rel = out.relation(&magic.goal.relation).unwrap();
        assert!(rel.contains(&tuple![1, 3]));
        // Nothing about the 5→6 component was derived.
        assert!(rel
            .tuples()
            .all(|t| t.at(0) != &cqa_relation::Value::int(5)));
    }

    #[test]
    fn multi_idb_bodies() {
        // Same-generation: sg(x, y) :- Flat(x, y). sg(x, y) :- Up(x, u), sg(u, v), Down(v, y).
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Flat", ["A", "B"]))
            .unwrap();
        db.create_relation(RelationSchema::new("Up", ["A", "B"]))
            .unwrap();
        db.create_relation(RelationSchema::new("Down", ["A", "B"]))
            .unwrap();
        db.insert("Flat", tuple![10, 20]).unwrap();
        db.insert("Up", tuple![1, 10]).unwrap();
        db.insert("Down", tuple![20, 2]).unwrap();
        db.insert("Up", tuple![99, 98]).unwrap(); // irrelevant branch
        let program = parse_program(
            "Sg(x, y) :- Flat(x, y).\n\
             Sg(x, y) :- Up(x, u), Sg(u, v), Down(v, y).",
        )
        .unwrap();
        let goal = parse_query("Q(y) :- Sg(1, y)").unwrap().atoms[0].clone();
        let magic = magic_rewrite(&program, &goal).unwrap();
        let direct = answers(&program, &db, "Q(y) :- Sg(1, y)");
        let out = magic.program.evaluate(&db).unwrap();
        let mut q = parse_query("Q(y) :- Sg(1, y)").unwrap();
        q.atoms[0].relation = magic.goal.relation.clone();
        let via = eval_cq(&out, &q, NullSemantics::Structural);
        assert_eq!(direct, via);
        assert_eq!(via, [tuple![2]].into());
    }

    #[test]
    fn negation_rejected() {
        let program = parse_program(
            "P(x) :- Node(x), not Bad(x).\n\
             Bad(x) :- Flag(x).",
        )
        .unwrap();
        let goal = parse_query("Q(x) :- P(x)").unwrap().atoms[0].clone();
        assert!(magic_rewrite(&program, &goal).is_err());
    }

    #[test]
    fn unknown_goal_rejected() {
        let program = tc_program();
        let goal = parse_query("Q(x) :- Nothing(x)").unwrap().atoms[0].clone();
        assert!(magic_rewrite(&program, &goal).is_err());
    }

    #[test]
    fn randomized_equivalence() {
        // Pseudo-random graphs: magic answers must always equal direct.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move |m: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % m
        };
        let program = tc_program();
        for _ in 0..10 {
            let mut edges = Vec::new();
            for _ in 0..12 {
                edges.push((next(8) as i64, next(8) as i64));
            }
            let db = edge_db(&edges);
            let src = (next(8)) as i64;
            let goal_text = format!("Q(y) :- Path({src}, y)");
            let goal = parse_query(&goal_text).unwrap().atoms[0].clone();
            let magic = magic_rewrite(&program, &goal).unwrap();
            let direct = answers(&program, &db, &goal_text);
            let out = magic.program.evaluate(&db).unwrap();
            let mut q = parse_query(&goal_text).unwrap();
            q.atoms[0].relation = magic.goal.relation.clone();
            let via = eval_cq(&out, &q, NullSemantics::Structural);
            assert_eq!(direct, via, "graph {edges:?}, src {src}");
        }
    }
}
