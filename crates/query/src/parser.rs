//! Textual syntax for queries, Datalog rules and first-order formulas.
//!
//! Conventions follow the paper's examples:
//!
//! * **Variables** are identifiers starting with a lowercase letter
//!   (`x`, `y`, `t1`); `_` is an anonymous fresh variable.
//! * **Constants** are identifiers starting with an uppercase letter
//!   (`I1`, `C2`), quoted strings (`'page'`), numbers (`5`, `2.5`), the
//!   keywords `true`/`false`, and `NULL`.
//! * A conjunctive query is written rule-style:
//!   `Q(z) :- Supply(x, y, z), Articles(z), x != y`.
//!   `not R(...)` is safe negation.
//! * First-order formulas use `&`, `|`, `!`, `exists x, y (...)`, e.g.
//!   `Employee(x, y) & !exists z (Employee(x, z) & z != y)`.

use crate::ast::{
    Atom, CmpOp, Comparison, ConjunctiveQuery, Fo, FoQuery, Term, UnionQuery, VarTable,
};
use crate::datalog::{Literal, Program, Rule};
use cqa_relation::{RelationError, Value};

type PResult<T> = Result<T, RelationError>;

fn err(msg: impl Into<String>) -> RelationError {
    RelationError::Parse(msg.into())
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String), // variable or relation or constant, by capitalization
    Str(String),   // 'quoted'
    Num(String),   // number literal
    Punct(&'static str),
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    toks: Vec<Tok>,
}

fn lex(input: &str) -> PResult<Vec<Tok>> {
    let mut lx = Lexer {
        chars: input.chars().peekable(),
        toks: Vec::new(),
    };
    while let Some(&c) = lx.chars.peek() {
        match c {
            c if c.is_whitespace() => {
                lx.chars.next();
            }
            '%' => {
                // comment to end of line
                for c in lx.chars.by_ref() {
                    if c == '\n' {
                        break;
                    }
                }
            }
            '(' | ')' | ',' | '.' | '&' | '|' | '[' | ']' | '{' | '}' => {
                lx.chars.next();
                lx.toks.push(Tok::Punct(match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '.' => ".",
                    '&' => "&",
                    '|' => "|",
                    '[' => "[",
                    ']' => "]",
                    '{' => "{",
                    _ => "}",
                }));
            }
            ':' => {
                lx.chars.next();
                if lx.chars.peek() == Some(&'-') {
                    lx.chars.next();
                    lx.toks.push(Tok::Punct(":-"));
                } else {
                    lx.toks.push(Tok::Punct(":"));
                }
            }
            '!' => {
                lx.chars.next();
                if lx.chars.peek() == Some(&'=') {
                    lx.chars.next();
                    lx.toks.push(Tok::Punct("!="));
                } else {
                    lx.toks.push(Tok::Punct("!"));
                }
            }
            '<' => {
                lx.chars.next();
                match lx.chars.peek() {
                    Some('=') => {
                        lx.chars.next();
                        lx.toks.push(Tok::Punct("<="));
                    }
                    Some('>') => {
                        lx.chars.next();
                        lx.toks.push(Tok::Punct("!="));
                    }
                    _ => lx.toks.push(Tok::Punct("<")),
                }
            }
            '>' => {
                lx.chars.next();
                if lx.chars.peek() == Some(&'=') {
                    lx.chars.next();
                    lx.toks.push(Tok::Punct(">="));
                } else {
                    lx.toks.push(Tok::Punct(">"));
                }
            }
            '=' => {
                lx.chars.next();
                lx.toks.push(Tok::Punct("="));
            }
            '\'' => {
                lx.chars.next();
                let mut s = String::new();
                loop {
                    match lx.chars.next() {
                        Some('\'') => break,
                        Some(c) => s.push(c),
                        None => return Err(err("unterminated string literal")),
                    }
                }
                lx.toks.push(Tok::Str(s));
            }
            c if c.is_ascii_digit() || c == '-' => {
                lx.chars.next();
                let mut s = String::from(c);
                while let Some(&d) = lx.chars.peek() {
                    if d.is_ascii_digit() || d == '.' {
                        // Don't swallow a trailing rule-terminating dot: only
                        // take '.' if followed by a digit.
                        if d == '.' {
                            let mut clone = lx.chars.clone();
                            clone.next();
                            if !clone.peek().is_some_and(|n| n.is_ascii_digit()) {
                                break;
                            }
                        }
                        s.push(d);
                        lx.chars.next();
                    } else {
                        break;
                    }
                }
                if s == "-" {
                    return Err(err("stray `-`"));
                }
                lx.toks.push(Tok::Num(s));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = lx.chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        s.push(d);
                        lx.chars.next();
                    } else {
                        break;
                    }
                }
                lx.toks.push(Tok::Ident(s));
            }
            other => return Err(err(format!("unexpected character `{other}`"))),
        }
    }
    Ok(lx.toks)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
    vars: VarTable,
}

impl Parser {
    fn new(input: &str) -> PResult<Parser> {
        Ok(Parser {
            toks: lex(input)?,
            pos: 0,
            vars: VarTable::new(),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.peek()
            == Some(&Tok::Punct(match p {
                "(" => "(",
                ")" => ")",
                "," => ",",
                "." => ".",
                ":-" => ":-",
                "&" => "&",
                "|" => "|",
                "!" => "!",
                "=" => "=",
                "!=" => "!=",
                "<" => "<",
                "<=" => "<=",
                ">" => ">",
                ">=" => ">=",
                "[" => "[",
                "]" => "]",
                "{" => "{",
                "}" => "}",
                ":" => ":",
                _ => return false,
            }))
        {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> PResult<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(err(format!("expected `{p}`, found {:?}", self.peek())))
        }
    }

    fn is_variable_name(name: &str) -> bool {
        name.chars().next().is_some_and(|c| c.is_lowercase()) || name.starts_with('_')
    }

    fn term(&mut self) -> PResult<Term> {
        match self.next() {
            Some(Tok::Ident(name)) => {
                if name == "_" {
                    Ok(Term::Var(self.vars.fresh()))
                } else if name == "NULL" {
                    Ok(Term::Const(Value::NULL))
                } else if name == "true" {
                    Ok(Term::Const(Value::Bool(true)))
                } else if name == "false" {
                    Ok(Term::Const(Value::Bool(false)))
                } else if Self::is_variable_name(&name) {
                    Ok(Term::Var(self.vars.var(&name)))
                } else {
                    Ok(Term::Const(Value::str(&name)))
                }
            }
            Some(Tok::Str(s)) => Ok(Term::Const(Value::str(&s))),
            Some(Tok::Num(n)) => {
                if n.contains('.') {
                    n.parse::<f64>()
                        .map(|f| Term::Const(Value::Float(f)))
                        .map_err(|_| err(format!("bad float `{n}`")))
                } else {
                    n.parse::<i64>()
                        .map(|i| Term::Const(Value::Int(i)))
                        .map_err(|_| err(format!("bad int `{n}`")))
                }
            }
            other => Err(err(format!("expected term, found {other:?}"))),
        }
    }

    fn atom_with_name(&mut self, name: String) -> PResult<Atom> {
        self.expect_punct("(")?;
        let mut terms = Vec::new();
        if !self.eat_punct(")") {
            loop {
                terms.push(self.term()?);
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        Ok(Atom::new(name, terms))
    }

    fn cmp_op(&mut self) -> Option<CmpOp> {
        let op = match self.peek()? {
            Tok::Punct("=") => CmpOp::Eq,
            Tok::Punct("!=") => CmpOp::Ne,
            Tok::Punct("<") => CmpOp::Lt,
            Tok::Punct("<=") => CmpOp::Le,
            Tok::Punct(">") => CmpOp::Gt,
            Tok::Punct(">=") => CmpOp::Ge,
            _ => return None,
        };
        self.pos += 1;
        Some(op)
    }

    /// One body element of a rule-style query.
    fn body_element(&mut self) -> PResult<BodyElem> {
        if let Some(Tok::Ident(name)) = self.peek().cloned() {
            if name == "not" {
                self.pos += 1;
                let rel = match self.next() {
                    Some(Tok::Ident(r)) => r,
                    other => {
                        return Err(err(format!(
                            "expected relation after `not`, found {other:?}"
                        )))
                    }
                };
                return Ok(BodyElem::Neg(self.atom_with_name(rel)?));
            }
            // Lookahead: `Name(` is an atom; otherwise it is a term of a
            // comparison.
            if self.toks.get(self.pos + 1) == Some(&Tok::Punct("(")) {
                // `name(` is unambiguously an atom regardless of case: a
                // variable can never be followed by `(` in valid syntax.
                self.pos += 1;
                return Ok(BodyElem::Pos(self.atom_with_name(name)?));
            }
        }
        let left = self.term()?;
        let op = self.cmp_op().ok_or_else(|| {
            err(format!(
                "expected comparison operator, found {:?}",
                self.peek()
            ))
        })?;
        let right = self.term()?;
        Ok(BodyElem::Cmp(Comparison { left, op, right }))
    }

    fn rule_body(&mut self) -> PResult<(Vec<Atom>, Vec<Atom>, Vec<Comparison>)> {
        let mut atoms = Vec::new();
        let mut negated = Vec::new();
        let mut comparisons = Vec::new();
        loop {
            match self.body_element()? {
                BodyElem::Pos(a) => atoms.push(a),
                BodyElem::Neg(a) => negated.push(a),
                BodyElem::Cmp(c) => comparisons.push(c),
            }
            if !self.eat_punct(",") {
                break;
            }
        }
        Ok((atoms, negated, comparisons))
    }

    /// `Head(args) :- body` (the trailing `.` is optional).
    fn rule(&mut self) -> PResult<ParsedRule> {
        let head_name = match self.next() {
            Some(Tok::Ident(n)) => n,
            other => return Err(err(format!("expected head relation, found {other:?}"))),
        };
        let head = self.atom_with_name(head_name)?;
        if self.eat_punct(".") || self.peek().is_none() {
            // A fact.
            return Ok((head, Vec::new(), Vec::new(), Vec::new()));
        }
        self.expect_punct(":-")?;
        let (atoms, negated, comparisons) = self.rule_body()?;
        let _ = self.eat_punct(".");
        Ok((head, atoms, negated, comparisons))
    }

    // ---- first-order formulas ----

    fn fo_formula(&mut self) -> PResult<Fo> {
        self.fo_or()
    }

    fn fo_or(&mut self) -> PResult<Fo> {
        let first = self.fo_and()?;
        if !self.eat_punct("|") {
            return Ok(first);
        }
        let mut parts = vec![first, self.fo_and()?];
        while self.eat_punct("|") {
            parts.push(self.fo_and()?);
        }
        Ok(Fo::Or(parts))
    }

    fn fo_and(&mut self) -> PResult<Fo> {
        let first = self.fo_unary()?;
        if !self.eat_punct("&") {
            return Ok(first);
        }
        let mut parts = vec![first, self.fo_unary()?];
        while self.eat_punct("&") {
            parts.push(self.fo_unary()?);
        }
        Ok(Fo::And(parts))
    }

    fn fo_unary(&mut self) -> PResult<Fo> {
        if self.eat_punct("!") {
            return Ok(Fo::Not(Box::new(self.fo_unary()?)));
        }
        if let Some(Tok::Ident(name)) = self.peek().cloned() {
            if name == "exists" {
                self.pos += 1;
                let mut vars = Vec::new();
                loop {
                    match self.next() {
                        Some(Tok::Ident(v)) if Self::is_variable_name(&v) => {
                            vars.push(self.vars.var(&v));
                        }
                        other => return Err(err(format!("expected variable, found {other:?}"))),
                    }
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                self.expect_punct("(")?;
                let body = self.fo_formula()?;
                self.expect_punct(")")?;
                return Ok(Fo::Exists(vars, Box::new(body)));
            }
            if self.toks.get(self.pos + 1) == Some(&Tok::Punct("(")) {
                // `name(` is unambiguously an atom regardless of case: a
                // variable can never be followed by `(` in valid syntax.
                self.pos += 1;
                return Ok(Fo::Atom(self.atom_with_name(name)?));
            }
        }
        if self.eat_punct("(") {
            let inner = self.fo_formula()?;
            self.expect_punct(")")?;
            return Ok(inner);
        }
        // comparison
        let left = self.term()?;
        let op = self
            .cmp_op()
            .ok_or_else(|| err(format!("expected comparison, found {:?}", self.peek())))?;
        let right = self.term()?;
        Ok(Fo::Cmp(Comparison { left, op, right }))
    }
}

/// A parsed rule: head atom, positive body, negated body, comparisons.
type ParsedRule = (Atom, Vec<Atom>, Vec<Atom>, Vec<Comparison>);

enum BodyElem {
    Pos(Atom),
    Neg(Atom),
    Cmp(Comparison),
}

/// Parse a rule-style conjunctive query:
/// `Q(z) :- Supply(x, y, z), Articles(z), x != y`.
pub fn parse_query(input: &str) -> PResult<ConjunctiveQuery> {
    let mut p = Parser::new(input)?;
    let (head, atoms, negated, comparisons) = p.rule()?;
    if p.peek().is_some() {
        return Err(err(format!("trailing tokens after query: {:?}", p.peek())));
    }
    let cq = ConjunctiveQuery {
        vars: p.vars,
        head: head.terms,
        atoms,
        negated,
        comparisons,
    };
    cq.check_safety().map_err(err)?;
    Ok(cq)
}

/// Parse a union of conjunctive queries: one rule per line (or `.`-separated),
/// all sharing the head predicate name and arity.
pub fn parse_ucq(input: &str) -> PResult<UnionQuery> {
    let mut disjuncts = Vec::new();
    for line in input.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        disjuncts.push(parse_query(line)?);
    }
    let Some(first) = disjuncts.first() else {
        return Err(err("empty UCQ"));
    };
    let arity = first.head.len();
    if disjuncts.iter().any(|d| d.head.len() != arity) {
        return Err(err("UCQ disjuncts have differing head arities"));
    }
    Ok(UnionQuery { disjuncts })
}

/// Parse a Datalog program: rules and facts, one per line or `.`-separated.
pub fn parse_program(input: &str) -> PResult<Program> {
    let mut rules = Vec::new();
    let mut p = Parser::new(input)?;
    while p.peek().is_some() {
        // Each rule gets its own variable scope.
        let scope_start = p.vars.len();
        let (head, atoms, negated, comparisons) = p.rule()?;
        let _ = scope_start; // variables are program-global by index; fine for evaluation
        let mut body: Vec<Literal> = atoms.into_iter().map(Literal::Pos).collect();
        body.extend(negated.into_iter().map(Literal::Neg));
        body.extend(comparisons.into_iter().map(Literal::Cmp));
        rules.push(Rule { head, body });
    }
    Ok(Program {
        rules,
        vars: p.vars,
    })
}

/// Parse a first-order query `free_vars : formula`, e.g.
/// `x, y : Employee(x, y) & !exists z (Employee(x, z) & z != y)`.
/// A Boolean query starts directly with the formula (no `:`), or with `:`.
pub fn parse_fo(input: &str) -> PResult<FoQuery> {
    let mut p = Parser::new(input)?;
    // Try to read a `v1, v2, ... :` prefix.
    let mut free = Vec::new();
    let save = p.pos;
    let mut has_prefix = false;
    loop {
        match p.peek().cloned() {
            Some(Tok::Ident(name))
                if Parser::is_variable_name(&name)
                    && matches!(
                        p.toks.get(p.pos + 1),
                        Some(Tok::Punct(",")) | Some(Tok::Punct(":"))
                    ) =>
            {
                p.pos += 1;
                free.push(p.vars.var(&name));
                if p.eat_punct(",") {
                    continue;
                }
                if p.eat_punct(":") {
                    has_prefix = true;
                }
                break;
            }
            _ => break,
        }
    }
    if !has_prefix {
        p.pos = save;
        p.vars = VarTable::new();
        free.clear();
        let _ = p.eat_punct(":");
    }
    let formula = p.fo_formula()?;
    if p.peek().is_some() {
        return Err(err(format!("trailing tokens: {:?}", p.peek())));
    }
    let fv = formula.free_vars();
    for v in &free {
        if !fv.contains(v) {
            return Err(err(format!(
                "declared free variable `{}` does not occur free in the formula",
                p.vars.name(*v)
            )));
        }
    }
    for v in &fv {
        if !free.contains(v) {
            return Err(err(format!(
                "formula has undeclared free variable `{}`",
                p.vars.name(*v)
            )));
        }
    }
    Ok(FoQuery {
        vars: p.vars,
        free,
        formula,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Term;

    #[test]
    fn parses_projection_query() {
        let q = parse_query("Q(z) :- Supply(x, y, z)").unwrap();
        assert_eq!(q.head.len(), 1);
        assert_eq!(q.atoms.len(), 1);
        assert_eq!(q.atoms[0].relation, "Supply");
        assert_eq!(q.to_string(), "Q(z) :- Supply(x, y, z)");
    }

    #[test]
    fn capitalization_separates_vars_from_constants() {
        let q = parse_query("Q(x) :- Supply(C2, x, I3)").unwrap();
        assert_eq!(q.atoms[0].terms[0], Term::Const(Value::str("C2")));
        assert!(matches!(q.atoms[0].terms[1], Term::Var(_)));
        assert_eq!(q.atoms[0].terms[2], Term::Const(Value::str("I3")));
    }

    #[test]
    fn parses_negation_comparisons_and_literals() {
        let q = parse_query("Q(x) :- Employee(x, y), not Fired(x), y >= 3, y != 7, x = 'page'")
            .unwrap();
        assert_eq!(q.negated.len(), 1);
        assert_eq!(q.comparisons.len(), 3);
    }

    #[test]
    fn parses_numbers_and_null() {
        let q = parse_query("Q() :- R(1, 2.5, NULL, -3)").unwrap();
        let terms = &q.atoms[0].terms;
        assert_eq!(terms[0], Term::Const(Value::Int(1)));
        assert_eq!(terms[1], Term::Const(Value::Float(2.5)));
        assert_eq!(terms[2], Term::Const(Value::NULL));
        assert_eq!(terms[3], Term::Const(Value::Int(-3)));
    }

    #[test]
    fn anonymous_vars_are_fresh() {
        let q = parse_query("Q(x) :- R(x, _, _)").unwrap();
        let vs: Vec<_> = q.atoms[0].vars().collect();
        assert_eq!(vs.len(), 3);
        assert_ne!(vs[1], vs[2]);
    }

    #[test]
    fn unsafe_query_rejected() {
        assert!(parse_query("Q(y) :- R(x)").is_err());
        assert!(parse_query("Q() :- R(x), not S(y)").is_err());
    }

    #[test]
    fn parses_ucq() {
        let u = parse_ucq("Q(x) :- R(x)\nQ(x) :- S(x)").unwrap();
        assert_eq!(u.disjuncts.len(), 2);
        assert!(parse_ucq("Q(x) :- R(x)\nQ(x, y) :- S(x, y)").is_err());
    }

    #[test]
    fn parses_program_with_facts() {
        let p = parse_program(
            "Path(x, y) :- Edge(x, y).\n\
             Path(x, z) :- Edge(x, y), Path(y, z).\n\
             Edge(A, B).",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 3);
        assert!(p.rules[2].body.is_empty());
    }

    #[test]
    fn parses_fo_rewritten_query() {
        // The rewriting of Example 3.4.
        let q = parse_fo("x, y : Employee(x, y) & !exists z (Employee(x, z) & z != y)").unwrap();
        assert_eq!(q.free.len(), 2);
        match &q.formula {
            Fo::And(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn fo_free_var_mismatch_rejected() {
        assert!(parse_fo("x : Employee(x, y)").is_err());
        assert!(parse_fo("x, q : Employee(x, x)").is_err());
    }

    #[test]
    fn fo_boolean_formula() {
        let q = parse_fo("exists x, y (S(x) & R(x, y) & S(y))").unwrap();
        assert!(q.free.is_empty());
    }

    #[test]
    fn fo_or_precedence() {
        let q = parse_fo("exists x (R(x) & S(x) | T(x))").unwrap();
        match q.formula {
            Fo::Exists(_, body) => assert!(matches!(*body, Fo::Or(_))),
            _ => panic!(),
        }
    }

    #[test]
    fn lexer_handles_comments_and_sql_ne() {
        let q = parse_query("Q(x) :- R(x, y), x <> y % trailing comment").unwrap();
        assert_eq!(q.comparisons[0].op, CmpOp::Ne);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_query("Q(x :- R(x)").is_err());
        assert!(parse_query("Q(x) :- R(x").is_err());
        assert!(parse_query("").is_err());
        assert!(parse_fo("x : ").is_err());
    }
}

#[cfg(test)]
mod roundtrip_tests {
    //! `Display` output of a parsed query must re-parse to the same
    //! rendering (a display/parse fix-point), so the two stay in sync.

    use super::*;

    #[test]
    fn display_parse_fixpoint() {
        for text in [
            "Q(z) :- Supply(x, y, z)",
            "Q(x, y) :- Employee(x, y), not Fired(x), y >= 3",
            "Q() :- S(x), R(x, y), S(y), x != y",
            "Q('tag', z) :- Articles(z)",
            "Q(x) :- R(x, 1), S(x), x < 10",
        ] {
            let q1 = parse_query(text).unwrap();
            let printed = q1.to_string();
            let q2 = parse_query(&printed).unwrap();
            assert_eq!(printed, q2.to_string(), "not a fix-point: {text}");
            assert_eq!(q1.atoms.len(), q2.atoms.len());
            assert_eq!(q1.negated.len(), q2.negated.len());
            assert_eq!(q1.comparisons.len(), q2.comparisons.len());
        }
    }
}
