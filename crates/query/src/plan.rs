//! Cost-based join planning and the repair-family subplan cache.
//!
//! Two pieces live here, both feeding the CQA folds in `cqa-core`:
//!
//! 1. **A cardinality-estimate-driven join orderer** ([`join_order`]).
//!    The evaluator's original heuristic was boundness-greedy and blind to
//!    actual cardinalities; this one scores each candidate atom with an
//!    estimated *access cost* — the relation's visible row count for a
//!    scan, or `rows / Π distinct(bound column)` for an indexed probe —
//!    computed from [`cqa_relation::ColumnStats`] (deterministic stride
//!    samples over the base `ColumnStore`) in saturating `u128` integer
//!    arithmetic. No floats, no clocks, no randomness: the same query over
//!    the same content always yields the same order, and the totally
//!    ordered tie-break (cost, boundness, size, atom index) is stable
//!    under relation insertion order. Ordering only changes *how fast*
//!    answers arrive, never *which* answers: evaluation is a bind-and-
//!    filter join whose output is a set.
//!
//! 2. **A shared subplan cache** ([`cached_certain_answers`]). The 2^k /
//!    per-component repair folds evaluate near-identical UCQs over views
//!    that differ by tiny deltas. Entries are keyed by a 128-bit
//!    fingerprint folding the query fragment, the null semantics, and
//!    [`Facts::plan_fingerprint`] — content stamps of the mentioned
//!    relations plus the view's delta *scoped to those relations*. Stamps
//!    are globally unique and re-minted on every mutation over an
//!    append-only `ValueDict`, so a stale entry can never be keyed like a
//!    live one: equal key ⟹ identical visible content ⟹ identical
//!    answers. Cached values are the **null-filtered answer sets** the
//!    certain/possible folds consume, shared as `Arc`s across repairs,
//!    components, incremental refreshes, and warm server sessions.
//!
//! This module never reads the environment or the clock (L005); whether
//! the cache is consulted is decided by the caller (see
//! `cqa_exec::plan_cache_enabled`, the sanctioned ambient read).

use crate::ast::{ConjunctiveQuery, Term, UnionQuery, Var};
use crate::eval::NullSemantics;
use cqa_relation::fxhash::{FxHashMap, FxHasher};
use cqa_relation::{Facts, Tuple};
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Relations at or above this many visible rows use indexed probes in the
/// evaluator; the cost model scores them as probes, smaller ones as scans.
pub const INDEX_THRESHOLD: usize = 32;

/// `base^exp` in saturating `u128` arithmetic — shared with the
/// `cqa-analysis` grounding estimator so both size models agree.
pub fn saturating_pow(base: u128, exp: u32) -> u128 {
    let mut out: u128 = 1;
    for _ in 0..exp {
        out = out.saturating_mul(base);
    }
    out
}

/// One step of a chosen join order, for observability (`repairctl analyze
/// --plan`, the `repaird` `/health` endpoint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanStep {
    /// Index of the atom in the query's body.
    pub atom: usize,
    /// The atom's relation name.
    pub relation: String,
    /// Estimated rows this step visits (probe or scan).
    pub estimate: u128,
    /// Whether the step can use an indexed probe (some column bound and
    /// the relation is at or above [`INDEX_THRESHOLD`]).
    pub indexed: bool,
}

/// A chosen join order plus its per-step estimates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanExplain {
    /// Atom indexes in evaluation order.
    pub order: Vec<usize>,
    /// Per-step details, aligned with `order`.
    pub steps: Vec<PlanStep>,
}

impl PlanExplain {
    /// Estimated total intermediate-result size: the product of the
    /// per-step estimates (saturating).
    pub fn estimated_witnesses(&self) -> u128 {
        self.steps
            .iter()
            .fold(1u128, |acc, s| acc.saturating_mul(s.estimate.max(1)))
    }

    /// Render the order as `R ⋈ S ⋈ T` for human consumption.
    pub fn describe(&self) -> String {
        self.steps
            .iter()
            .map(|s| s.relation.as_str())
            .collect::<Vec<_>>()
            .join(" ⋈ ")
    }
}

/// Estimated rows an access to `atom` visits once the variables in `bound`
/// are known, and whether that access is an indexed probe.
fn access_estimate<F: Facts + ?Sized>(
    facts: &F,
    cq: &ConjunctiveQuery,
    atom_idx: usize,
    bound: &BTreeSet<Var>,
) -> (u128, usize, bool) {
    let Some(atom) = cq.atoms.get(atom_idx) else {
        return (0, 0, false);
    };
    let size = facts.relation_len(&atom.relation);
    let bound_cols: Vec<usize> = atom
        .terms
        .iter()
        .enumerate()
        .filter_map(|(pos, t)| match t {
            Term::Const(_) => Some(pos),
            Term::Var(v) => bound.contains(v).then_some(pos),
        })
        .collect();
    if bound_cols.is_empty() || size == 0 {
        return (size as u128, 0, false);
    }
    let indexed = size >= INDEX_THRESHOLD;
    // Distinct-count statistics come from the shared base columns; the
    // view's delta is tiny by construction, so clamping the base estimate
    // to the view's visible size keeps it honest.
    let est = match facts.base().column_stats(&atom.relation) {
        Some(stats) if stats.rows() > 0 => stats.probe_estimate(&bound_cols).min(size as u128),
        // Overlay-only or empty-in-base relation: a bound column still
        // filters, assume the probe halves the scan as a mild preference.
        _ => ((size as u128) / 2).max(1),
    };
    (est.max(1), bound_cols.len(), indexed)
}

/// Pick a cost-based greedy join order for `cq`'s positive atoms.
///
/// Repeatedly selects the atom minimizing the key `(estimated access cost,
/// fewer bound columns, larger size, larger atom index)` — i.e. cheapest
/// first, preferring more boundness, smaller relations, then the earliest
/// atom in query order. Every component of the key is content-derived and
/// the last component is a strict total order, so the choice is
/// deterministic and independent of relation insertion order (pinned by
/// `stable_tie_break_under_relation_insertion_order`).
pub fn join_order<F: Facts + ?Sized>(facts: &F, cq: &ConjunctiveQuery) -> Vec<usize> {
    explain(facts, cq).order
}

/// [`join_order`] with per-step estimates, for observability surfaces.
pub fn explain<F: Facts + ?Sized>(facts: &F, cq: &ConjunctiveQuery) -> PlanExplain {
    let n = cq.atoms.len();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    let mut steps = Vec::with_capacity(n);
    let mut bound: BTreeSet<Var> = BTreeSet::new();
    // Selection key: (estimate, inverted bound-column count, size, atom
    // index) — see the comment at the comparison site.
    type Key = (u128, usize, usize, usize);
    while !remaining.is_empty() {
        let mut best: Option<(usize, Key, u128, bool)> = None;
        for (slot, &i) in remaining.iter().enumerate() {
            let Some(atom) = cq.atoms.get(i) else {
                continue;
            };
            let (est, bound_cols, indexed) = access_estimate(facts, cq, i, &bound);
            // Minimized lexicographically: cheaper access, then *more*
            // bound columns (inverted), then smaller relation, then the
            // earlier atom. The atom index makes the order total, so no
            // iteration order can perturb the outcome.
            let size = facts.relation_len(&atom.relation);
            let key = (est, usize::MAX - bound_cols, size, i);
            if best.as_ref().is_none_or(|(_, k, _, _)| key < *k) {
                best = Some((slot, key, est, indexed));
            }
        }
        // `remaining` is non-empty, so `best` is always set.
        let Some((slot, (_, _, _, atom_idx), est, indexed)) = best else {
            break;
        };
        let Some(atom) = cq.atoms.get(atom_idx) else {
            break;
        };
        order.push(atom_idx);
        steps.push(PlanStep {
            atom: atom_idx,
            relation: atom.relation.clone(),
            estimate: est,
            indexed,
        });
        bound.extend(atom.vars());
        remaining.remove(slot);
    }
    PlanExplain { order, steps }
}

// ---------------------------------------------------------------------------
// Query fingerprints
// ---------------------------------------------------------------------------

fn hash_both<T: Hash + ?Sized>(item: &T, h1: &mut FxHasher, h2: &mut FxHasher) {
    item.hash(h1);
    item.hash(h2);
}

fn hash_cq(cq: &ConjunctiveQuery, h1: &mut FxHasher, h2: &mut FxHasher) {
    // Field-by-field structural hash (ConjunctiveQuery itself carries a
    // VarTable that doesn't implement Hash and doesn't affect semantics
    // beyond variable indexes, which the terms already encode).
    hash_both(&cq.head, h1, h2);
    hash_both(&cq.atoms, h1, h2);
    hash_both(&cq.negated, h1, h2);
    hash_both(&cq.comparisons, h1, h2);
}

/// A 128-bit structural fingerprint of a union query: equal queries (same
/// disjuncts, atoms, terms, comparisons) always collide, differing ones
/// practically never (two independent seeded lanes).
pub fn ucq_signature(query: &UnionQuery) -> (u64, u64) {
    let mut h1 = FxHasher::default();
    let mut h2 = FxHasher::default();
    h2.write_u64(0x9e37_79b9_7f4a_7c15);
    hash_both(&query.disjuncts.len(), &mut h1, &mut h2);
    for cq in &query.disjuncts {
        hash_cq(cq, &mut h1, &mut h2);
    }
    (h1.finish(), h2.finish())
}

/// Every relation a union query mentions (positive and negated atoms),
/// sorted and deduplicated — the scope of the cache key's data
/// fingerprint.
pub fn mentioned_relations(query: &UnionQuery) -> Vec<&str> {
    let mut rels: Vec<&str> = query
        .disjuncts
        .iter()
        .flat_map(|cq| {
            cq.atoms
                .iter()
                .chain(cq.negated.iter())
                .map(|a| a.relation.as_str())
        })
        .collect();
    rels.sort_unstable();
    rels.dedup();
    rels
}

// ---------------------------------------------------------------------------
// The subplan cache
// ---------------------------------------------------------------------------

/// Hit/miss/size snapshot of the process-wide subplan cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to evaluate.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl PlanCacheStats {
    /// Hits as a share of all lookups, in percent ×100 (integer — the
    /// workspace keeps floats out of reporting math too). 0 when idle.
    pub fn hit_permille(&self) -> u64 {
        (self.hits * 1000)
            .checked_div(self.hits + self.misses)
            .unwrap_or(0)
    }
}

/// Entries the cache holds before wholesale eviction. Eviction clears the
/// whole map (deterministic — no recency bookkeeping, no clock): a cleared
/// entry is simply recomputed on next use, so answers never change.
const PLAN_CACHE_CAP: usize = 8192;

/// Cache key → shared answer set; the key is the folded 128-bit
/// (query, content, semantics) fingerprint.
type CacheMap = FxHashMap<(u64, u64), Arc<BTreeSet<Tuple>>>;

struct PlanCache {
    map: RwLock<CacheMap>,
    hits: AtomicU64,
    misses: AtomicU64,
}

static CACHE: OnceLock<PlanCache> = OnceLock::new();

fn cache() -> &'static PlanCache {
    CACHE.get_or_init(|| PlanCache {
        map: RwLock::new(FxHashMap::default()),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
    })
}

/// Snapshot the cache counters (process-wide).
pub fn plan_cache_stats() -> PlanCacheStats {
    let c = cache();
    let entries = c.map.read().unwrap_or_else(|e| e.into_inner()).len();
    PlanCacheStats {
        hits: c.hits.load(Ordering::Relaxed),
        misses: c.misses.load(Ordering::Relaxed),
        entries,
    }
}

/// Drop every cached entry and zero the counters. Used by tests, the bench
/// harness, and `cqa-core`'s incremental maintenance on structural resets.
pub fn reset_plan_cache() {
    let c = cache();
    c.map.write().unwrap_or_else(|e| e.into_inner()).clear();
    c.hits.store(0, Ordering::Relaxed);
    c.misses.store(0, Ordering::Relaxed);
}

/// The full cache key: query fragment × semantics × visible-content
/// fingerprint of the mentioned relations. `None` when the view cannot
/// certify a fingerprint — the caller then evaluates uncached.
fn cache_key<F: Facts + ?Sized>(
    facts: &F,
    query: &UnionQuery,
    mode: NullSemantics,
) -> Option<(u64, u64)> {
    let rels = mentioned_relations(query);
    let (d1, d2) = facts.plan_fingerprint(&rels)?;
    let (q1, q2) = ucq_signature(query);
    let mut h1 = FxHasher::default();
    let mut h2 = FxHasher::default();
    h2.write_u64(0x9e37_79b9_7f4a_7c15);
    let mode_tag: u8 = match mode {
        NullSemantics::Structural => 0,
        NullSemantics::Sql => 1,
    };
    hash_both(&(q1, q2, d1, d2, mode_tag), &mut h1, &mut h2);
    Some((h1.finish(), h2.finish()))
}

/// The null-filtered answer set of `query` over `facts` — the unit every
/// certain/possible CQA fold consumes — via the subplan cache when
/// `enabled` and the view can certify a content fingerprint.
///
/// Certain folds intersect (`retain`) against it and possible folds union
/// null-free answers into it, so the filtered set is exactly equivalent to
/// filtering at each fold site. Budgeted folds are unaffected: budget
/// ticks are charged per repair *before* evaluation, so a cache hit
/// changes elapsed work but never truncation points.
pub fn cached_certain_answers<F: Facts + ?Sized>(
    facts: &F,
    query: &UnionQuery,
    mode: NullSemantics,
    enabled: bool,
) -> Arc<BTreeSet<Tuple>> {
    let compute = || -> BTreeSet<Tuple> {
        crate::eval::eval_ucq(facts, query, mode)
            .into_iter()
            .filter(|t| !t.has_null())
            .collect()
    };
    let key = if enabled {
        cache_key(facts, query, mode)
    } else {
        None
    };
    let Some(key) = key else {
        return Arc::new(compute());
    };
    let c = cache();
    {
        let map = c.map.read().unwrap_or_else(|e| e.into_inner());
        if let Some(found) = map.get(&key) {
            c.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(found);
        }
    }
    c.misses.fetch_add(1, Ordering::Relaxed);
    let computed = Arc::new(compute());
    let mut map = c.map.write().unwrap_or_else(|e| e.into_inner());
    if map.len() >= PLAN_CACHE_CAP {
        map.clear();
    }
    // Two threads may race to the same key; both computed identical
    // content (the key certifies it), so keeping the first is sound.
    Arc::clone(map.entry(key).or_insert(computed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_query, parse_ucq};
    use cqa_relation::{tuple, Database, RelationSchema};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Big", ["A", "B"]))
            .unwrap();
        db.create_relation(RelationSchema::new("Small", ["A"]))
            .unwrap();
        for i in 0..100i64 {
            db.insert("Big", tuple![i % 10, i]).unwrap();
        }
        for i in 0..3i64 {
            db.insert("Small", tuple![i]).unwrap();
        }
        db
    }

    #[test]
    fn orderer_starts_from_the_cheapest_access() {
        let d = db();
        let q = parse_query("Q(a, b) :- Big(a, b), Small(a)").unwrap();
        let plan = explain(&d, &q);
        // Small (3 rows) scans cheaper than Big (100 rows); once `a` is
        // bound, Big is probed through its column-0 index (~10 rows).
        assert_eq!(plan.order, vec![1, 0]);
        assert!(plan.steps[1].indexed);
        assert!(plan.steps[1].estimate <= 10);
        assert!(!plan.describe().is_empty());
        assert!(plan.estimated_witnesses() >= 1);
    }

    #[test]
    fn constants_make_probes_attractive() {
        let d = db();
        let q = parse_query("Q(b) :- Big(3, b)").unwrap();
        let plan = explain(&d, &q);
        assert!(plan.steps[0].indexed);
        assert!(plan.steps[0].estimate <= 10);
    }

    #[test]
    fn stable_tie_break_under_relation_insertion_order() {
        // Two identical-statistics relations: the tie must resolve by atom
        // index regardless of which relation was created first.
        let build = |flip: bool| {
            let mut d = Database::new();
            let names = if flip { ["T2", "T1"] } else { ["T1", "T2"] };
            for n in names {
                d.create_relation(RelationSchema::new(n, ["A"])).unwrap();
            }
            for i in 0..5i64 {
                d.insert("T1", tuple![i]).unwrap();
                d.insert("T2", tuple![i]).unwrap();
            }
            d
        };
        let q = parse_query("Q(x) :- T1(x), T2(x)").unwrap();
        let a = join_order(&build(false), &q);
        let b = join_order(&build(true), &q);
        assert_eq!(a, b);
        assert_eq!(a, vec![0, 1]); // tie → earliest atom first
    }

    #[test]
    fn signatures_distinguish_queries_and_modes() {
        let q1 = parse_ucq("Q(x) :- Big(x, y)").unwrap();
        let q2 = parse_ucq("Q(x) :- Big(y, x)").unwrap();
        assert_eq!(ucq_signature(&q1), ucq_signature(&q1));
        assert_ne!(ucq_signature(&q1), ucq_signature(&q2));
        let d = db();
        let k_sql = cache_key(&d, &q1, NullSemantics::Sql).unwrap();
        let k_struct = cache_key(&d, &q1, NullSemantics::Structural).unwrap();
        assert_ne!(k_sql, k_struct);
    }

    #[test]
    fn mentioned_relations_are_sorted_and_deduped() {
        let q = parse_ucq("Q(x) :- Small(x), Big(x, y), not Small(y)\nQ(x) :- Big(x, x)").unwrap();
        assert_eq!(mentioned_relations(&q), vec!["Big", "Small"]);
    }

    #[test]
    fn cache_hits_on_identical_content_and_misses_after_mutation() {
        reset_plan_cache();
        let mut d = db();
        let q = parse_ucq("Q(a) :- Big(a, b), Small(a)").unwrap();
        let first = cached_certain_answers(&d, &q, NullSemantics::Sql, true);
        let again = cached_certain_answers(&d, &q, NullSemantics::Sql, true);
        assert!(Arc::ptr_eq(&first, &again));
        let s = plan_cache_stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        // Uncached evaluation agrees byte for byte.
        let reference = cached_certain_answers(&d, &q, NullSemantics::Sql, false);
        assert_eq!(*first, *reference);
        // A mutation re-mints the stamp: next lookup misses and sees the
        // new row.
        d.insert("Small", tuple![7]).unwrap();
        let after = cached_certain_answers(&d, &q, NullSemantics::Sql, true);
        assert_eq!(plan_cache_stats().misses, 2);
        assert!(after.len() > first.len());
        reset_plan_cache();
        assert_eq!(plan_cache_stats(), PlanCacheStats::default());
    }

    #[test]
    fn hit_permille_is_integer_math() {
        let s = PlanCacheStats {
            hits: 3,
            misses: 1,
            entries: 0,
        };
        assert_eq!(s.hit_permille(), 750);
        assert_eq!(PlanCacheStats::default().hit_permille(), 0);
    }
}
