//! Rendering first-order queries as SQL.
//!
//! Example 3.4 of the paper ends by showing that the consistent-answer
//! rewriting *is* an ordinary SQL query with a `NOT EXISTS` subselect —
//! "posed to and answered from the original instance as usual". This module
//! makes that concrete: it renders the fragment of [`FoQuery`] that the
//! rewriters emit (conjunctions of atoms and comparisons, with arbitrarily
//! nested `¬∃` blocks) into executable SQL, so a rewriting produced by
//! `cqa-core` can be shipped to any relational DBMS.

use crate::ast::{Atom, CmpOp, Comparison, Fo, FoQuery, Term, Var};
use cqa_relation::{Database, RelationError, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Render a value as a SQL literal.
fn sql_literal(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => f.to_string(),
        Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        Value::Null(_) => "NULL".to_string(),
    }
}

fn sql_op(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "=",
        CmpOp::Ne => "<>",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}

fn has_atoms(fo: &Fo) -> bool {
    match fo {
        Fo::Atom(_) => true,
        Fo::Cmp(_) => false,
        Fo::And(parts) | Fo::Or(parts) => parts.iter().any(has_atoms),
        Fo::Not(g) => has_atoms(g),
        Fo::Exists(_, g) => has_atoms(g),
    }
}

/// One query scope: its FROM aliases and the column each variable first
/// bound to (variables from enclosing scopes stay visible — correlated
/// subqueries).
struct Scope<'a> {
    db: &'a Database,
    alias_counter: &'a mut usize,
    from: Vec<String>,
    conditions: Vec<String>,
    bindings: BTreeMap<Var, String>,
}

impl<'a> Scope<'a> {
    fn child(&mut self) -> (Vec<String>, Vec<String>, BTreeMap<Var, String>) {
        // Children share the alias counter and *see* the parent bindings.
        (Vec::new(), Vec::new(), self.bindings.clone())
    }

    fn add_atom(&mut self, atom: &Atom) -> Result<(), RelationError> {
        let rel = self.db.require_relation(&atom.relation)?;
        let schema = rel.schema().clone();
        *self.alias_counter += 1;
        let alias = format!("t{}", self.alias_counter);
        self.from.push(format!("{} AS {alias}", atom.relation));
        for (pos, term) in atom.terms.iter().enumerate() {
            let col = format!("{alias}.{}", schema.attribute_name(pos));
            match term {
                Term::Const(c) => self.conditions.push(format!("{col} = {}", sql_literal(c))),
                Term::Var(v) => match self.bindings.get(v) {
                    Some(prev) => self.conditions.push(format!("{col} = {prev}")),
                    None => {
                        self.bindings.insert(*v, col);
                    }
                },
            }
        }
        Ok(())
    }

    fn term_ref(&self, t: &Term) -> Result<String, RelationError> {
        match t {
            Term::Const(c) => Ok(sql_literal(c)),
            Term::Var(v) => self.bindings.get(v).cloned().ok_or_else(|| {
                RelationError::Parse(
                    "SQL rendering: comparison variable not bound by any atom in scope".into(),
                )
            }),
        }
    }

    fn add_comparison(&mut self, c: &Comparison) -> Result<(), RelationError> {
        let left = self.term_ref(&c.left)?;
        let right = self.term_ref(&c.right)?;
        self.conditions
            .push(format!("{left} {} {right}", sql_op(c.op)));
        Ok(())
    }

    /// Process one conjunct; atoms extend FROM, everything else becomes a
    /// WHERE condition.
    fn add(&mut self, fo: &Fo) -> Result<(), RelationError> {
        match fo {
            Fo::Atom(a) => self.add_atom(a),
            Fo::Cmp(c) => self.add_comparison(c),
            Fo::And(parts) => {
                // Atoms first so comparisons/negations see their bindings.
                for p in parts.iter().filter(|p| matches!(p, Fo::Atom(_))) {
                    self.add(p)?;
                }
                for p in parts.iter().filter(|p| !matches!(p, Fo::Atom(_))) {
                    self.add(p)?;
                }
                Ok(())
            }
            Fo::Exists(_, inner) => self.add(inner),
            other => {
                let cond = self.condition(other)?;
                self.conditions.push(cond);
                Ok(())
            }
        }
    }

    /// Render a subformula as a single SQL condition. Atom-bearing
    /// subformulas become (correlated) `EXISTS` subselects; pure
    /// comparison trees render in place.
    fn condition(&mut self, fo: &Fo) -> Result<String, RelationError> {
        match fo {
            Fo::Cmp(c) => {
                let left = self.term_ref(&c.left)?;
                let right = self.term_ref(&c.right)?;
                Ok(format!("{left} {} {right}", sql_op(c.op)))
            }
            Fo::Not(g) => {
                let inner = self.condition(g)?;
                // Cosmetic: `NOT EXISTS (…)` reads better than
                // `NOT (EXISTS (…))` and is what the paper prints.
                if inner.starts_with("EXISTS (") {
                    Ok(format!("NOT {inner}"))
                } else {
                    Ok(format!("NOT ({inner})"))
                }
            }
            Fo::And(parts) if !has_atoms(fo) => {
                let rendered: Vec<String> = parts
                    .iter()
                    .map(|p| self.condition(p))
                    .collect::<Result<_, _>>()?;
                Ok(rendered.join(" AND "))
            }
            Fo::Exists(_, g) => self.render_exists(g),
            Fo::Atom(_) | Fo::And(_) => self.render_exists(fo),
            Fo::Or(_) => Err(RelationError::Parse(
                "SQL rendering: disjunction is outside the rewriting fragment".into(),
            )),
        }
    }

    /// Render `EXISTS (SELECT 1 FROM … WHERE …)` for a subformula.
    fn render_exists(&mut self, fo: &Fo) -> Result<String, RelationError> {
        let (from, conditions, bindings) = self.child();
        let mut sub = Scope {
            db: self.db,
            alias_counter: self.alias_counter,
            from,
            conditions,
            bindings,
        };
        sub.add(fo)?;
        if sub.from.is_empty() {
            return Err(RelationError::Parse(
                "SQL rendering: negated subformula has no atoms".into(),
            ));
        }
        let mut s = String::from("EXISTS (SELECT 1 FROM ");
        s.push_str(&sub.from.join(", "));
        if !sub.conditions.is_empty() {
            s.push_str(" WHERE ");
            s.push_str(&sub.conditions.join(" AND "));
        }
        s.push(')');
        Ok(s)
    }
}

/// Render an [`FoQuery`] of the rewriting fragment as SQL against the
/// schemas of `db`. Boolean queries render as `SELECT EXISTS (…)`.
pub fn fo_to_sql(q: &FoQuery, db: &Database) -> Result<String, RelationError> {
    let mut counter = 0usize;
    let mut scope = Scope {
        db,
        alias_counter: &mut counter,
        from: Vec::new(),
        conditions: Vec::new(),
        bindings: BTreeMap::new(),
    };
    scope.add(&q.formula)?;

    if q.free.is_empty() {
        // Boolean query.
        let mut s = String::from("SELECT EXISTS (SELECT 1 FROM ");
        if scope.from.is_empty() {
            return Err(RelationError::Parse(
                "SQL rendering: query has no atoms".into(),
            ));
        }
        s.push_str(&scope.from.join(", "));
        if !scope.conditions.is_empty() {
            s.push_str(" WHERE ");
            s.push_str(&scope.conditions.join(" AND "));
        }
        s.push(')');
        return Ok(s);
    }

    let mut select_items = Vec::with_capacity(q.free.len());
    for v in &q.free {
        let col = scope.bindings.get(v).ok_or_else(|| {
            RelationError::Parse(format!(
                "SQL rendering: free variable `{}` not bound by an atom",
                q.vars.name(*v)
            ))
        })?;
        select_items.push(format!("{col} AS {}", q.vars.name(*v)));
    }
    let mut s = String::from("SELECT DISTINCT ");
    s.push_str(&select_items.join(", "));
    s.push_str(" FROM ");
    s.push_str(&scope.from.join(", "));
    if !scope.conditions.is_empty() {
        let _ = write!(s, " WHERE {}", scope.conditions.join(" AND "));
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_fo;
    use cqa_relation::{tuple, RelationSchema};

    fn employee_db() -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Employee", ["Name", "Salary"]))
            .unwrap();
        db.insert("Employee", tuple!["page", 5000]).unwrap();
        db
    }

    #[test]
    fn example_3_4_renders_the_papers_sql() {
        // Q'(x, y): Employee(x, y) ∧ ¬∃z(Employee(x, z) ∧ z ≠ y)
        let q = parse_fo("x, y : Employee(x, y) & !exists z (Employee(x, z) & z != y)").unwrap();
        let sql = fo_to_sql(&q, &employee_db()).unwrap();
        assert_eq!(
            sql,
            "SELECT DISTINCT t1.Name AS x, t1.Salary AS y FROM Employee AS t1 \
             WHERE NOT EXISTS (SELECT 1 FROM Employee AS t2 \
             WHERE t2.Name = t1.Name AND t2.Salary <> t1.Salary)"
        );
    }

    #[test]
    fn join_with_constants() {
        let mut db = employee_db();
        db.create_relation(RelationSchema::new("Dept", ["Name", "Unit"]))
            .unwrap();
        let q = parse_fo("x : exists y (Employee(x, y) & Dept(x, 'cs'))").unwrap();
        let sql = fo_to_sql(&q, &db).unwrap();
        assert_eq!(
            sql,
            "SELECT DISTINCT t1.Name AS x FROM Employee AS t1, Dept AS t2 \
             WHERE t2.Name = t1.Name AND t2.Unit = 'cs'"
        );
    }

    #[test]
    fn boolean_query_renders_exists() {
        let q = parse_fo("exists x, y (Employee(x, y))").unwrap();
        let sql = fo_to_sql(&q, &employee_db()).unwrap();
        assert_eq!(sql, "SELECT EXISTS (SELECT 1 FROM Employee AS t1)");
    }

    #[test]
    fn nested_not_exists() {
        // The two-atom key rewriting shape: R ∧ ∀-block containing another
        // ∃-block.
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("R", ["K", "V"]))
            .unwrap();
        db.create_relation(RelationSchema::new("S", ["K", "V"]))
            .unwrap();
        let q =
            parse_fo("x : exists y (R(x, y) & !exists z (R(x, z) & !exists w (S(z, w))))").unwrap();
        let sql = fo_to_sql(&q, &db).unwrap();
        assert!(sql.contains("NOT EXISTS (SELECT 1 FROM R AS t2"));
        assert!(sql.contains("NOT EXISTS (SELECT 1 FROM S AS t3"));
    }

    #[test]
    fn generated_key_rewritings_are_renderable() {
        // The exact shape `rewrite_key_query` emits for a single-atom query:
        // ∃y (Emp(x, y) ∧ ¬∃v (Emp(x, v) ∧ ¬(v = y))).
        let q = parse_fo("x : exists y (Emp(x, y) & !exists v (Emp(x, v) & !(v = y)))").unwrap();
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Emp", ["A", "B"]))
            .unwrap();
        let sql = fo_to_sql(&q, &db).unwrap();
        assert_eq!(
            sql,
            "SELECT DISTINCT t1.A AS x FROM Emp AS t1 \
             WHERE NOT EXISTS (SELECT 1 FROM Emp AS t2 \
             WHERE t2.A = t1.A AND NOT (t2.B = t1.B))"
        );
    }

    #[test]
    fn string_literals_escape_quotes() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("P", ["N"])).unwrap();
        // (The query parser has no quote-escape syntax; the escaping under
        // test is the *renderer's*, exercised directly below.)
        let q2 = parse_fo("x : P(x)").unwrap();
        let sql = fo_to_sql(&q2, &db).unwrap();
        assert_eq!(sql, "SELECT DISTINCT t1.N AS x FROM P AS t1");
        assert_eq!(sql_literal(&Value::str("o'brien")), "'o''brien'");
    }

    #[test]
    fn unknown_relation_is_an_error() {
        let q = parse_fo("x : Nothing(x)").unwrap();
        assert!(fo_to_sql(&q, &employee_db()).is_err());
    }

    #[test]
    fn disjunction_rejected_with_clear_message() {
        let q = parse_fo("x : Employee(x, 'a') | Employee(x, 'b')").unwrap();
        let e = fo_to_sql(&q, &employee_db()).unwrap_err();
        assert!(e.to_string().contains("disjunction"));
    }
}
