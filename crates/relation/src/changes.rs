//! Mutation epochs and the per-relation change log.
//!
//! Every mutation of a [`crate::Database`] bumps a monotone **epoch** and
//! appends one [`Change`] record naming the touched relation and tid. A
//! consumer that cached an artifact at epoch `e` can later ask
//! [`crate::Database::changes_since`]`(e)` for exactly the mutations it
//! missed and revalidate incrementally instead of recomputing from scratch.
//!
//! The log is bounded: once it grows past twice its capacity the oldest
//! half is compacted away. `changes_since` then answers `None` for epochs
//! older than the retained window, which consumers must treat as "recompute
//! from scratch" — never as "nothing changed".

use crate::tuple::Tid;

/// One mutation record: which relation (by index into
/// [`crate::Database::relations`]) and which tid were touched.
///
/// Relations are append-only in the database (never removed), so the index
/// is a stable name across the log's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Change {
    /// A tuple was inserted (fresh tid).
    Insert {
        /// Index of the touched relation in [`crate::Database::relations`].
        relation: usize,
        /// The freshly assigned tid.
        tid: Tid,
    },
    /// A tuple was deleted.
    Delete {
        /// Index of the touched relation in [`crate::Database::relations`].
        relation: usize,
        /// The removed tid.
        tid: Tid,
    },
    /// A tuple's content changed in place (same tid, new values).
    Update {
        /// Index of the touched relation in [`crate::Database::relations`].
        relation: usize,
        /// The updated tid.
        tid: Tid,
    },
}

impl Change {
    /// Index of the relation this change touched.
    pub fn relation(&self) -> usize {
        match *self {
            Change::Insert { relation, .. }
            | Change::Delete { relation, .. }
            | Change::Update { relation, .. } => relation,
        }
    }

    /// The tid this change touched.
    pub fn tid(&self) -> Tid {
        match *self {
            Change::Insert { tid, .. }
            | Change::Delete { tid, .. }
            | Change::Update { tid, .. } => tid,
        }
    }
}

/// Default number of retained change records (see [`ChangeLog`]).
pub const DEFAULT_LOG_CAPACITY: usize = 4096;

/// A bounded, epoch-indexed log of recent mutations.
///
/// Entry `i` of `entries` happened at epoch `first_epoch + i + 1` (epochs
/// count *completed* mutations: a database at epoch `e` has `e` mutations
/// behind it, and `changes_since(e0)` returns the records for epochs
/// `e0+1 ..= e`).
#[derive(Debug, Clone)]
pub struct ChangeLog {
    /// Epoch of the database state just before `entries[0]` was applied.
    first_epoch: u64,
    entries: Vec<Change>,
    capacity: usize,
}

impl Default for ChangeLog {
    fn default() -> ChangeLog {
        ChangeLog::with_capacity(DEFAULT_LOG_CAPACITY)
    }
}

impl ChangeLog {
    /// A log retaining at least `capacity` records before compaction.
    pub fn with_capacity(capacity: usize) -> ChangeLog {
        ChangeLog {
            first_epoch: 0,
            entries: Vec::new(),
            capacity: capacity.max(1),
        }
    }

    /// Append a record for the mutation that produced `epoch` (the *new*
    /// epoch, i.e. `old_epoch + 1`). Compacts the oldest half once the log
    /// exceeds twice its capacity.
    pub fn push(&mut self, change: Change) {
        self.entries.push(change);
        if self.entries.len() > self.capacity * 2 {
            let drop = self.entries.len() - self.capacity;
            self.entries.drain(..drop);
            self.first_epoch += drop as u64;
        }
    }

    /// The records for epochs `since+1 ..= now`, oldest first, or `None` if
    /// `since` predates the retained window (consumer must recompute) or
    /// lies in the future (stale consumer state from a different database).
    ///
    /// **Complete-or-`None` contract.** `Some(slice)` always means *the
    /// whole delta*: `slice.len() == now - since`, one record per missed
    /// epoch. Consumers such as `IncrementalState::refresh_budgeted` treat
    /// `Some` as a complete delta and would silently maintain wrong state
    /// off a short slice, so any incoherence between the retained window
    /// and `now` (a log that is missing recent records, or a `now` from a
    /// different database identity) answers `None` — recompute — instead.
    /// The exact-compaction/reset boundary `since == first_epoch` is the
    /// interesting case: it returns the **full retained window** (which is
    /// complete precisely when `now == first_epoch + len`), never a prefix
    /// of one.
    pub fn changes_since(&self, since: u64, now: u64) -> Option<&[Change]> {
        if since > now || since < self.first_epoch {
            return None;
        }
        let skip = usize::try_from(since - self.first_epoch).ok()?;
        let tail = self.entries.get(skip..)?;
        // Coherence check: the tail must cover epochs `since+1 ..= now`
        // exactly. A mismatch means the log and `now` disagree about how
        // many mutations happened — returning the tail anyway would hand
        // the consumer a silently short (or overlong) delta.
        if (tail.len() as u64) != now - since {
            return None;
        }
        Some(tail)
    }

    /// Drop all records and mark everything before `epoch` as unavailable.
    /// Used for structural mutations (e.g. new relations) that are not
    /// representable as tuple-level changes.
    pub fn reset(&mut self, epoch: u64) {
        self.entries.clear();
        self.first_epoch = epoch;
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff no records are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn changes_since_windows() {
        let mut log = ChangeLog::with_capacity(8);
        for i in 0..5u64 {
            log.push(Change::Insert {
                relation: 0,
                tid: Tid(i + 1),
            });
        }
        // All five from the start.
        let all = log.changes_since(0, 5).unwrap();
        assert_eq!(all.len(), 5);
        // Tail only.
        let tail = log.changes_since(3, 5).unwrap();
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].tid(), Tid(4));
        // Caught up: empty slice, not None.
        assert_eq!(log.changes_since(5, 5).unwrap().len(), 0);
        // Future epoch: None.
        assert!(log.changes_since(6, 5).is_none());
    }

    #[test]
    fn compaction_forgets_oldest() {
        let mut log = ChangeLog::with_capacity(4);
        for i in 0..9u64 {
            log.push(Change::Delete {
                relation: 1,
                tid: Tid(i + 1),
            });
        }
        // 9 entries exceeds 2*4: compacted down to 4, first_epoch = 5.
        assert_eq!(log.len(), 4);
        assert!(log.changes_since(0, 9).is_none());
        assert!(log.changes_since(4, 9).is_none());
        let tail = log.changes_since(5, 9).unwrap();
        assert_eq!(tail.len(), 4);
        assert_eq!(tail[0].tid(), Tid(6));
    }

    /// Regression (PR 9): the exact-compaction-boundary case. A consumer
    /// cached at `since == first_epoch` right after a compaction must get
    /// the full retained window — complete, `len == now - since` — and a
    /// consumer whose `now` disagrees with the log (short log, foreign
    /// epoch counter) must get `None`, never a silently short slice.
    #[test]
    fn boundary_at_first_epoch_is_complete_or_none() {
        let mut log = ChangeLog::with_capacity(4);
        for i in 0..9u64 {
            log.push(Change::Insert {
                relation: 0,
                tid: Tid(i + 1),
            });
        }
        // Compacted: first_epoch = 5, entries cover epochs 6..=9.
        let now = 9;
        let window = log.changes_since(5, now).unwrap();
        assert_eq!(window.len(), (now - 5) as usize, "full retained window");
        assert_eq!(window.first().map(Change::tid), Some(Tid(6)));
        assert_eq!(window.last().map(Change::tid), Some(Tid(9)));
        // One before the boundary: recompute.
        assert!(log.changes_since(4, now).is_none());
        // Incoherent `now` (log is missing records for epochs 10..=12, e.g.
        // a consumer tracking a different database identity): must be None —
        // the old behaviour returned the 4-entry tail as if it were the
        // complete 7-epoch delta.
        assert!(log.changes_since(5, 12).is_none());
        assert!(log.changes_since(7, 12).is_none());
        // `now` behind the log is equally incoherent.
        assert!(log.changes_since(5, 7).is_none());
        // Caught-up boundary stays an empty-but-complete slice.
        assert_eq!(log.changes_since(9, 9).unwrap().len(), 0);
    }

    /// Regression (PR 9): same boundary immediately after `reset` — the
    /// reset epoch itself is "caught up" (`Some(&[])`), everything before
    /// it is unavailable (`None`), and a freshly pushed record makes the
    /// boundary return exactly that one-record window.
    #[test]
    fn boundary_after_reset_is_complete_or_none() {
        let mut log = ChangeLog::with_capacity(4);
        for i in 0..3u64 {
            log.push(Change::Insert {
                relation: 0,
                tid: Tid(i + 1),
            });
        }
        log.reset(4); // structural mutation produced epoch 4
        assert_eq!(log.changes_since(4, 4).unwrap().len(), 0);
        assert!(log.changes_since(3, 4).is_none());
        assert!(log.changes_since(0, 4).is_none());
        log.push(Change::Delete {
            relation: 1,
            tid: Tid(9),
        });
        let window = log.changes_since(4, 5).unwrap();
        assert_eq!(window.len(), 1);
        assert_eq!(window.first().map(Change::tid), Some(Tid(9)));
        // Still never a short slice when `now` runs ahead of the log.
        assert!(log.changes_since(4, 6).is_none());
    }

    #[test]
    fn reset_invalidates_everything() {
        let mut log = ChangeLog::with_capacity(4);
        log.push(Change::Insert {
            relation: 0,
            tid: Tid(1),
        });
        log.reset(1);
        assert!(log.is_empty());
        assert!(log.changes_since(0, 1).is_none());
        assert_eq!(log.changes_since(1, 1).unwrap().len(), 0);
    }
}
