//! A small, human-readable text codec for databases.
//!
//! Format (one relation per block):
//!
//! ```text
//! # comment
//! @relation Supply(Company, Receiver, Item)
//! 'C1', 'R1', 'I1'
//! 'C2', 'R2', 'I2'
//!
//! @relation Articles(Item)
//! 'I1'
//! ```
//!
//! Values: single-quoted strings (with `''` escaping a quote), integers,
//! floats (containing `.`), `true`/`false`, `NULL` and labelled `NULL_k`.
//! Round-trips exactly ([`save`] ∘ [`load`] = identity on content); tids are
//! reassigned in file order on load.

use crate::dict::{ValueDict, Vid};
use crate::error::RelationError;
use crate::instance::Database;
use crate::schema::RelationSchema;
use crate::value::Value;
use crate::Result;
use std::fmt::Write as _;

/// Serialize a database to the text format.
pub fn save(db: &Database) -> String {
    let mut out = String::new();
    for rel in db.relations() {
        let _ = write!(out, "@relation {}(", rel.name());
        for (i, a) in rel.schema().attributes().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&a.name);
        }
        out.push_str(")\n");
        for t in rel.tuples() {
            let mut first = true;
            for v in t.iter() {
                if !std::mem::take(&mut first) {
                    out.push_str(", ");
                }
                write_value(&mut out, v);
            }
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Str(s) => {
            out.push('\'');
            for c in s.chars() {
                if c == '\'' {
                    out.push('\'');
                }
                out.push(c);
            }
            out.push('\'');
        }
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => {
            if f.fract() == 0.0 && f.is_finite() {
                let _ = write!(out, "{f:.1}");
            } else {
                let _ = write!(out, "{f}");
            }
        }
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Null(0) => out.push_str("NULL"),
        Value::Null(l) => {
            let _ = write!(out, "NULL_{l}");
        }
    }
}

/// Parse a database from the text format.
///
/// Malformed input is reported as [`RelationError::Codec`] with the 1-based
/// line and column of the offending character — never a panic, whatever the
/// bytes (see the `no_panic_inputs` fuzz suite).
pub fn load(input: &str) -> Result<Database> {
    let mut db = Database::new();
    let mut current: Option<String> = None;
    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.trim();
        let indent = raw.chars().take_while(|c| c.is_whitespace()).count();
        let err = |column: usize, detail: String| RelationError::Codec {
            line: lineno + 1,
            column,
            detail,
        };
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(decl) = line.strip_prefix("@relation ") {
            let (name, rest) = decl
                .split_once('(')
                .ok_or_else(|| err(indent + 1, "expected `Name(attrs…)`".into()))?;
            let attrs = rest
                .trim_end_matches(')')
                .split(',')
                .map(|a| a.trim().to_string())
                .filter(|a| !a.is_empty())
                .collect::<Vec<_>>();
            db.create_relation(RelationSchema::new(name.trim(), attrs))?;
            current = Some(name.trim().to_string());
            continue;
        }
        let rel = current
            .clone()
            .ok_or_else(|| err(indent + 1, "data row before any @relation header".into()))?;
        let vids = parse_row(line, db.dict()).map_err(|(col, msg)| err(indent + col, msg))?;
        db.insert_vids(&rel, vids.into())?;
    }
    Ok(db)
}

/// Tokenize one data row, interning each value straight into `dict`.
///
/// This is the load fast path: quoted strings go through
/// [`ValueDict::intern_str`] (no `Arc<str>` allocation when the content has
/// been seen before) and small values encode inline in their [`Vid`] — no
/// intermediate [`crate::Tuple`] is ever built. Errors carry the 1-based
/// column (in characters, relative to the trimmed line) where the problem
/// starts; malformed input never panics.
fn parse_row(line: &str, dict: &ValueDict) -> std::result::Result<Vec<Vid>, (usize, String)> {
    let chars: Vec<char> = line.chars().collect();
    let mut values = Vec::new();
    let mut i = 0;
    loop {
        // Skip whitespace.
        while chars.get(i).is_some_and(|c| c.is_whitespace()) {
            i += 1;
        }
        match chars.get(i) {
            None => break,
            Some('\'') => {
                let start = i;
                i += 1;
                let mut s = String::new();
                let mut closed = false;
                while let Some(&c) = chars.get(i) {
                    i += 1;
                    if c != '\'' {
                        s.push(c);
                    } else if chars.get(i) == Some(&'\'') {
                        // `''` escapes a quote — including a trailing `''`
                        // with no closing quote after it, which used to
                        // slip past the tokenizer.
                        i += 1;
                        s.push('\'');
                    } else {
                        closed = true;
                        break;
                    }
                }
                if !closed {
                    return Err((start + 1, "unterminated string".into()));
                }
                values.push(dict.intern_str(&s));
            }
            Some(_) => {
                let start = i;
                let mut token = String::new();
                while let Some(&c) = chars.get(i) {
                    if c == ',' {
                        break;
                    }
                    token.push(c);
                    i += 1;
                }
                let token = token.trim();
                let v = parse_bare(token).map_err(|msg| (start + 1, msg))?;
                values.push(dict.intern(&v));
            }
        }
        // Skip to the next comma (or end).
        while chars.get(i).is_some_and(|c| c.is_whitespace()) {
            i += 1;
        }
        match chars.get(i) {
            None => break,
            Some(',') => {
                i += 1;
                continue;
            }
            Some(c) => return Err((i + 1, format!("expected `,`, found `{c}`"))),
        }
    }
    Ok(values)
}

fn parse_bare(token: &str) -> std::result::Result<Value, String> {
    match token {
        "NULL" => return Ok(Value::NULL),
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        "" => return Err("empty value".into()),
        _ => {}
    }
    if let Some(rest) = token.strip_prefix("NULL_") {
        return rest
            .parse::<u32>()
            .map(Value::Null)
            .map_err(|_| format!("bad null label `{token}`"));
    }
    if token.contains('.') {
        return token
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| format!("bad float `{token}`"));
    }
    token
        .parse::<i64>()
        .map(Value::Int)
        .map_err(|_| format!("bad value `{token}` (strings must be quoted)"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn sample() -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new(
            "Supply",
            ["Company", "Receiver", "Item"],
        ))
        .unwrap();
        db.create_relation(RelationSchema::new("Mixed", ["A", "B", "C", "D"]))
            .unwrap();
        db.insert("Supply", tuple!["C1", "R1", "I1"]).unwrap();
        db.insert("Supply", tuple!["C2", "R2", "I2"]).unwrap();
        db.insert(
            "Mixed",
            Tuple::new(vec![
                Value::Int(-5),
                Value::Float(2.5),
                Value::Bool(true),
                Value::Null(3),
            ]),
        )
        .unwrap();
        db
    }

    #[test]
    fn roundtrip_preserves_content() {
        let db = sample();
        let text = save(&db);
        let back = load(&text).unwrap();
        assert!(db.same_content(&back));
        // Schema names survive too.
        assert_eq!(
            back.relation("Supply").unwrap().schema().attribute_name(1),
            "Receiver"
        );
    }

    #[test]
    fn quotes_escape() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("R", ["A"])).unwrap();
        db.insert("R", tuple!["o'brien"]).unwrap();
        let text = save(&db);
        assert!(text.contains("'o''brien'"));
        let back = load(&text).unwrap();
        assert!(db.same_content(&back));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# a file\n\n@relation R(A)\n# inline\n1\n\n2\n";
        let db = load(text).unwrap();
        assert_eq!(db.relation("R").unwrap().len(), 2);
    }

    #[test]
    fn errors_are_reported_with_lines() {
        assert!(load("1, 2\n").unwrap_err().to_string().contains("line 1"));
        assert!(load("@relation R(A)\nunquoted\n")
            .unwrap_err()
            .to_string()
            .contains("line 2"));
        assert!(load("@relation R A\n").is_err());
    }

    #[test]
    fn errors_carry_line_and_column() {
        let err = load("@relation R(A, B)\n1, bad!\n").unwrap_err();
        assert_eq!(
            err,
            RelationError::Codec {
                line: 2,
                column: 4,
                detail: "bad value `bad!` (strings must be quoted)".into(),
            }
        );
        // Leading whitespace counts toward the column.
        let err = load("@relation R(A)\n  'x\n").unwrap_err();
        assert_eq!(
            err,
            RelationError::Codec {
                line: 2,
                column: 3,
                detail: "unterminated string".into(),
            }
        );
    }

    #[test]
    fn trailing_escape_is_an_error_not_a_panic() {
        // A string ending in an escaped quote with no closing quote: the
        // tokenizer must report it, not panic or mis-parse.
        for input in [
            "@relation R(A)\n'a''\n",
            "@relation R(A)\n'''\n",
            "@relation R(A)\n'\n",
            "@relation R(A)\n'a'',\n",
        ] {
            let err = load(input).unwrap_err();
            assert!(
                err.to_string().contains("unterminated string"),
                "input {input:?} gave {err}"
            );
        }
        // But a properly closed escaped quote still parses.
        let db = load("@relation R(A)\n''''\n").unwrap();
        assert_eq!(db.relation("R").unwrap().len(), 1);
    }

    #[test]
    fn float_formatting_roundtrips() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("F", ["X"])).unwrap();
        db.insert("F", Tuple::new(vec![Value::Float(2.0)])).unwrap();
        db.insert("F", Tuple::new(vec![Value::Float(0.125)]))
            .unwrap();
        let back = load(&save(&db)).unwrap();
        assert!(db.same_content(&back));
    }

    use crate::Tuple;
}
