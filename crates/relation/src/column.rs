//! Columnar row storage: per-attribute `Vec<Vid>` plus a sorted tid spine.
//!
//! A [`ColumnStore`] is the physical layout behind [`crate::Relation`]: one
//! dense `Vec<Vid>` per attribute, aligned with a strictly increasing vector
//! of tids. A stored cell is 4 bytes regardless of the value it encodes;
//! the value itself lives (once) in the shared [`crate::ValueDict`].
//!
//! Rows are addressed by *position*; positions are dense and shift on
//! deletion, so anything that must survive mutation (indexes, row caches)
//! is rebuilt rather than patched. Tids are the stable names.

use crate::dict::Vid;
use crate::fxhash::{FxHashMap, WordHasher};
use crate::tuple::Tid;
use std::hash::Hasher;

/// Column-oriented storage for one relation.
#[derive(Debug, Clone, Default)]
pub struct ColumnStore {
    /// Strictly increasing tids, one per row.
    tids: Vec<Tid>,
    /// One vid column per attribute; every column is `tids.len()` long.
    columns: Vec<Vec<Vid>>,
}

impl ColumnStore {
    /// Empty store with `arity` columns.
    pub fn new(arity: usize) -> ColumnStore {
        ColumnStore {
            tids: Vec::new(),
            columns: vec![Vec::new(); arity],
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.tids.len()
    }

    /// True iff the store holds no rows.
    pub fn is_empty(&self) -> bool {
        self.tids.is_empty()
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// One whole column, row-aligned.
    pub fn column(&self, col: usize) -> &[Vid] {
        self.columns.get(col).map_or(&[], Vec::as_slice)
    }

    /// The tid spine, row-aligned and strictly increasing.
    pub fn tids(&self) -> &[Tid] {
        &self.tids
    }

    /// Tid of the row at `pos`.
    pub fn tid_at(&self, pos: usize) -> Option<Tid> {
        self.tids.get(pos).copied()
    }

    /// Vid of cell `(pos, col)`.
    pub fn vid_at(&self, pos: usize, col: usize) -> Option<Vid> {
        self.columns.get(col).and_then(|c| c.get(pos)).copied()
    }

    /// Position of the row with this tid (binary search on the spine).
    pub fn position_of(&self, tid: Tid) -> Option<usize> {
        self.tids.binary_search(&tid).ok()
    }

    /// Append a row. `tid` must exceed every tid already present and
    /// `vids.len()` must equal the arity; violations are rejected (`false`)
    /// rather than corrupting the spine.
    pub fn push(&mut self, tid: Tid, vids: &[Vid]) -> bool {
        if vids.len() != self.columns.len() {
            return false;
        }
        if self.tids.last().is_some_and(|&last| last >= tid) {
            return false;
        }
        self.tids.push(tid);
        for (col, &vid) in self.columns.iter_mut().zip(vids) {
            col.push(vid);
        }
        true
    }

    /// Remove the row with this tid, returning its vids. `O(n)` shift; bulk
    /// rebuilds (`with_changes`) filter-copy instead.
    pub fn remove(&mut self, tid: Tid) -> Option<Box<[Vid]>> {
        let pos = self.position_of(tid)?;
        self.tids.remove(pos);
        Some(self.columns.iter_mut().map(|c| c.remove(pos)).collect())
    }

    /// Overwrite one cell in place (the attribute-update primitive). The row
    /// keeps its tid and position.
    pub fn set_vid(&mut self, pos: usize, col: usize, vid: Vid) -> bool {
        match self.columns.get_mut(col).and_then(|c| c.get_mut(pos)) {
            Some(cell) => {
                *cell = vid;
                true
            }
            None => false,
        }
    }

    /// The row at `pos` as a borrowed accessor.
    pub fn row(&self, pos: usize) -> Option<VidRow<'_>> {
        (pos < self.tids.len()).then_some(VidRow::Columns { store: self, pos })
    }

    /// The row at `pos` copied into an owned key (for content maps).
    pub fn row_key(&self, pos: usize) -> Box<[Vid]> {
        self.columns
            .iter()
            .filter_map(|c| c.get(pos).copied())
            .collect()
    }

    /// Iterate `(tid, row)` in tid order.
    pub fn rows(&self) -> impl Iterator<Item = (Tid, VidRow<'_>)> + '_ {
        self.tids
            .iter()
            .enumerate()
            .map(move |(pos, &tid)| (tid, VidRow::Columns { store: self, pos }))
    }

    /// Estimated retained heap bytes of the store itself (columns + spine;
    /// dictionary payloads are shared and counted once, elsewhere).
    pub fn heap_bytes(&self) -> usize {
        self.tids.capacity() * std::mem::size_of::<Tid>()
            + self
                .columns
                .iter()
                .map(|c| c.capacity() * std::mem::size_of::<Vid>())
                .sum::<usize>()
    }
}

impl ColumnStore {
    /// Release over-allocated capacity after a bulk load: rows, order and
    /// tids are untouched, only spare `Vec` capacity is returned.
    pub fn shrink_to_fit(&mut self) {
        self.tids.shrink_to_fit();
        for col in &mut self.columns {
            col.shrink_to_fit();
        }
    }
}

/// The set-semantics content guard over a [`ColumnStore`]: a 64-bit hash of
/// the row's vids → the tids carrying that hash, **verified against the
/// columns** on every probe. Unlike a `HashMap<Box<[Vid]>, Tid>` it stores
/// no second copy of the row, so its footprint is a constant ~32 bytes per
/// row regardless of arity. Distinct rows that collide on the hash share a
/// bucket and are told apart by the verify step; iteration order of the map
/// never leaves this type (probes and membership only).
#[derive(Debug, Clone, Default)]
pub struct ContentMap {
    map: FxHashMap<u64, Bucket>,
}

/// Bucket of tids sharing one content hash. Virtually always a single tid
/// (a collision needs two distinct rows on the same 64-bit hash), so the
/// one-element case stays allocation-free and the spilled case is boxed:
/// the whole enum is 16 bytes, half a `Vec`-carrying payload.
#[derive(Debug, Clone)]
enum Bucket {
    One(Tid),
    #[allow(clippy::box_collection)] // the indirection is the point: 16-byte enum
    Many(Box<Vec<Tid>>),
}

impl ContentMap {
    /// Hash of a row's content (order-sensitive over the cells).
    pub fn hash_key(key: &[Vid]) -> u64 {
        let mut h = WordHasher::default();
        for vid in key {
            h.write_u32(vid.raw());
        }
        h.write_usize(key.len());
        h.finish()
    }

    /// Tid of the row whose content equals `key`, verified cell-by-cell
    /// against `store`.
    pub fn get(&self, store: &ColumnStore, key: &[Vid]) -> Option<Tid> {
        let same = |tid: &Tid| {
            store.position_of(*tid).is_some_and(|pos| {
                key.len() == store.arity()
                    && key
                        .iter()
                        .enumerate()
                        .all(|(col, &vid)| store.vid_at(pos, col) == Some(vid))
            })
        };
        match self.map.get(&Self::hash_key(key))? {
            Bucket::One(tid) => same(tid).then_some(*tid),
            Bucket::Many(tids) => tids.iter().find(|t| same(t)).copied(),
        }
    }

    /// Record `tid` as carrying `key`'s content.
    pub fn insert(&mut self, key: &[Vid], tid: Tid) {
        match self.map.entry(Self::hash_key(key)) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(Bucket::One(tid));
            }
            std::collections::hash_map::Entry::Occupied(mut e) => match e.get_mut() {
                Bucket::One(first) => {
                    let first = *first;
                    if first != tid {
                        e.insert(Bucket::Many(Box::new(vec![first, tid])));
                    }
                }
                Bucket::Many(tids) => {
                    if !tids.contains(&tid) {
                        tids.push(tid);
                    }
                }
            },
        }
    }

    /// Forget `tid` under `key`'s content hash (no-op if absent).
    pub fn remove(&mut self, key: &[Vid], tid: Tid) {
        let hash = Self::hash_key(key);
        let emptied = match self.map.get_mut(&hash) {
            Some(Bucket::One(t)) => *t == tid,
            Some(Bucket::Many(tids)) => {
                tids.retain(|&t| t != tid);
                tids.is_empty()
            }
            None => false,
        };
        if emptied {
            self.map.remove(&hash);
        }
    }

    /// Estimated retained heap bytes: hash → bucket entries plus the rare
    /// spilled collision vectors.
    pub fn heap_bytes(&self) -> usize {
        let spill: usize = self
            .map
            .values()
            .map(|b| match b {
                Bucket::One(_) => 0,
                Bucket::Many(tids) => {
                    std::mem::size_of::<Vec<Tid>>() + tids.capacity() * std::mem::size_of::<Tid>()
                }
            })
            .sum();
        spill
            + self.map.capacity() * (std::mem::size_of::<u64>() + std::mem::size_of::<Bucket>() + 8)
    }

    /// Release over-allocated map capacity (contents untouched).
    pub fn shrink_to_fit(&mut self) {
        self.map.shrink_to_fit();
        for bucket in self.map.values_mut() {
            if let Bucket::Many(tids) = bucket {
                tids.shrink_to_fit();
            }
        }
    }
}

/// A borrowed view of one row's vids — either a position in a
/// [`ColumnStore`] or a contiguous slice (overlay rows in views).
#[derive(Debug, Clone, Copy)]
pub enum VidRow<'a> {
    /// A row of a column store.
    Columns {
        /// The owning store.
        store: &'a ColumnStore,
        /// Row position.
        pos: usize,
    },
    /// A materialized row (e.g. a view's insert overlay).
    Slice(&'a [Vid]),
}

impl VidRow<'_> {
    /// Number of cells.
    pub fn arity(&self) -> usize {
        match self {
            VidRow::Columns { store, .. } => store.arity(),
            VidRow::Slice(s) => s.len(),
        }
    }

    /// Vid at column `col`.
    pub fn at(&self, col: usize) -> Option<Vid> {
        match self {
            VidRow::Columns { store, pos } => store.vid_at(*pos, col),
            VidRow::Slice(s) => s.get(col).copied(),
        }
    }

    /// Copy the row into an owned key.
    pub fn to_key(&self) -> Box<[Vid]> {
        match self {
            VidRow::Columns { store, pos } => store.row_key(*pos),
            VidRow::Slice(s) => (*s).into(),
        }
    }

    /// Project the given columns into an owned key; `None` if any column is
    /// out of range.
    pub fn project(&self, cols: &[usize]) -> Option<Box<[Vid]>> {
        cols.iter().map(|&c| self.at(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::ValueDict;
    use crate::value::Value;

    fn vids(dict: &ValueDict, vals: &[i64]) -> Vec<Vid> {
        vals.iter().map(|&i| dict.intern(&Value::Int(i))).collect()
    }

    #[test]
    fn push_and_read_back() {
        let dict = ValueDict::new();
        let mut s = ColumnStore::new(2);
        assert!(s.push(Tid(1), &vids(&dict, &[10, 20])));
        assert!(s.push(Tid(5), &vids(&dict, &[30, 40])));
        assert_eq!(s.len(), 2);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.tid_at(1), Some(Tid(5)));
        assert_eq!(s.position_of(Tid(5)), Some(1));
        assert_eq!(s.position_of(Tid(2)), None);
        assert_eq!(s.vid_at(0, 1), Some(dict.intern(&Value::Int(20))));
        let row = s.row(1).unwrap();
        assert_eq!(row.arity(), 2);
        assert_eq!(row.at(0), Some(dict.intern(&Value::Int(30))));
        assert_eq!(row.at(9), None);
    }

    #[test]
    fn push_rejects_bad_rows() {
        let dict = ValueDict::new();
        let mut s = ColumnStore::new(2);
        assert!(!s.push(Tid(1), &vids(&dict, &[1])));
        assert!(s.push(Tid(2), &vids(&dict, &[1, 2])));
        // Non-increasing tid.
        assert!(!s.push(Tid(2), &vids(&dict, &[3, 4])));
        assert!(!s.push(Tid(1), &vids(&dict, &[3, 4])));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn remove_shifts_positions() {
        let dict = ValueDict::new();
        let mut s = ColumnStore::new(1);
        for i in 1..=3 {
            s.push(Tid(i), &vids(&dict, &[i as i64 * 10]));
        }
        let removed = s.remove(Tid(2)).unwrap();
        assert_eq!(removed.len(), 1);
        assert_eq!(s.len(), 2);
        assert_eq!(s.position_of(Tid(3)), Some(1));
        assert!(s.remove(Tid(2)).is_none());
        // Re-inserting with a later tid keeps the spine sorted.
        assert!(s.push(Tid(9), &vids(&dict, &[99])));
        assert_eq!(s.tids(), &[Tid(1), Tid(3), Tid(9)]);
    }

    #[test]
    fn set_vid_updates_in_place() {
        let dict = ValueDict::new();
        let mut s = ColumnStore::new(2);
        s.push(Tid(1), &vids(&dict, &[1, 2]));
        let nine = dict.intern(&Value::Int(9));
        assert!(s.set_vid(0, 1, nine));
        assert!(!s.set_vid(0, 5, nine));
        assert!(!s.set_vid(5, 0, nine));
        assert_eq!(s.vid_at(0, 1), Some(nine));
        assert_eq!(s.tid_at(0), Some(Tid(1)));
    }

    #[test]
    fn content_map_verifies_against_the_columns() {
        let dict = ValueDict::new();
        let mut s = ColumnStore::new(2);
        let mut m = ContentMap::default();
        for (tid, row) in [(1u64, [1i64, 2]), (2, [3, 4]), (3, [1, 2])] {
            let key = vids(&dict, &row);
            s.push(Tid(tid), &key);
            m.insert(&key, Tid(tid));
        }
        let k12 = vids(&dict, &[1, 2]);
        let k34 = vids(&dict, &[3, 4]);
        assert_eq!(m.get(&s, &k12), Some(Tid(1)));
        assert_eq!(m.get(&s, &k34), Some(Tid(2)));
        assert_eq!(m.get(&s, &vids(&dict, &[9, 9])), None);
        // Duplicate content resolves to the surviving copy after removal.
        m.remove(&k12, Tid(1));
        s.remove(Tid(1));
        assert_eq!(m.get(&s, &k12), Some(Tid(3)));
        // An entry whose row left the store no longer verifies.
        s.remove(Tid(2));
        assert_eq!(m.get(&s, &k34), None);
        m.remove(&k34, Tid(2));
        assert_eq!(m.get(&s, &k34), None);
        assert!(m.heap_bytes() > 0);
    }

    #[test]
    fn rows_and_keys() {
        let dict = ValueDict::new();
        let mut s = ColumnStore::new(3);
        s.push(Tid(1), &vids(&dict, &[1, 2, 3]));
        s.push(Tid(2), &vids(&dict, &[4, 5, 6]));
        let collected: Vec<(Tid, Box<[Vid]>)> =
            s.rows().map(|(tid, row)| (tid, row.to_key())).collect();
        assert_eq!(collected.len(), 2);
        assert_eq!(collected[0].0, Tid(1));
        assert_eq!(collected[1].1, vids(&dict, &[4, 5, 6]).into());
        let row = s.row(0).unwrap();
        assert_eq!(row.project(&[2, 0]), Some(vids(&dict, &[3, 1]).into()));
        assert_eq!(row.project(&[7]), None);
        let slice_row = VidRow::Slice(&collected[1].1);
        assert_eq!(slice_row.at(1), Some(dict.intern(&Value::Int(5))));
        assert_eq!(slice_row.to_key(), collected[1].1);
    }
}
