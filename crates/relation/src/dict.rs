//! The global value dictionary: [`Value`] ⇄ [`Vid`] interning.
//!
//! Every stored value in the engine is a dense 32-bit [`Vid`]. Small values
//! are encoded *inline* in the id (no dictionary entry at all); everything
//! else lives in an append-only table shared — via `Arc` — by a database,
//! its clones and every repair derived from it. Joins, indexes, conflict
//! detection and fingerprints all operate on `Vid`s: a word-sized equality
//! check instead of a string compare, and memory that scales with the number
//! of *distinct* values instead of the number of value occurrences.
//!
//! ## Encoding
//!
//! The top two bits of a `Vid` are a tag; the low 30 bits are the payload:
//!
//! | tag  | payload                                            |
//! |------|----------------------------------------------------|
//! | `00` | index into the dictionary table                    |
//! | `01` | inline integer, offset-encoded (−2²⁹ ‥ 2²⁹−1)      |
//! | `10` | inline null label (< 2³⁰)                          |
//! | `11` | inline boolean (0/1)                               |
//!
//! Strings, non-integral floats, out-of-range integers and out-of-range null
//! labels are table-resident. Integral floats are canonicalized to their
//! integer form first (see below), so `Value`s that compare structurally
//! equal always receive the *same* vid — vid equality is exactly structural
//! [`Value`] equality.
//!
//! ## Canonicalization
//!
//! [`Value`]'s structural order already identifies `Int(1)` and
//! `Float(1.0)` (they compare `Equal` and hash alike). The dictionary makes
//! that identification explicit: a float whose bit pattern round-trips
//! through `i64` is interned as the integer. `-0.0`, `NaN` and non-integral
//! floats keep their float identity (`total_cmp` distinguishes them from
//! every integer).
//!
//! ## Determinism contract
//!
//! Table ids are assigned in **first-insertion order**. The load boundary
//! (codec, `Database::insert`) is single-threaded, so ids for all base data
//! are reproducible run to run. Values first interned *during* a parallel
//! phase (e.g. materializing a repair with a novel constant) may receive
//! schedule-dependent ids; therefore **no engine output may depend on vid
//! numeric order** — result emission resolves vids back to `Value`s and
//! sorts by value order (the `cqa-audit` L001 rule extends to dictionary
//! iteration). Within one process the mapping is stable: equal values always
//! map to the same vid.

use crate::fxhash::FxHashMap;
use crate::value::Value;
use std::cmp::Ordering;
use std::fmt;
use std::sync::{Arc, RwLock};

/// A dense 32-bit value id. See the module docs for the encoding.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Vid(u32);

const TAG_SHIFT: u32 = 30;
const PAYLOAD_MASK: u32 = (1 << TAG_SHIFT) - 1;
const TAG_TABLE: u32 = 0b00;
const TAG_INT: u32 = 0b01;
const TAG_NULL: u32 = 0b10;
const TAG_BOOL: u32 = 0b11;

/// Inline integers are offset-encoded into the 30-bit payload.
const INT_MIN: i64 = -(1 << 29);
const INT_MAX: i64 = (1 << 29) - 1;

impl Vid {
    #[inline]
    fn new(tag: u32, payload: u32) -> Vid {
        debug_assert!(payload <= PAYLOAD_MASK);
        Vid((tag << TAG_SHIFT) | payload)
    }

    #[inline]
    fn tag(self) -> u32 {
        self.0 >> TAG_SHIFT
    }

    #[inline]
    fn payload(self) -> u32 {
        self.0 & PAYLOAD_MASK
    }

    /// The raw 32-bit representation (for hashing and packing).
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// A table vid for dictionary slot `index` (also used by views for
    /// extension ids minted from the top of the table space).
    #[inline]
    pub(crate) fn table(index: u32) -> Vid {
        Vid::new(TAG_TABLE, index & PAYLOAD_MASK)
    }

    /// The table slot, if this is a table-resident vid.
    #[inline]
    pub(crate) fn table_index(self) -> Option<u32> {
        (self.tag() == TAG_TABLE).then_some(self.payload())
    }

    /// Is this an *inline* null? (Table-resident nulls — labels ≥ 2³⁰ —
    /// exist in principle; use [`ValueDict::is_null`] for the full answer.)
    #[inline]
    pub fn is_inline_null(self) -> bool {
        self.tag() == TAG_NULL
    }

    /// Decode an inline vid without touching the dictionary.
    #[inline]
    pub fn inline_value(self) -> Option<Value> {
        match self.tag() {
            TAG_INT => Some(Value::Int(self.payload() as i64 + INT_MIN)),
            TAG_NULL => Some(Value::Null(self.payload())),
            TAG_BOOL => Some(Value::Bool(self.payload() != 0)),
            _ => None,
        }
    }
}

impl fmt::Debug for Vid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.tag() {
            TAG_TABLE => write!(f, "Vid#{}", self.payload()),
            TAG_INT => write!(f, "Vid({})", self.payload() as i64 + INT_MIN),
            TAG_NULL => write!(f, "Vid(NULL_{})", self.payload()),
            _ => write!(f, "Vid({})", self.payload() != 0),
        }
    }
}

/// Canonical storage form of a value: integral floats collapse to the
/// integer they structurally equal, so vid equality is structural equality.
/// Views key their extension tables on the same canonical form.
pub(crate) fn canonical(v: &Value) -> Value {
    match v {
        Value::Float(f) if (*f as i64 as f64).to_bits() == f.to_bits() => Value::Int(*f as i64),
        other => other.clone(),
    }
}

/// Encode a value inline if its canonical form fits; `None` means it is
/// table-resident.
fn inline(v: &Value) -> Option<Vid> {
    match v {
        Value::Int(i) if (INT_MIN..=INT_MAX).contains(i) => {
            Some(Vid::new(TAG_INT, (i - INT_MIN) as u32))
        }
        Value::Null(l) if *l <= PAYLOAD_MASK => Some(Vid::new(TAG_NULL, *l)),
        Value::Bool(b) => Some(Vid::new(TAG_BOOL, *b as u32)),
        Value::Float(f) if (*f as i64 as f64).to_bits() == f.to_bits() => {
            inline(&Value::Int(*f as i64))
        }
        _ => None,
    }
}

#[derive(Debug, Default)]
struct Inner {
    /// Table-resident values in first-insertion order.
    values: Vec<Value>,
    /// String content → table slot (borrow-keyed so `&str` probes allocate
    /// nothing on a hit — the codec fast path depends on this).
    strs: FxHashMap<Arc<str>, u32>,
    /// Non-string table residents (non-integral floats, big ints, big null
    /// labels) → table slot.
    others: FxHashMap<Value, u32>,
}

impl Inner {
    fn slot_of(&self, canon: &Value) -> Option<u32> {
        match canon {
            Value::Str(s) => self.strs.get(&**s).copied(),
            other => self.others.get(other).copied(),
        }
    }

    fn push(&mut self, canon: Value) -> u32 {
        let slot = self.values.len() as u32;
        match &canon {
            Value::Str(s) => {
                self.strs.insert(Arc::clone(s), slot);
            }
            other => {
                self.others.insert(other.clone(), slot);
            }
        }
        self.values.push(canon);
        slot
    }
}

/// The append-only value dictionary. Shared (`Arc`) by a [`crate::Database`],
/// its clones and all views over it; interning takes `&self` via an internal
/// `RwLock`, resolution takes a read lock only.
#[derive(Debug, Default)]
pub struct ValueDict {
    inner: RwLock<Inner>,
}

impl ValueDict {
    /// Empty dictionary.
    pub fn new() -> ValueDict {
        ValueDict::default()
    }

    /// Number of table-resident entries (inline values are free).
    pub fn len(&self) -> usize {
        self.read().values.len()
    }

    /// True iff no value has been interned into the table.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Estimated retained heap bytes: the value table, its string buffers
    /// (counted once — lookup keys share the same `Arc`), and the two
    /// lookup maps. Analytic accounting, same policy as
    /// [`crate::Database::heap_bytes`].
    pub fn heap_bytes(&self) -> usize {
        let inner = self.read();
        let strings: usize = inner
            .values
            .iter()
            .map(|v| match v {
                // Arc<str> heap block: strong + weak counts, then the bytes.
                Value::Str(s) => 16 + s.len(),
                _ => 0,
            })
            .sum();
        let values = inner.values.capacity() * std::mem::size_of::<Value>();
        let maps = (inner.strs.capacity() + inner.others.capacity())
            * (std::mem::size_of::<Value>() + std::mem::size_of::<u32>() + 8);
        strings + values + maps
    }

    /// Release over-allocated capacity after a bulk load. Ids, contents and
    /// lookups are unaffected — only spare table and map capacity returns
    /// to the allocator.
    pub fn shrink_to_fit(&self) {
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        inner.values.shrink_to_fit();
        inner.strs.shrink_to_fit();
        inner.others.shrink_to_fit();
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Inner> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Intern a value, returning its (new or existing) vid.
    pub fn intern(&self, v: &Value) -> Vid {
        if let Some(vid) = inline(v) {
            return vid;
        }
        let canon = canonical(v);
        if let Some(slot) = self.read().slot_of(&canon) {
            return Vid::table(slot);
        }
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        // Re-check under the write lock: another thread may have won.
        if let Some(slot) = inner.slot_of(&canon) {
            return Vid::table(slot);
        }
        Vid::table(inner.push(canon))
    }

    /// Intern string content directly — no intermediate [`Value`] or
    /// `Arc<str>` is allocated when the string is already present.
    pub fn intern_str(&self, s: &str) -> Vid {
        if let Some(&slot) = self.read().strs.get(s) {
            return Vid::table(slot);
        }
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        if let Some(&slot) = inner.strs.get(s) {
            return Vid::table(slot);
        }
        Vid::table(inner.push(Value::Str(Arc::from(s))))
    }

    /// The vid of `v` if it has ever been interned (inline values always
    /// resolve). `None` means no stored fact anywhere carries this value.
    pub fn lookup(&self, v: &Value) -> Option<Vid> {
        if let Some(vid) = inline(v) {
            return Some(vid);
        }
        self.read().slot_of(&canonical(v)).map(Vid::table)
    }

    /// [`ValueDict::lookup`] for string content, allocation-free.
    pub fn lookup_str(&self, s: &str) -> Option<Vid> {
        self.read().strs.get(s).copied().map(Vid::table)
    }

    /// Decode a vid back to its value. `None` for table ids this dictionary
    /// never assigned (e.g. a view-extension id probed against the base).
    pub fn resolve(&self, vid: Vid) -> Option<Value> {
        if let Some(v) = vid.inline_value() {
            return Some(v);
        }
        let idx = vid.payload() as usize;
        self.read().values.get(idx).cloned()
    }

    /// Is the value behind `vid` a (labelled) null?
    pub fn is_null(&self, vid: Vid) -> bool {
        if vid.tag() != TAG_TABLE {
            return vid.is_inline_null();
        }
        // Table-resident nulls only exist for labels ≥ 2³⁰.
        matches!(
            self.read().values.get(vid.payload() as usize),
            Some(Value::Null(_))
        )
    }

    /// Order-preserving comparison: compares the *resolved values* in the
    /// structural [`Value`] order, never the raw ids. This is the resolve
    /// path sorted indexes and ORDER BY-style consumers must use — raw vid
    /// order reflects insertion history, not value order.
    pub fn cmp_vids(&self, a: Vid, b: Vid) -> Ordering {
        if a == b {
            return Ordering::Equal;
        }
        match (a.inline_value(), b.inline_value()) {
            (Some(va), Some(vb)) => va.cmp(&vb),
            (va, vb) => {
                let inner = self.read();
                let ra = va
                    .or_else(|| inner.values.get(a.payload() as usize).cloned())
                    .unwrap_or(Value::NULL);
                let rb = vb
                    .or_else(|| inner.values.get(b.payload() as usize).cloned())
                    .unwrap_or(Value::NULL);
                ra.cmp(&rb)
            }
        }
    }

    /// Resolve a whole row of vids into values (emission boundary helper).
    pub fn resolve_row(&self, vids: &[Vid]) -> Option<Vec<Value>> {
        vids.iter().map(|&v| self.resolve(v)).collect()
    }
}

impl Clone for ValueDict {
    /// Deep clone (fresh table sharing the `Arc<str>` payloads). Database
    /// clones share one dictionary via `Arc` instead; this exists so tests
    /// and tools can fork a dictionary explicitly.
    fn clone(&self) -> ValueDict {
        let inner = self.read();
        let mut fresh = Inner::default();
        for v in &inner.values {
            fresh.push(v.clone());
        }
        drop(inner);
        ValueDict {
            inner: RwLock::new(fresh),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_roundtrip() {
        let d = ValueDict::new();
        for v in [
            Value::Int(0),
            Value::Int(-1),
            Value::Int(INT_MIN),
            Value::Int(INT_MAX),
            Value::Bool(true),
            Value::Bool(false),
            Value::NULL,
            Value::Null(42),
        ] {
            let vid = d.intern(&v);
            assert_eq!(d.resolve(vid), Some(v));
        }
        // Inline values never touch the table.
        assert!(d.is_empty());
    }

    #[test]
    fn strings_dedupe() {
        let d = ValueDict::new();
        let a = d.intern(&Value::str("supply"));
        let b = d.intern(&Value::str("supply"));
        let c = d.intern_str("supply");
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(d.len(), 1);
        assert_eq!(d.lookup_str("supply"), Some(a));
        assert_eq!(d.lookup_str("nope"), None);
        assert_eq!(d.resolve(a), Some(Value::str("supply")));
    }

    #[test]
    fn big_values_are_table_resident() {
        let d = ValueDict::new();
        let big = Value::Int(i64::MAX);
        let vid = d.intern(&big);
        assert_eq!(d.resolve(vid), Some(big));
        assert_eq!(d.len(), 1);
        let f = Value::Float(0.5);
        let fv = d.intern(&f);
        assert_eq!(d.resolve(fv), Some(f));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn vid_equality_is_structural_equality() {
        let d = ValueDict::new();
        // Int(1) and Float(1.0) are structurally equal → same vid.
        assert_eq!(d.intern(&Value::Int(1)), d.intern(&Value::Float(1.0)));
        // -0.0 is NOT structurally equal to Int(0) (total_cmp) → distinct.
        assert_ne!(d.intern(&Value::Float(-0.0)), d.intern(&Value::Int(0)));
        // NaN keeps its float identity.
        let nan = d.intern(&Value::Float(f64::NAN));
        assert!(matches!(d.resolve(nan), Some(Value::Float(f)) if f.is_nan()));
        // Distinct labels, distinct vids.
        assert_ne!(d.intern(&Value::Null(1)), d.intern(&Value::Null(2)));
    }

    #[test]
    fn resolved_value_structurally_equals_input() {
        let d = ValueDict::new();
        for v in [
            Value::Float(2.0), // canonicalizes to Int(2) — still structurally equal
            Value::Float(2.5),
            Value::Int(7),
            Value::str("x"),
            Value::Null(3),
            Value::Bool(false),
        ] {
            let back = d.resolve(d.intern(&v)).unwrap();
            assert_eq!(back, v, "resolve(intern({v:?})) = {back:?}");
        }
    }

    #[test]
    fn lookup_misses_on_unseen() {
        let d = ValueDict::new();
        assert_eq!(d.lookup(&Value::str("ghost")), None);
        // Inline values always resolve even if never interned.
        assert!(d.lookup(&Value::Int(5)).is_some());
        assert!(d.lookup(&Value::NULL).is_some());
    }

    #[test]
    fn cmp_vids_matches_value_order() {
        let d = ValueDict::new();
        let vals = [
            Value::str("b"),
            Value::Int(3),
            Value::Float(2.5),
            Value::NULL,
            Value::Bool(true),
            Value::str("a"),
            Value::Null(7),
            Value::Int(-(1 << 40)),
        ];
        let vids: Vec<Vid> = vals.iter().map(|v| d.intern(v)).collect();
        for (i, a) in vals.iter().enumerate() {
            for (j, b) in vals.iter().enumerate() {
                assert_eq!(d.cmp_vids(vids[i], vids[j]), a.cmp(b), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn is_null_sees_inline_and_table_nulls() {
        let d = ValueDict::new();
        assert!(d.is_null(d.intern(&Value::NULL)));
        assert!(d.is_null(d.intern(&Value::Null(9))));
        assert!(!d.is_null(d.intern(&Value::Int(0))));
        assert!(!d.is_null(d.intern(&Value::str("NULL"))));
    }

    #[test]
    fn first_insertion_order_is_dense() {
        let d = ValueDict::new();
        let a = d.intern(&Value::str("a"));
        let b = d.intern(&Value::str("b"));
        let a2 = d.intern(&Value::str("a"));
        assert_eq!(a.table_index(), Some(0));
        assert_eq!(b.table_index(), Some(1));
        assert_eq!(a2.table_index(), Some(0));
    }
}
