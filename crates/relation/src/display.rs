//! ASCII table rendering, in the style of the tables in the paper.

use crate::instance::Relation;
use std::fmt;

/// Render one relation as an aligned ASCII table with a tid column.
///
/// ```text
/// Supply | tid | Company | Receiver | Item
/// -------+-----+---------+----------+-----
///        | ι1  | C1      | R1       | I1
/// ```
pub fn write_relation(f: &mut impl fmt::Write, rel: &Relation) -> fmt::Result {
    let schema = rel.schema();
    let mut headers: Vec<String> = vec![rel.name().to_string(), "tid".to_string()];
    headers.extend(schema.attributes().iter().map(|a| a.name.clone()));

    let mut rows: Vec<Vec<String>> = Vec::with_capacity(rel.len());
    for (tid, tuple) in rel.iter() {
        let mut row = vec![String::new(), tid.to_string()];
        row.extend(tuple.iter().map(|v| v.render().into_owned()));
        rows.push(row);
    }

    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }

    let write_row = |f: &mut dyn fmt::Write, cells: &[String]| -> fmt::Result {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            let width = widths.get(i).copied().unwrap_or(0);
            write!(f, "{cell:<width$}")?;
        }
        writeln!(f)
    };

    write_row(f, &headers)?;
    for (i, w) in widths.iter().take(cols).enumerate() {
        if i > 0 {
            write!(f, "-+-")?;
        }
        write!(f, "{}", "-".repeat(*w))?;
    }
    writeln!(f)?;
    for row in &rows {
        write_row(f, row)?;
    }
    writeln!(f)
}

/// Render a relation to a `String` (convenience for examples and the bench
/// harness).
pub fn relation_to_string(rel: &Relation) -> String {
    let mut s = String::new();
    // Writing to a String is infallible.
    let _ = write_relation(&mut s, rel);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{tuple, Database, RelationSchema};

    #[test]
    fn renders_aligned_table() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Employee", ["Name", "Salary"]))
            .unwrap();
        db.insert("Employee", tuple!["page", 5000]).unwrap();
        db.insert("Employee", tuple!["smith", 3000]).unwrap();
        let out = relation_to_string(db.relation("Employee").unwrap());
        assert!(out.contains("Employee"));
        assert!(out.contains("ι1"));
        assert!(out.contains("page"));
        // Header separator present.
        assert!(out.contains("-+-"));
        // All data lines have the same width.
        let lines: Vec<&str> = out.lines().filter(|l| !l.is_empty()).collect();
        let w = lines[0].chars().count();
        assert!(lines.iter().all(|l| l.chars().count() == w));
    }

    #[test]
    fn database_display_includes_all_relations() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("R", ["A"])).unwrap();
        db.create_relation(RelationSchema::new("S", ["B"])).unwrap();
        db.insert("R", tuple![1]).unwrap();
        db.insert("S", tuple![2]).unwrap();
        let s = db.to_string();
        assert!(s.contains('R') && s.contains('S'));
    }
}
