//! Error type shared by the relational substrate.

use std::fmt;

/// Errors raised by the relational layer.
///
/// Higher layers (queries, constraints, repairs) wrap or propagate these; the
/// enum is `#[non_exhaustive]` so variants can be added without a breaking
/// release.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RelationError {
    /// A relation name was not found in the schema or database.
    UnknownRelation(String),
    /// An attribute name was not found in a relation schema.
    UnknownAttribute {
        /// Relation that was searched.
        relation: String,
        /// The missing attribute.
        attribute: String,
    },
    /// A tuple's arity does not match its relation schema.
    ArityMismatch {
        /// Relation the tuple was inserted into.
        relation: String,
        /// Arity declared by the schema.
        expected: usize,
        /// Arity of the offending tuple.
        actual: usize,
    },
    /// A value's type does not match the declared attribute type.
    TypeMismatch {
        /// Relation the tuple was inserted into.
        relation: String,
        /// Position (0-based) of the offending value.
        position: usize,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A tuple id was not found in the database.
    UnknownTid(u64),
    /// A relation with this name already exists.
    DuplicateRelation(String),
    /// Malformed textual input (parser-level).
    Parse(String),
    /// Malformed textual database input, with its source position
    /// (codec-level; see [`crate::codec::load`]).
    Codec {
        /// 1-based line number in the input.
        line: usize,
        /// 1-based column number in the line.
        column: usize,
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            RelationError::UnknownAttribute {
                relation,
                attribute,
            } => write!(f, "unknown attribute `{attribute}` in relation `{relation}`"),
            RelationError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "arity mismatch for `{relation}`: schema has {expected} attributes, tuple has {actual}"
            ),
            RelationError::TypeMismatch {
                relation,
                position,
                detail,
            } => write!(f, "type mismatch in `{relation}` at position {position}: {detail}"),
            RelationError::UnknownTid(t) => write!(f, "unknown tuple id ι{t}"),
            RelationError::DuplicateRelation(name) => {
                write!(f, "relation `{name}` already exists")
            }
            RelationError::Parse(msg) => write!(f, "parse error: {msg}"),
            RelationError::Codec {
                line,
                column,
                detail,
            } => write!(f, "parse error at line {line}, column {column}: {detail}"),
        }
    }
}

impl std::error::Error for RelationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RelationError::ArityMismatch {
            relation: "Supply".into(),
            expected: 3,
            actual: 2,
        };
        let msg = e.to_string();
        assert!(msg.contains("Supply"));
        assert!(msg.contains('3'));
        assert!(msg.contains('2'));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(RelationError::UnknownTid(7));
        assert!(e.to_string().contains("ι7"));
    }
}
