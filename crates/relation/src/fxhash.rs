//! A minimal FxHash-style hasher.
//!
//! The repair and solving engines hash small keys (tids, interned atoms,
//! variable ids) in hot loops. The standard library's SipHash is needlessly
//! slow for that, and pulling `rustc-hash` would add a dependency outside the
//! approved set, so we ship the ~30 lines ourselves. The algorithm is the
//! well-known multiply-xor mix used by the Rust compiler; it is *not*
//! HashDoS-resistant, which is fine for trusted, in-process data.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// A `HashMap` for word-sized keys ([`crate::Vid`], `u32`, `Tid`…) hashed
/// with the single-mix [`WordHasher`].
pub type WordHashMap<K, V> = HashMap<K, V, BuildHasherDefault<WordHasher>>;
/// A `HashSet` for word-sized keys hashed with the single-mix [`WordHasher`].
pub type WordHashSet<T> = HashSet<T, BuildHasherDefault<WordHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiply-xor hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            // `chunks_exact(8)` yields exactly 8 bytes per chunk.
            #[allow(clippy::unwrap_used)]
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            for (dst, src) in word.iter_mut().zip(rest) {
                *dst = *src;
            }
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A hasher specialized for keys that hash as a *single machine word* —
/// `u32`/`u64` newtypes like [`crate::Vid`] and `Tid`. Where [`FxHasher`]
/// carries the generic state-update loop (rotate, xor, multiply, repeat),
/// this performs exactly one xor-multiply-shift mix of the word, which is
/// both cheaper and better-distributed in the low bits than raw Fx output —
/// the bits a power-of-two `HashMap` actually indexes with. The id-keyed
/// indexes in [`crate::index`] use this via [`WordHashMap`].
///
/// Multi-word writes still work (they fold into the state first), so using
/// it on a compound key degrades gracefully instead of miscompiling.
#[derive(Default, Clone)]
pub struct WordHasher {
    hash: u64,
}

impl WordHasher {
    /// One full-avalanche mix (the splitmix64/murmur finalizer constants).
    #[inline]
    fn mix(word: u64) -> u64 {
        let mut x = word;
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        x ^ (x >> 33)
    }

    #[inline]
    fn fold(&mut self, word: u64) {
        // Keep multi-word inputs order-sensitive; a single-word write sees
        // `hash == 0` and reduces to the plain mix.
        self.hash = Self::mix(self.hash.rotate_left(5) ^ word);
    }
}

impl Hasher for WordHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            for (slot, b) in word.iter_mut().zip(chunk) {
                *slot = *b;
            }
            self.fold(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.fold(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.fold(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.fold(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.fold(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_input_same_hash() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"consistent query answering");
        b.write(b"consistent query answering");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn different_inputs_differ() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(1);
        b.write_u64(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, "x");
        }
        assert_eq!(m.len(), 1000);
        assert!(m.contains_key(&999));
    }

    #[test]
    fn word_hasher_distributes_low_bits() {
        // Sequential u32 keys must not collide in the low bits a
        // power-of-two table indexes with.
        let mut low: HashSet<u64> = HashSet::new();
        for i in 0u32..256 {
            let mut h = WordHasher::default();
            h.write_u32(i);
            low.insert(h.finish() & 0xff);
        }
        assert!(low.len() > 128, "only {} distinct low bytes", low.len());
    }

    #[test]
    fn word_hasher_map_roundtrip() {
        let mut m: WordHashMap<u32, u32> = WordHashMap::default();
        for i in 0..1000u32 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.get(&999), Some(&1998));
    }

    #[test]
    fn word_hasher_multiword_is_order_sensitive() {
        let mut a = WordHasher::default();
        a.write_u32(1);
        a.write_u32(2);
        let mut b = WordHasher::default();
        b.write_u32(2);
        b.write_u32(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn unaligned_tail_bytes_hash() {
        // Exercise the remainder path (input not a multiple of 8 bytes).
        let mut a = FxHasher::default();
        a.write(b"abc");
        let mut b = FxHasher::default();
        b.write(b"abd");
        assert_ne!(a.finish(), b.finish());
    }
}
