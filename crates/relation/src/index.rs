//! The typed index family over columnar storage.
//!
//! Two index shapes, both keyed on [`Vid`]s (word-sized, hashed with the
//! specialized [`crate::fxhash::WordHasher`]) and both storing *row
//! positions* into the owning [`ColumnStore`]:
//!
//! - [`HashIndex`]: a multi-column equality index. Replaces the old
//!   one-column `ColumnIndex` cache — a join can now probe on *every* bound
//!   position of an atom at once.
//! - [`SortedIndex`]: a single-column index sorted in **resolved value
//!   order** (via [`ValueDict::cmp_vids`]'s resolve path, never raw id
//!   order), serving range and order probes.
//!
//! Indexes describe the base store at build time; the [`crate::Database`]
//! cache that owns them is invalidated on mutation. Views layered on top
//! filter deleted tids and union their insert overlay at probe time.

use crate::column::ColumnStore;
use crate::dict::{ValueDict, Vid};
use crate::fxhash::WordHashMap;
use crate::value::Value;
use std::ops::Bound;

/// A multi-column hash index: projected vid key → row positions (ascending).
#[derive(Debug)]
pub struct HashIndex {
    cols: Box<[usize]>,
    /// Single-column indexes key on the vid directly (no per-probe
    /// allocation); multi-column ones on the projected key.
    keyed: Keyed,
}

#[derive(Debug)]
enum Keyed {
    One(WordHashMap<Vid, Vec<u32>>),
    Many(WordHashMap<Box<[Vid]>, Vec<u32>>),
}

impl HashIndex {
    /// Build over `store`, keying on `cols` (deduplicated, in the given
    /// order). Returns `None` if `cols` is empty or any column is out of
    /// range.
    pub fn build(store: &ColumnStore, cols: &[usize]) -> Option<HashIndex> {
        if cols.is_empty() || cols.iter().any(|&c| c >= store.arity()) {
            return None;
        }
        let keyed = if let [col] = cols {
            let mut map: WordHashMap<Vid, Vec<u32>> = WordHashMap::default();
            for (pos, &vid) in store.column(*col).iter().enumerate() {
                map.entry(vid).or_default().push(pos as u32);
            }
            Keyed::One(map)
        } else {
            let mut map: WordHashMap<Box<[Vid]>, Vec<u32>> = WordHashMap::default();
            for pos in 0..store.len() {
                let key: Box<[Vid]> = cols.iter().filter_map(|&c| store.vid_at(pos, c)).collect();
                map.entry(key).or_default().push(pos as u32);
            }
            Keyed::Many(map)
        };
        Some(HashIndex {
            cols: cols.into(),
            keyed,
        })
    }

    /// The key columns, in key order.
    pub fn columns(&self) -> &[usize] {
        &self.cols
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        match &self.keyed {
            Keyed::One(m) => m.len(),
            Keyed::Many(m) => m.len(),
        }
    }

    /// Row positions whose projection equals `key` (ascending). The key
    /// must have one vid per key column.
    pub fn rows_for(&self, key: &[Vid]) -> &[u32] {
        match (&self.keyed, key) {
            (Keyed::One(m), [vid]) => m.get(vid).map_or(&[], Vec::as_slice),
            (Keyed::Many(m), _) if key.len() == self.cols.len() => {
                m.get(key).map_or(&[], Vec::as_slice)
            }
            _ => &[],
        }
    }

    /// Single-vid probe for one-column indexes (allocation-free).
    pub fn rows_for_vid(&self, vid: Vid) -> &[u32] {
        match &self.keyed {
            Keyed::One(m) => m.get(&vid).map_or(&[], Vec::as_slice),
            Keyed::Many(_) => &[],
        }
    }

    /// Estimated retained heap bytes (buckets + keys).
    pub fn heap_bytes(&self) -> usize {
        let bucket = |rows: &Vec<u32>| rows.capacity() * 4;
        match &self.keyed {
            Keyed::One(m) => m.values().map(bucket).sum::<usize>() + m.capacity() * 16,
            Keyed::Many(m) => {
                m.iter()
                    .map(|(k, rows)| k.len() * 4 + bucket(rows))
                    .sum::<usize>()
                    + m.capacity() * 24
            }
        }
    }
}

/// A single-column index sorted by **resolved value order** (ties broken by
/// row position, i.e. tid order — deterministic at any thread count).
#[derive(Debug)]
pub struct SortedIndex {
    col: usize,
    /// `(vid, row position)` sorted by `(value order of vid, position)`.
    entries: Vec<(Vid, u32)>,
}

impl SortedIndex {
    /// Build over one column of `store`, ordering entries through the
    /// dictionary's resolve path.
    pub fn build(store: &ColumnStore, col: usize, dict: &ValueDict) -> Option<SortedIndex> {
        if col >= store.arity() {
            return None;
        }
        // Resolve each cell once, sort by (value, position), strip values.
        let mut cells: Vec<(Value, u32, Vid)> = store
            .column(col)
            .iter()
            .enumerate()
            .map(|(pos, &vid)| (dict.resolve(vid).unwrap_or(Value::NULL), pos as u32, vid))
            .collect();
        cells.sort();
        Some(SortedIndex {
            col,
            entries: cells.into_iter().map(|(_, pos, vid)| (vid, pos)).collect(),
        })
    }

    /// The indexed column.
    pub fn column(&self) -> usize {
        self.col
    }

    /// All `(vid, row position)` entries in value order.
    pub fn entries(&self) -> &[(Vid, u32)] {
        &self.entries
    }

    /// The contiguous run of entries whose value lies in `(lo, hi)`.
    ///
    /// Bounds compare in structural [`Value`] order (nulls sort first,
    /// then bools, ints/floats numerically, then strings) — a comparison
    /// consumer that must skip nulls under SQL semantics filters the run.
    pub fn range(&self, dict: &ValueDict, lo: Bound<&Value>, hi: Bound<&Value>) -> &[(Vid, u32)] {
        let resolve = |vid: Vid| dict.resolve(vid).unwrap_or(Value::NULL);
        let start = match lo {
            Bound::Unbounded => 0,
            Bound::Included(v) => self.entries.partition_point(|&(vid, _)| resolve(vid) < *v),
            Bound::Excluded(v) => self.entries.partition_point(|&(vid, _)| resolve(vid) <= *v),
        };
        let end = match hi {
            Bound::Unbounded => self.entries.len(),
            Bound::Included(v) => self.entries.partition_point(|&(vid, _)| resolve(vid) <= *v),
            Bound::Excluded(v) => self.entries.partition_point(|&(vid, _)| resolve(vid) < *v),
        };
        self.entries.get(start..end.max(start)).unwrap_or(&[])
    }

    /// Estimated retained heap bytes.
    pub fn heap_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<(Vid, u32)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tid;

    fn store(dict: &ValueDict, rows: &[(&str, i64)]) -> ColumnStore {
        let mut s = ColumnStore::new(2);
        for (i, (name, num)) in rows.iter().enumerate() {
            let vids = [
                dict.intern(&Value::str(name)),
                dict.intern(&Value::Int(*num)),
            ];
            assert!(s.push(Tid(i as u64 + 1), &vids));
        }
        s
    }

    #[test]
    fn single_column_hash_index() {
        let dict = ValueDict::new();
        let s = store(&dict, &[("a", 1), ("b", 2), ("a", 3)]);
        let ix = HashIndex::build(&s, &[0]).unwrap();
        assert_eq!(ix.columns(), &[0]);
        assert_eq!(ix.distinct_keys(), 2);
        let a = dict.intern(&Value::str("a"));
        assert_eq!(ix.rows_for_vid(a), &[0, 2]);
        assert_eq!(ix.rows_for(&[a]), &[0, 2]);
        assert!(ix.rows_for_vid(dict.intern(&Value::str("zzz"))).is_empty());
    }

    #[test]
    fn multi_column_hash_index() {
        let dict = ValueDict::new();
        let s = store(&dict, &[("a", 1), ("a", 1), ("a", 2), ("b", 1)]);
        let ix = HashIndex::build(&s, &[0, 1]).unwrap();
        let key = [dict.intern(&Value::str("a")), dict.intern(&Value::Int(1))];
        assert_eq!(ix.rows_for(&key), &[0, 1]);
        // Wrong-width probes miss instead of panicking.
        assert!(ix.rows_for(&key[..1]).is_empty());
        assert_eq!(ix.distinct_keys(), 3);
    }

    #[test]
    fn build_rejects_bad_columns() {
        let dict = ValueDict::new();
        let s = store(&dict, &[("a", 1)]);
        assert!(HashIndex::build(&s, &[]).is_none());
        assert!(HashIndex::build(&s, &[7]).is_none());
        assert!(SortedIndex::build(&s, 9, &dict).is_none());
    }

    #[test]
    fn sorted_index_orders_by_value_not_vid() {
        let dict = ValueDict::new();
        // Intern in an order different from value order so raw-id order and
        // value order disagree.
        let s = store(&dict, &[("zeta", 30), ("alpha", 10), ("mid", 20)]);
        let ix = SortedIndex::build(&s, 0, &dict).unwrap();
        let names: Vec<Value> = ix
            .entries()
            .iter()
            .map(|&(vid, _)| dict.resolve(vid).unwrap())
            .collect();
        assert_eq!(
            names,
            vec![Value::str("alpha"), Value::str("mid"), Value::str("zeta")]
        );
    }

    #[test]
    fn sorted_index_range_probes() {
        let dict = ValueDict::new();
        let mut s = ColumnStore::new(1);
        for (i, v) in [5i64, -3, 12, 0, 7].iter().enumerate() {
            s.push(Tid(i as u64 + 1), &[dict.intern(&Value::Int(*v))]);
        }
        let ix = SortedIndex::build(&s, 0, &dict).unwrap();
        let in_range: Vec<i64> = ix
            .range(
                &dict,
                Bound::Included(&Value::Int(0)),
                Bound::Excluded(&Value::Int(12)),
            )
            .iter()
            .filter_map(|&(vid, _)| match dict.resolve(vid) {
                Some(Value::Int(i)) => Some(i),
                _ => None,
            })
            .collect();
        assert_eq!(in_range, vec![0, 5, 7]);
        // Open-ended ranges.
        assert_eq!(ix.range(&dict, Bound::Unbounded, Bound::Unbounded).len(), 5);
        let below: Vec<i64> = ix
            .range(&dict, Bound::Unbounded, Bound::Excluded(&Value::Int(0)))
            .iter()
            .filter_map(|&(vid, _)| match dict.resolve(vid) {
                Some(Value::Int(i)) => Some(i),
                _ => None,
            })
            .collect();
        assert_eq!(below, vec![-3]);
    }

    #[test]
    fn sorted_index_mixed_types_follow_value_order() {
        let dict = ValueDict::new();
        let mut s = ColumnStore::new(1);
        let vals = [
            Value::str("s"),
            Value::Int(1),
            Value::NULL,
            Value::Bool(true),
            Value::Float(0.5),
        ];
        for (i, v) in vals.iter().enumerate() {
            s.push(Tid(i as u64 + 1), &[dict.intern(v)]);
        }
        let ix = SortedIndex::build(&s, 0, &dict).unwrap();
        let sorted: Vec<Value> = ix
            .entries()
            .iter()
            .map(|&(vid, _)| dict.resolve(vid).unwrap())
            .collect();
        let mut expect = vals.to_vec();
        expect.sort();
        assert_eq!(sorted, expect);
    }
}
