//! Database instances: relations, tuples-with-tids, and delta application.
//!
//! Instances are **sets** of tuples (the paper's repairs are defined in set
//! terms), but every stored tuple additionally carries a global [`Tid`], so
//! that repairs, conflict hyper-graphs and causality all talk about "the third
//! `Supply` tuple" unambiguously.

use crate::error::RelationError;
use crate::fxhash::FxHashMap;
use crate::schema::{DatabaseSchema, RelationSchema};
use crate::tuple::{Tid, Tuple};
use crate::value::Value;
use crate::view::ColumnIndex;
use crate::Result;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::{Arc, RwLock};

/// One relation instance: a schema plus a tid-keyed set of tuples.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Arc<RelationSchema>,
    /// Deterministic iteration in tid (i.e. insertion) order.
    tuples: BTreeMap<Tid, Tuple>,
    /// Set-semantics guard: content → tid of the already-present copy.
    by_content: FxHashMap<Tuple, Tid>,
}

impl Relation {
    fn new(schema: Arc<RelationSchema>) -> Relation {
        Relation {
            schema,
            tuples: BTreeMap::new(),
            by_content: FxHashMap::default(),
        }
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Arc<RelationSchema> {
        &self.schema
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        self.schema.name()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True iff the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterate `(tid, tuple)` in tid order.
    pub fn iter(&self) -> impl Iterator<Item = (Tid, &Tuple)> + '_ {
        self.tuples.iter().map(|(t, tup)| (*t, tup))
    }

    /// Iterate tuples only.
    pub fn tuples(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.values()
    }

    /// Iterate tids only.
    pub fn tids(&self) -> impl Iterator<Item = Tid> + '_ {
        self.tuples.keys().copied()
    }

    /// Get a tuple by tid (must belong to this relation).
    pub fn get(&self, tid: Tid) -> Option<&Tuple> {
        self.tuples.get(&tid)
    }

    /// Does the relation contain a tuple with this exact content?
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.by_content.contains_key(tuple)
    }

    /// Tid of the tuple with this content, if present.
    pub fn tid_of(&self, tuple: &Tuple) -> Option<Tid> {
        self.by_content.get(tuple).copied()
    }

    /// Check that `tuple` fits this relation's schema (arity and attribute
    /// types). Public so repair enumeration can validate insertions *up
    /// front*, before building lazy views over them.
    pub fn validate(&self, tuple: &Tuple) -> Result<()> {
        if tuple.arity() != self.schema.arity() {
            return Err(RelationError::ArityMismatch {
                relation: self.name().to_string(),
                expected: self.schema.arity(),
                actual: tuple.arity(),
            });
        }
        for (i, (attr, value)) in self
            .schema
            .attributes()
            .iter()
            .zip(tuple.iter())
            .enumerate()
        {
            if !attr.ty.admits(value) {
                return Err(RelationError::TypeMismatch {
                    relation: self.name().to_string(),
                    position: i,
                    detail: format!(
                        "attribute `{}` declared {:?}, got {} value {}",
                        attr.name,
                        attr.ty,
                        value.type_name(),
                        value
                    ),
                });
            }
        }
        Ok(())
    }

    fn insert_with_tid(&mut self, tid: Tid, tuple: Tuple) {
        self.by_content.insert(tuple.clone(), tid);
        self.tuples.insert(tid, tuple);
    }

    fn remove(&mut self, tid: Tid) -> Option<Tuple> {
        let tuple = self.tuples.remove(&tid)?;
        self.by_content.remove(&tuple);
        Some(tuple)
    }
}

/// Lazily built one-column hash indexes, shared across every view layered
/// over this instance.
///
/// Keyed by `(relation index, column)`. Buckets are deterministic regardless
/// of which thread builds them first (tuples iterate in tid order), so a
/// benign build race under the `cqa-exec` pool cannot perturb results.
#[derive(Debug, Default)]
struct IndexCache {
    columns: RwLock<FxHashMap<(usize, usize), Arc<ColumnIndex>>>,
}

impl IndexCache {
    fn get(&self, key: (usize, usize)) -> Option<Arc<ColumnIndex>> {
        self.columns
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
            .map(Arc::clone)
    }

    fn insert(&self, key: (usize, usize), index: Arc<ColumnIndex>) -> Arc<ColumnIndex> {
        let mut map = self.columns.write().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(key).or_insert(index))
    }

    fn invalidate(&self) {
        self.columns
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }
}

/// A full database instance.
///
/// Owns its relations and a tid counter. Cloning a `Database` (to build a
/// repair) preserves the tids of all surviving tuples; newly inserted tuples
/// get fresh tids *from the clone's own counter*, which continues from the
/// original's, so tids never collide between an instance and its repairs.
#[derive(Debug, Default)]
pub struct Database {
    relations: Vec<Relation>,
    /// Relation name → index in `relations`.
    index: FxHashMap<String, usize>,
    next_tid: u64,
    next_null: u32,
    /// Shared one-column index cache; reset on clone, cleared on mutation.
    cache: IndexCache,
}

impl Clone for Database {
    fn clone(&self) -> Database {
        Database {
            relations: self.relations.clone(),
            index: self.index.clone(),
            next_tid: self.next_tid,
            next_null: self.next_null,
            // Indexes describe the *content* at build time; a clone starts
            // fresh and rebuilds on demand.
            cache: IndexCache::default(),
        }
    }
}

impl Database {
    /// Empty database with no relations.
    pub fn new() -> Database {
        Database {
            relations: Vec::new(),
            index: FxHashMap::default(),
            next_tid: 1,
            next_null: 1,
            cache: IndexCache::default(),
        }
    }

    /// Build an empty database with all the relations of `schema`.
    pub fn with_schema(schema: &DatabaseSchema) -> Database {
        let mut db = Database::new();
        for r in schema.relations() {
            db.relations.push(Relation::new(Arc::clone(r)));
            db.index
                .insert(r.name().to_string(), db.relations.len() - 1);
        }
        db
    }

    /// Add a new relation to this database.
    pub fn create_relation(&mut self, schema: RelationSchema) -> Result<()> {
        if self.index.contains_key(schema.name()) {
            return Err(RelationError::DuplicateRelation(schema.name().to_string()));
        }
        let name = schema.name().to_string();
        self.relations.push(Relation::new(Arc::new(schema)));
        self.index.insert(name, self.relations.len() - 1);
        Ok(())
    }

    /// All relations, in creation order.
    pub fn relations(&self) -> &[Relation] {
        &self.relations
    }

    /// Look up a relation by name.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.index.get(name).map(|&i| &self.relations[i])
    }

    /// Look up a relation by name, with an error on miss.
    pub fn require_relation(&self, name: &str) -> Result<&Relation> {
        self.relation(name)
            .ok_or_else(|| RelationError::UnknownRelation(name.to_string()))
    }

    fn relation_mut(&mut self, name: &str) -> Result<&mut Relation> {
        match self.index.get(name) {
            Some(&i) => Ok(&mut self.relations[i]),
            None => Err(RelationError::UnknownRelation(name.to_string())),
        }
    }

    /// Insert a tuple, returning its tid. Inserting content already present
    /// returns the existing tid (set semantics).
    pub fn insert(&mut self, relation: &str, tuple: Tuple) -> Result<Tid> {
        let next = Tid(self.next_tid);
        let rel = self.relation_mut(relation)?;
        rel.validate(&tuple)?;
        if let Some(existing) = rel.tid_of(&tuple) {
            return Ok(existing);
        }
        rel.insert_with_tid(next, tuple);
        self.next_tid += 1;
        self.cache.invalidate();
        Ok(next)
    }

    /// Insert several tuples, returning their tids.
    pub fn insert_all<I>(&mut self, relation: &str, tuples: I) -> Result<Vec<Tid>>
    where
        I: IntoIterator<Item = Tuple>,
    {
        tuples
            .into_iter()
            .map(|t| self.insert(relation, t))
            .collect()
    }

    /// Delete a tuple by tid; returns the removed `(relation name, tuple)`.
    pub fn delete(&mut self, tid: Tid) -> Result<(String, Tuple)> {
        for rel in &mut self.relations {
            if let Some(tuple) = rel.remove(tid) {
                self.cache.invalidate();
                return Ok((rel.name().to_string(), tuple));
            }
        }
        Err(RelationError::UnknownTid(tid.0))
    }

    /// Locate a tuple by tid: `(relation name, tuple)`.
    pub fn get(&self, tid: Tid) -> Option<(&str, &Tuple)> {
        self.relations
            .iter()
            .find_map(|rel| rel.get(tid).map(|t| (rel.name(), t)))
    }

    /// Replace one attribute of one tuple *in place* (same tid) — the update
    /// primitive behind attribute-based repairs (§4.3).
    pub fn update_value(&mut self, tid: Tid, position: usize, value: Value) -> Result<()> {
        for rel in &mut self.relations {
            if let Some(tuple) = rel.get(tid).cloned() {
                let updated = tuple.with_value(position, value);
                rel.validate(&updated)?;
                rel.by_content.remove(&tuple);
                // If the updated content collides with an existing tuple the
                // set shrinks: drop the old copy's tid and keep the update.
                if let Some(dup) = rel.tid_of(&updated) {
                    if dup != tid {
                        rel.tuples.remove(&dup);
                        rel.by_content.remove(&updated);
                    }
                }
                rel.insert_with_tid(tid, updated);
                self.cache.invalidate();
                return Ok(());
            }
        }
        Err(RelationError::UnknownTid(tid.0))
    }

    /// The next tid this instance would assign (exclusive upper bound on the
    /// tids currently in use). Views mint synthetic overlay tids from here so
    /// that view tids equal the tids [`Database::with_changes`] would assign.
    pub fn tid_watermark(&self) -> u64 {
        self.next_tid
    }

    /// Would `insert(relation, tuple)` succeed? Checks relation existence,
    /// arity and attribute types without mutating anything, so repair
    /// enumeration can validate deltas up front and stay lazy afterwards.
    pub fn check_insertable(&self, relation: &str, tuple: &Tuple) -> Result<()> {
        self.require_relation(relation)?.validate(tuple)
    }

    /// The cached one-column hash index for `(relation, column)`: value →
    /// tids of the tuples carrying it, in tid order.
    ///
    /// Built on first use and shared (via [`Arc`]) with every caller until the
    /// next mutation invalidates the cache. Returns `None` for unknown
    /// relations or out-of-range columns. The index is *semantics-agnostic*:
    /// null keys are indexed too, and it is the probing side's job to skip
    /// null probes under SQL semantics.
    pub fn column_index(&self, relation: &str, column: usize) -> Option<Arc<ColumnIndex>> {
        let &rel_idx = self.index.get(relation)?;
        let rel = &self.relations[rel_idx];
        if column >= rel.schema().arity() {
            return None;
        }
        let key = (rel_idx, column);
        if let Some(cached) = self.cache.get(key) {
            return Some(cached);
        }
        let mut built = ColumnIndex::default();
        for (tid, tuple) in rel.iter() {
            built.entry(tuple.at(column).clone()).or_default().push(tid);
        }
        Some(self.cache.insert(key, Arc::new(built)))
    }

    /// Total tuple count over all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.iter().map(Relation::len).sum()
    }

    /// Iterate every `(relation name, tid, tuple)` in deterministic order.
    pub fn facts(&self) -> impl Iterator<Item = (&str, Tid, &Tuple)> + '_ {
        self.relations
            .iter()
            .flat_map(|rel| rel.iter().map(move |(tid, t)| (rel.name(), tid, t)))
    }

    /// The set of all tids.
    pub fn tids(&self) -> BTreeSet<Tid> {
        self.facts().map(|(_, tid, _)| tid).collect()
    }

    /// Mint a fresh labelled null (for existential tgd repairs, §4.2, and for
    /// LAV inverse rules, §5).
    pub fn fresh_null(&mut self) -> Value {
        let v = Value::Null(self.next_null);
        self.next_null += 1;
        v
    }

    /// Content of the database as a canonical set, ignoring tids.
    ///
    /// Two repairs are "the same instance" iff their content sets are equal,
    /// even when their inserted tuples carry different fresh tids.
    pub fn content_set(&self) -> BTreeSet<(String, Tuple)> {
        self.facts()
            .map(|(r, _, t)| (r.to_string(), t.clone()))
            .collect()
    }

    /// Structural equality of content (ignores tids and counters).
    pub fn same_content(&self, other: &Database) -> bool {
        self.content_set() == other.content_set()
    }

    /// Clone this database applying a symmetric-difference delta: delete the
    /// given tids, then insert the given `(relation, tuple)` pairs. Returns
    /// the repaired clone and the tids assigned to the insertions.
    pub fn with_changes(
        &self,
        deletions: &BTreeSet<Tid>,
        insertions: &[(String, Tuple)],
    ) -> Result<(Database, Vec<Tid>)> {
        for &tid in deletions {
            if self.get(tid).is_none() {
                return Err(RelationError::UnknownTid(tid.0));
            }
        }
        // Single filtered pass per relation with `by_content` capacity
        // reserved up front, instead of clone-then-delete (which re-scans
        // every relation per deleted tid and grows the hash maps
        // incrementally).
        let mut relations = Vec::with_capacity(self.relations.len());
        for rel in &self.relations {
            let mut by_content = FxHashMap::with_capacity_and_hasher(rel.len(), Default::default());
            let mut tuples = BTreeMap::new();
            for (tid, tuple) in rel.iter() {
                if deletions.contains(&tid) {
                    continue;
                }
                by_content.insert(tuple.clone(), tid);
                tuples.insert(tid, tuple.clone());
            }
            relations.push(Relation {
                schema: Arc::clone(&rel.schema),
                tuples,
                by_content,
            });
        }
        let mut db = Database {
            relations,
            index: self.index.clone(),
            next_tid: self.next_tid,
            next_null: self.next_null,
            cache: IndexCache::default(),
        };
        let mut new_tids = Vec::with_capacity(insertions.len());
        for (rel, tuple) in insertions {
            new_tids.push(db.insert(rel, tuple.clone())?);
        }
        Ok((db, new_tids))
    }

    /// Clone this database keeping only the tuples whose tid is in `keep`.
    /// Tuples of relations absent from `keep` are dropped too.
    pub fn restricted_to(&self, keep: &BTreeSet<Tid>) -> Database {
        let mut db = self.clone();
        let to_delete: Vec<Tid> = db
            .facts()
            .map(|(_, tid, _)| tid)
            .filter(|tid| !keep.contains(tid))
            .collect();
        for tid in to_delete {
            let _ = db.delete(tid);
        }
        db
    }

    /// The active domain: every constant appearing in some tuple.
    pub fn active_domain(&self) -> BTreeSet<Value> {
        self.facts()
            .flat_map(|(_, _, t)| t.iter().cloned())
            .filter(|v| !v.is_null())
            .collect()
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rel in &self.relations {
            crate::display::write_relation(f, rel)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn supply_db() -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new(
            "Supply",
            ["Company", "Receiver", "Item"],
        ))
        .unwrap();
        db.create_relation(RelationSchema::new("Articles", ["Item"]))
            .unwrap();
        db.insert("Supply", tuple!["C1", "R1", "I1"]).unwrap();
        db.insert("Supply", tuple!["C2", "R2", "I2"]).unwrap();
        db.insert("Supply", tuple!["C2", "R1", "I3"]).unwrap();
        db.insert("Articles", tuple!["I1"]).unwrap();
        db.insert("Articles", tuple!["I2"]).unwrap();
        db
    }

    #[test]
    fn insert_assigns_sequential_tids() {
        let db = supply_db();
        let tids: Vec<u64> = db.facts().map(|(_, t, _)| t.0).collect();
        assert_eq!(tids, vec![1, 2, 3, 4, 5]);
        assert_eq!(db.total_tuples(), 5);
    }

    #[test]
    fn set_semantics_dedupes() {
        let mut db = supply_db();
        let t1 = db.insert("Articles", tuple!["I1"]).unwrap();
        assert_eq!(t1, Tid(4));
        assert_eq!(db.total_tuples(), 5);
    }

    #[test]
    fn delete_and_get() {
        let mut db = supply_db();
        let (rel, t) = db.delete(Tid(3)).unwrap();
        assert_eq!(rel, "Supply");
        assert_eq!(t, tuple!["C2", "R1", "I3"]);
        assert_eq!(db.get(Tid(3)), None);
        assert!(db.delete(Tid(3)).is_err());
    }

    #[test]
    fn with_changes_builds_repairs() {
        let db = supply_db();
        // Repair D1: delete Supply(C2, R1, I3).
        let dels: BTreeSet<Tid> = [Tid(3)].into();
        let (d1, _) = db.with_changes(&dels, &[]).unwrap();
        assert_eq!(d1.total_tuples(), 4);
        // Repair D2: insert Articles(I3).
        let (d2, new) = db
            .with_changes(&BTreeSet::new(), &[("Articles".into(), tuple!["I3"])])
            .unwrap();
        assert_eq!(d2.total_tuples(), 6);
        assert_eq!(new.len(), 1);
        // Fresh tid does not collide with original tids.
        assert!(new[0].0 > 5);
        // Original untouched.
        assert_eq!(db.total_tuples(), 5);
    }

    #[test]
    fn same_content_ignores_tids() {
        let db = supply_db();
        let (a, _) = db
            .with_changes(&BTreeSet::new(), &[("Articles".into(), tuple!["I3"])])
            .unwrap();
        let mut b = supply_db();
        b.insert("Articles", tuple!["I3"]).unwrap();
        assert!(a.same_content(&b));
        assert!(!a.same_content(&db));
    }

    #[test]
    fn restricted_to_keeps_subset() {
        let db = supply_db();
        let keep: BTreeSet<Tid> = [Tid(1), Tid(4)].into();
        let sub = db.restricted_to(&keep);
        assert_eq!(sub.total_tuples(), 2);
        assert!(sub
            .relation("Supply")
            .unwrap()
            .contains(&tuple!["C1", "R1", "I1"]));
    }

    #[test]
    fn update_value_preserves_tid() {
        let mut db = supply_db();
        db.update_value(Tid(3), 2, Value::NULL).unwrap();
        let (_, t) = db.get(Tid(3)).unwrap();
        assert!(t.at(2).is_null());
        assert_eq!(db.total_tuples(), 5);
    }

    #[test]
    fn update_value_collision_shrinks_set() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("S", ["A"])).unwrap();
        let t1 = db.insert("S", tuple!["a"]).unwrap();
        let _t2 = db.insert("S", tuple!["b"]).unwrap();
        // Turning 'b' into 'a' collides; set semantics keeps one copy.
        db.update_value(Tid(2), 0, Value::str("a")).unwrap();
        assert_eq!(db.relation("S").unwrap().len(), 1);
        // The updated tid survives; the duplicate content's old tid is gone.
        assert!(db.get(Tid(2)).is_some());
        assert!(db.get(t1).is_none());
    }

    #[test]
    fn arity_and_type_validation() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::with_attributes(
            "T",
            vec![
                crate::Attribute::typed("N", crate::AttrType::Int),
                crate::Attribute::typed("S", crate::AttrType::Str),
            ],
        ))
        .unwrap();
        assert!(db.insert("T", tuple![1]).is_err());
        assert!(db.insert("T", tuple!["x", "y"]).is_err());
        assert!(db.insert("T", tuple![1, "y"]).is_ok());
        // Nulls are admitted by every type.
        assert!(db
            .insert("T", Tuple::new(vec![Value::NULL, Value::NULL]))
            .is_ok());
    }

    #[test]
    fn fresh_nulls_are_distinct() {
        let mut db = Database::new();
        let a = db.fresh_null();
        let b = db.fresh_null();
        assert_ne!(a, b);
        assert!(a.is_null() && b.is_null());
    }

    #[test]
    fn active_domain_excludes_nulls() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("R", ["A", "B"]))
            .unwrap();
        db.insert("R", Tuple::new(vec![Value::str("a"), Value::NULL]))
            .unwrap();
        let dom = db.active_domain();
        assert_eq!(dom.len(), 1);
        assert!(dom.contains(&Value::str("a")));
    }

    #[test]
    fn with_schema_creates_all_relations() {
        let mut schema = crate::DatabaseSchema::new();
        schema.add(RelationSchema::new("A", ["X"])).unwrap();
        schema.add(RelationSchema::new("B", ["X", "Y"])).unwrap();
        let mut db = Database::with_schema(&schema);
        assert!(db.relation("A").is_some());
        assert_eq!(db.relation("B").unwrap().schema().arity(), 2);
        db.insert("A", tuple![1]).unwrap();
        assert_eq!(db.total_tuples(), 1);
    }

    #[test]
    fn column_index_caches_and_invalidates() {
        let mut db = supply_db();
        let ix = db.column_index("Supply", 0).unwrap();
        assert_eq!(ix.get(&Value::str("C2")).unwrap(), &vec![Tid(2), Tid(3)]);
        // Second call returns the same shared index.
        let again = db.column_index("Supply", 0).unwrap();
        assert!(Arc::ptr_eq(&ix, &again));
        // Out-of-range column and unknown relation yield no index.
        assert!(db.column_index("Supply", 9).is_none());
        assert!(db.column_index("Nope", 0).is_none());
        // A mutation invalidates: the rebuilt index sees the new tuple.
        db.insert("Supply", tuple!["C2", "R9", "I9"]).unwrap();
        let rebuilt = db.column_index("Supply", 0).unwrap();
        assert!(!Arc::ptr_eq(&ix, &rebuilt));
        assert_eq!(rebuilt.get(&Value::str("C2")).unwrap().len(), 3);
        // Clones start with a fresh (empty) cache but identical content.
        let clone = db.clone();
        let cloned_ix = clone.column_index("Supply", 0).unwrap();
        assert_eq!(*cloned_ix, *rebuilt);
    }

    #[test]
    fn check_insertable_matches_insert() {
        let db = supply_db();
        assert!(db
            .check_insertable("Supply", &tuple!["C3", "R3", "I4"])
            .is_ok());
        assert!(db.check_insertable("Supply", &tuple!["C3"]).is_err());
        assert!(db.check_insertable("Nope", &tuple!["x"]).is_err());
    }

    #[test]
    fn with_changes_unknown_tid_errors() {
        let db = supply_db();
        let dels: BTreeSet<Tid> = [Tid(99)].into();
        assert!(db.with_changes(&dels, &[]).is_err());
    }

    #[test]
    fn unknown_relation_errors() {
        let mut db = Database::new();
        assert!(db.insert("Nope", tuple![1]).is_err());
        assert!(db.require_relation("Nope").is_err());
    }
}
