//! Database instances: dictionary-encoded columnar relations.
//!
//! Instances are **sets** of tuples (the paper's repairs are defined in set
//! terms), but every stored tuple additionally carries a global [`Tid`], so
//! that repairs, conflict hyper-graphs and causality all talk about "the third
//! `Supply` tuple" unambiguously.
//!
//! Physically a relation is columnar: one `Vec<Vid>` per attribute over a
//! shared append-only [`ValueDict`] (see [`crate::dict`]). Every cell is 4
//! bytes; each distinct value is stored once, process-wide. The value-level
//! API (`iter`, `get`, `tuples`) survives unchanged on top of a lazy
//! per-relation row cache that materializes only when a consumer actually
//! asks for `&Tuple`s — id-space consumers (joins, indexes, CQA folds)
//! never pay for it.

use crate::changes::{Change, ChangeLog};
use crate::column::{ColumnStore, ContentMap, VidRow};
use crate::dict::{ValueDict, Vid};
use crate::error::RelationError;
use crate::fxhash::FxHashMap;
use crate::index::{HashIndex, SortedIndex};
use crate::schema::{AttrType, DatabaseSchema, RelationSchema};
use crate::stats::ColumnStats;
use crate::tuple::{Tid, Tuple};
use crate::value::Value;
use crate::Result;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Process-wide mint for relation content stamps. Monotone and never
/// reused, so two relations (or two states of one relation) can share a
/// stamp only by copying it — which [`Relation`] does exactly when the
/// content is byte-identical over the same append-only dictionary.
static NEXT_STAMP: AtomicU64 = AtomicU64::new(1);

fn mint_stamp() -> u64 {
    NEXT_STAMP.fetch_add(1, Ordering::Relaxed)
}

/// One relation instance: a schema plus a tid-keyed set of rows, stored
/// columnar over the database's shared dictionary.
#[derive(Debug)]
pub struct Relation {
    schema: Arc<RelationSchema>,
    dict: Arc<ValueDict>,
    /// Columnar rows, tid-sorted.
    store: ColumnStore,
    /// Set-semantics guard: content hash → tid of the present copy,
    /// verified against the columns on probe (no second copy of the rows).
    by_content: ContentMap,
    /// Lazy value-level row cache (row-aligned with `store`), built only
    /// when a caller needs `&Tuple`s; dropped on mutation and on clone.
    rows: OnceLock<Box<[Tuple]>>,
    /// Globally-unique content stamp: re-minted on every mutation, copied
    /// on clone. Equal stamps imply byte-identical content over the same
    /// dictionary lineage — the soundness anchor of the plan cache (unlike
    /// [`Database::epoch`], which restarts at 0 for derived instances and
    /// can therefore alias across instances).
    stamp: u64,
}

impl Clone for Relation {
    fn clone(&self) -> Relation {
        Relation {
            schema: Arc::clone(&self.schema),
            dict: Arc::clone(&self.dict),
            store: self.store.clone(),
            by_content: self.by_content.clone(),
            // The cache is a materialization convenience, not content;
            // clones (repairs) start columnar-only.
            rows: OnceLock::new(),
            // Identical content: the stamp carries over.
            stamp: self.stamp,
        }
    }
}

impl Relation {
    fn new(schema: Arc<RelationSchema>, dict: Arc<ValueDict>) -> Relation {
        let arity = schema.arity();
        Relation {
            schema,
            dict,
            store: ColumnStore::new(arity),
            by_content: ContentMap::default(),
            rows: OnceLock::new(),
            stamp: mint_stamp(),
        }
    }

    /// The relation's globally-unique content stamp. Two relations report
    /// the same stamp only if their stored rows (tids and vids) are
    /// identical and encoded against the same append-only dictionary.
    pub fn content_stamp(&self) -> u64 {
        self.stamp
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Arc<RelationSchema> {
        &self.schema
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        self.schema.name()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True iff the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// The columnar storage (id-space access path).
    pub fn store(&self) -> &ColumnStore {
        &self.store
    }

    /// The dictionary the columns are encoded against.
    pub fn dict(&self) -> &ValueDict {
        &self.dict
    }

    /// The value-level rows, materialized on first use.
    fn rows_cache(&self) -> &[Tuple] {
        self.rows.get_or_init(|| {
            (0..self.store.len())
                .map(|pos| {
                    Tuple::new(
                        self.store
                            .row_key(pos)
                            .iter()
                            .map(|&vid| self.dict.resolve(vid).unwrap_or(Value::NULL)),
                    )
                })
                .collect()
        })
    }

    /// Iterate `(tid, tuple)` in tid order. Materializes the value-level
    /// row cache; id-space consumers use [`Relation::store`] instead.
    pub fn iter(&self) -> impl Iterator<Item = (Tid, &Tuple)> + '_ {
        self.store
            .tids()
            .iter()
            .copied()
            .zip(self.rows_cache().iter())
    }

    /// Iterate tuples only.
    pub fn tuples(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.rows_cache().iter()
    }

    /// Iterate tids only (no row materialization).
    pub fn tids(&self) -> impl Iterator<Item = Tid> + '_ {
        self.store.tids().iter().copied()
    }

    /// Get a tuple by tid (must belong to this relation).
    pub fn get(&self, tid: Tid) -> Option<&Tuple> {
        let pos = self.store.position_of(tid)?;
        self.rows_cache().get(pos)
    }

    /// The row of `tid` in id-space (no materialization).
    pub fn vid_row_of(&self, tid: Tid) -> Option<VidRow<'_>> {
        self.store.row(self.store.position_of(tid)?)
    }

    /// Encode a value-level tuple against the dictionary. `None` if some
    /// value was never interned — in that case no stored row can equal it.
    pub fn encode(&self, tuple: &Tuple) -> Option<Box<[Vid]>> {
        tuple.iter().map(|v| self.dict.lookup(v)).collect()
    }

    /// Does the relation contain a tuple with this exact content?
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.tid_of(tuple).is_some()
    }

    /// Tid of the tuple with this content, if present.
    pub fn tid_of(&self, tuple: &Tuple) -> Option<Tid> {
        self.encode(tuple)
            .and_then(|key| self.by_content.get(&self.store, &key))
    }

    /// Tid of the row with this encoded content, if present.
    pub fn tid_of_vids(&self, key: &[Vid]) -> Option<Tid> {
        self.by_content.get(&self.store, key)
    }

    /// Check that `tuple` fits this relation's schema (arity and attribute
    /// types). Public so repair enumeration can validate insertions *up
    /// front*, before building lazy views over them.
    pub fn validate(&self, tuple: &Tuple) -> Result<()> {
        if tuple.arity() != self.schema.arity() {
            return Err(RelationError::ArityMismatch {
                relation: self.name().to_string(),
                expected: self.schema.arity(),
                actual: tuple.arity(),
            });
        }
        for (i, (attr, value)) in self
            .schema
            .attributes()
            .iter()
            .zip(tuple.iter())
            .enumerate()
        {
            if !attr.ty.admits(value) {
                return Err(RelationError::TypeMismatch {
                    relation: self.name().to_string(),
                    position: i,
                    detail: format!(
                        "attribute `{}` declared {:?}, got {} value {}",
                        attr.name,
                        attr.ty,
                        value.type_name(),
                        value
                    ),
                });
            }
        }
        Ok(())
    }

    /// Mutation funnel: every code path that changes stored rows passes
    /// through here, so dropping the value cache and re-minting the content
    /// stamp stay in lockstep.
    fn invalidate_rows(&mut self) {
        self.rows.take();
        self.stamp = mint_stamp();
    }

    /// Append an already-encoded, already-deduplicated row.
    fn insert_encoded(&mut self, tid: Tid, key: Box<[Vid]>) {
        self.by_content.insert(&key, tid);
        self.store.push(tid, &key);
        self.invalidate_rows();
    }

    fn remove(&mut self, tid: Tid) -> Option<Tuple> {
        let key = self.store.remove(tid)?;
        self.by_content.remove(&key, tid);
        self.invalidate_rows();
        Some(Tuple::new(
            key.iter()
                .map(|&vid| self.dict.resolve(vid).unwrap_or(Value::NULL)),
        ))
    }

    /// Estimated retained heap bytes of this relation's storage (columns,
    /// spine, content map; shared dictionary payloads not included).
    pub fn heap_bytes(&self) -> usize {
        self.store.heap_bytes() + self.by_content.heap_bytes()
    }

    /// Release over-allocated storage capacity after a bulk load; rows,
    /// tids and lookups are unaffected.
    pub fn shrink_to_fit(&mut self) {
        self.store.shrink_to_fit();
        self.by_content.shrink_to_fit();
    }
}

/// Lazily built, shared indexes over the base columns: multi-column hash
/// indexes keyed by `(relation index, key columns)` and sorted (value-order)
/// indexes keyed by `(relation index, column)`.
///
/// Buckets hold row positions in tid order, so they are deterministic
/// regardless of which thread builds them first — a benign build race under
/// the `cqa-exec` pool cannot perturb results. The cache is cleared on every
/// mutation and reset on clone.
#[derive(Debug, Default)]
struct IndexCache {
    hash: RwLock<HashIndexMap>,
    sorted: RwLock<FxHashMap<(usize, usize), Arc<SortedIndex>>>,
    /// Planner column statistics, keyed by relation index.
    stats: RwLock<FxHashMap<usize, Arc<ColumnStats>>>,
}

/// Cached hash indexes keyed by `(relation index, key columns)`.
type HashIndexMap = FxHashMap<(usize, Box<[usize]>), Arc<HashIndex>>;

impl IndexCache {
    /// Drop only the indexes built over relation `rel_idx`; indexes of
    /// untouched relations survive the mutation (their columns are
    /// unchanged, so the cached positions stay valid).
    fn invalidate_relation(&self, rel_idx: usize) {
        self.hash
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .retain(|(idx, _), _| *idx != rel_idx);
        self.sorted
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .retain(|(idx, _), _| *idx != rel_idx);
        self.stats
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&rel_idx);
    }
}

/// A full database instance.
///
/// Owns its relations and a tid counter, plus an `Arc` handle on the global
/// [`ValueDict`]. Cloning a `Database` (to build a repair) shares the
/// dictionary and preserves the tids of all surviving tuples; newly inserted
/// tuples get fresh tids *from the clone's own counter*, which continues from
/// the original's, so tids never collide between an instance and its repairs.
#[derive(Debug, Default)]
pub struct Database {
    relations: Vec<Relation>,
    /// Relation name → index in `relations`.
    index: FxHashMap<String, usize>,
    next_tid: u64,
    next_null: u32,
    /// The shared value dictionary (append-only, `Arc`-shared with clones).
    dict: Arc<ValueDict>,
    /// Shared index cache; reset on clone, invalidated per relation on
    /// mutation.
    cache: IndexCache,
    /// Monotone mutation counter: bumped once per completed tuple-level
    /// mutation (no-ops — duplicate inserts, identity updates — don't
    /// count). Consumers key cached artifacts on this.
    epoch: u64,
    /// Bounded log of the mutations behind `epoch` (see [`ChangeLog`]).
    changes: ChangeLog,
}

impl Clone for Database {
    fn clone(&self) -> Database {
        Database {
            relations: self.relations.clone(),
            index: self.index.clone(),
            next_tid: self.next_tid,
            next_null: self.next_null,
            // Clones share the append-only dictionary: vids stay comparable
            // across an instance and all its repairs.
            dict: Arc::clone(&self.dict),
            // Indexes describe the *content* at build time; a clone starts
            // fresh and rebuilds on demand.
            cache: IndexCache::default(),
            // Content is identical, so the epoch and its log carry over:
            // incremental state tracking the original stays valid against
            // the clone.
            epoch: self.epoch,
            changes: self.changes.clone(),
        }
    }
}

impl Database {
    /// Empty database with no relations.
    pub fn new() -> Database {
        Database {
            relations: Vec::new(),
            index: FxHashMap::default(),
            next_tid: 1,
            next_null: 1,
            dict: Arc::new(ValueDict::new()),
            cache: IndexCache::default(),
            epoch: 0,
            changes: ChangeLog::default(),
        }
    }

    /// Build an empty database with all the relations of `schema`.
    pub fn with_schema(schema: &DatabaseSchema) -> Database {
        let mut db = Database::new();
        for r in schema.relations() {
            db.relations
                .push(Relation::new(Arc::clone(r), Arc::clone(&db.dict)));
            db.index
                .insert(r.name().to_string(), db.relations.len() - 1);
        }
        db
    }

    /// The shared value dictionary.
    pub fn dict(&self) -> &ValueDict {
        &self.dict
    }

    /// Add a new relation to this database.
    pub fn create_relation(&mut self, schema: RelationSchema) -> Result<()> {
        if self.index.contains_key(schema.name()) {
            return Err(RelationError::DuplicateRelation(schema.name().to_string()));
        }
        let name = schema.name().to_string();
        self.relations
            .push(Relation::new(Arc::new(schema), Arc::clone(&self.dict)));
        self.index.insert(name, self.relations.len() - 1);
        // Structural change: not representable as a tuple-level record, so
        // bump the epoch and truncate the log — consumers must recompute.
        self.epoch += 1;
        self.changes.reset(self.epoch);
        Ok(())
    }

    /// All relations, in creation order.
    pub fn relations(&self) -> &[Relation] {
        &self.relations
    }

    /// Look up a relation by name.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.index.get(name).and_then(|&i| self.relations.get(i))
    }

    /// Look up a relation by name, with an error on miss.
    pub fn require_relation(&self, name: &str) -> Result<&Relation> {
        self.relation(name)
            .ok_or_else(|| RelationError::UnknownRelation(name.to_string()))
    }

    fn relation_idx(&self, name: &str) -> Result<usize> {
        self.index
            .get(name)
            .copied()
            .ok_or_else(|| RelationError::UnknownRelation(name.to_string()))
    }

    /// Record one completed tuple-level mutation: bump the epoch, append to
    /// the change log, and scope index invalidation to the touched relation.
    fn log_change(&mut self, change: Change) {
        self.epoch += 1;
        self.cache.invalidate_relation(change.relation());
        self.changes.push(change);
    }

    /// The mutation epoch: the number of completed tuple-level mutations
    /// (plus structural changes) behind this instance's current content.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The mutations between epoch `since` and [`Database::epoch`], oldest
    /// first. `None` means the log no longer covers `since` (it was
    /// compacted, a structural change intervened, or `since` belongs to a
    /// different database) — the consumer must recompute from scratch.
    pub fn changes_since(&self, since: u64) -> Option<&[Change]> {
        self.changes.changes_since(since, self.epoch)
    }

    /// Does any relation currently hold `tid`?
    pub fn contains_tid(&self, tid: Tid) -> bool {
        self.relations
            .iter()
            .any(|r| r.store.position_of(tid).is_some())
    }

    /// Insert a tuple, returning its tid. Inserting content already present
    /// returns the existing tid (set semantics).
    pub fn insert(&mut self, relation: &str, tuple: Tuple) -> Result<Tid> {
        let next = Tid(self.next_tid);
        let idx = self.relation_idx(relation)?;
        let rel = &mut self.relations[idx];
        rel.validate(&tuple)?;
        let dict = Arc::clone(&rel.dict);
        let key: Box<[Vid]> = tuple.iter().map(|v| dict.intern(v)).collect();
        if let Some(existing) = rel.tid_of_vids(&key) {
            return Ok(existing);
        }
        rel.insert_encoded(next, key);
        self.next_tid += 1;
        self.log_change(Change::Insert {
            relation: idx,
            tid: next,
        });
        Ok(next)
    }

    /// Insert an already-encoded row (the codec fast path): `vids` must come
    /// from **this** database's dictionary. Arity is checked here; typed
    /// attributes are checked by resolving only when the schema declares
    /// types, so the common untyped case stays allocation-free.
    pub fn insert_vids(&mut self, relation: &str, vids: Box<[Vid]>) -> Result<Tid> {
        let next = Tid(self.next_tid);
        let idx = self.relation_idx(relation)?;
        let rel = &mut self.relations[idx];
        if vids.len() != rel.schema.arity() {
            return Err(RelationError::ArityMismatch {
                relation: rel.name().to_string(),
                expected: rel.schema.arity(),
                actual: vids.len(),
            });
        }
        if rel
            .schema
            .attributes()
            .iter()
            .any(|a| a.ty != AttrType::Any)
        {
            for (i, (attr, &vid)) in rel.schema.attributes().iter().zip(vids.iter()).enumerate() {
                let value = rel.dict.resolve(vid).unwrap_or(Value::NULL);
                if !attr.ty.admits(&value) {
                    return Err(RelationError::TypeMismatch {
                        relation: rel.name().to_string(),
                        position: i,
                        detail: format!(
                            "attribute `{}` declared {:?}, got {} value {}",
                            attr.name,
                            attr.ty,
                            value.type_name(),
                            value
                        ),
                    });
                }
            }
        }
        if let Some(existing) = rel.tid_of_vids(&vids) {
            return Ok(existing);
        }
        rel.insert_encoded(next, vids);
        self.next_tid += 1;
        self.log_change(Change::Insert {
            relation: idx,
            tid: next,
        });
        Ok(next)
    }

    /// Insert several tuples, returning their tids.
    pub fn insert_all<I>(&mut self, relation: &str, tuples: I) -> Result<Vec<Tid>>
    where
        I: IntoIterator<Item = Tuple>,
    {
        tuples
            .into_iter()
            .map(|t| self.insert(relation, t))
            .collect()
    }

    /// Delete a tuple by tid; returns the removed `(relation name, tuple)`.
    pub fn delete(&mut self, tid: Tid) -> Result<(String, Tuple)> {
        for idx in 0..self.relations.len() {
            if let Some(tuple) = self.relations[idx].remove(tid) {
                let name = self.relations[idx].name().to_string();
                self.log_change(Change::Delete { relation: idx, tid });
                return Ok((name, tuple));
            }
        }
        Err(RelationError::UnknownTid(tid.0))
    }

    /// Locate a tuple by tid: `(relation name, tuple)`.
    pub fn get(&self, tid: Tid) -> Option<(&str, &Tuple)> {
        self.relations
            .iter()
            .find_map(|rel| rel.get(tid).map(|t| (rel.name(), t)))
    }

    /// Replace one attribute of one tuple *in place* (same tid) — the update
    /// primitive behind attribute-based repairs (§4.3).
    pub fn update_value(&mut self, tid: Tid, position: usize, value: Value) -> Result<()> {
        for idx in 0..self.relations.len() {
            let Some(rel) = self.relations.get_mut(idx) else {
                continue;
            };
            let Some(pos) = rel.store.position_of(tid) else {
                continue;
            };
            let Some(attr) = rel.schema.attributes().get(position) else {
                return Err(RelationError::TypeMismatch {
                    relation: rel.name().to_string(),
                    position,
                    detail: format!(
                        "update position {position} out of range for arity {}",
                        rel.schema.arity()
                    ),
                });
            };
            if !attr.ty.admits(&value) {
                return Err(RelationError::TypeMismatch {
                    relation: rel.name().to_string(),
                    position,
                    detail: format!(
                        "attribute `{}` declared {:?}, got {} value {}",
                        attr.name,
                        attr.ty,
                        value.type_name(),
                        value
                    ),
                });
            }
            let new_vid = rel.dict.intern(&value);
            let old_key = rel.store.row_key(pos);
            let mut new_key = old_key.clone();
            if let Some(cell) = new_key.get_mut(position) {
                *cell = new_vid;
            }
            if new_key == old_key {
                return Ok(()); // no-op update
            }
            rel.by_content.remove(&old_key, tid);
            // If the updated content collides with an existing tuple the
            // set shrinks: drop the old copy's tid and keep the update.
            let mut removed_dup = None;
            if let Some(dup) = rel.tid_of_vids(&new_key) {
                if dup != tid {
                    rel.store.remove(dup);
                    rel.by_content.remove(&new_key, dup);
                    removed_dup = Some(dup);
                }
            }
            // Positions may have shifted if the duplicate sat before us.
            if let Some(pos) = rel.store.position_of(tid) {
                rel.store.set_vid(pos, position, new_vid);
            }
            rel.by_content.insert(&new_key, tid);
            rel.invalidate_rows();
            if let Some(dup) = removed_dup {
                self.log_change(Change::Delete {
                    relation: idx,
                    tid: dup,
                });
            }
            self.log_change(Change::Update { relation: idx, tid });
            return Ok(());
        }
        Err(RelationError::UnknownTid(tid.0))
    }

    /// The next tid this instance would assign (exclusive upper bound on the
    /// tids currently in use). Views mint synthetic overlay tids from here so
    /// that view tids equal the tids [`Database::with_changes`] would assign.
    pub fn tid_watermark(&self) -> u64 {
        self.next_tid
    }

    /// Would `insert(relation, tuple)` succeed? Checks relation existence,
    /// arity and attribute types without mutating anything, so repair
    /// enumeration can validate deltas up front and stay lazy afterwards.
    pub fn check_insertable(&self, relation: &str, tuple: &Tuple) -> Result<()> {
        self.require_relation(relation)?.validate(tuple)
    }

    /// The cached multi-column hash index for `(relation, key columns)`:
    /// projected vid key → row positions in the relation's store, tid order.
    ///
    /// Built on first use and shared (via [`Arc`]) with every caller until
    /// the next mutation invalidates the cache. Returns `None` for unknown
    /// relations, empty column lists, or out-of-range columns. The index is
    /// *semantics-agnostic*: null keys are indexed too, and it is the probing
    /// side's job to skip null probes under SQL semantics.
    pub fn hash_index(&self, relation: &str, cols: &[usize]) -> Option<Arc<HashIndex>> {
        let &rel_idx = self.index.get(relation)?;
        let rel = self.relations.get(rel_idx)?;
        {
            let cached = self.cache.hash.read().unwrap_or_else(|e| e.into_inner());
            if let Some(found) = cached.get(&(rel_idx, cols.into()) as &(usize, Box<[usize]>)) {
                return Some(Arc::clone(found));
            }
        }
        let built = Arc::new(HashIndex::build(&rel.store, cols)?);
        let mut map = self.cache.hash.write().unwrap_or_else(|e| e.into_inner());
        Some(Arc::clone(
            map.entry((rel_idx, cols.into())).or_insert(built),
        ))
    }

    /// The cached planner statistics for `relation`: row count and
    /// per-column distinct-vid estimates from a deterministic stride sample
    /// (see [`ColumnStats`]). Built on first use, shared via [`Arc`], and
    /// invalidated per relation on mutation like [`Database::hash_index`].
    pub fn column_stats(&self, relation: &str) -> Option<Arc<ColumnStats>> {
        let &rel_idx = self.index.get(relation)?;
        let rel = self.relations.get(rel_idx)?;
        {
            let cached = self.cache.stats.read().unwrap_or_else(|e| e.into_inner());
            if let Some(found) = cached.get(&rel_idx) {
                return Some(Arc::clone(found));
            }
        }
        let built = Arc::new(ColumnStats::build(&rel.store));
        let mut map = self.cache.stats.write().unwrap_or_else(|e| e.into_inner());
        Some(Arc::clone(map.entry(rel_idx).or_insert(built)))
    }

    /// The cached sorted (value-order) index for `(relation, column)`, for
    /// range and order probes. Caching mirrors [`Database::hash_index`].
    pub fn sorted_index(&self, relation: &str, column: usize) -> Option<Arc<SortedIndex>> {
        let &rel_idx = self.index.get(relation)?;
        let rel = self.relations.get(rel_idx)?;
        {
            let cached = self.cache.sorted.read().unwrap_or_else(|e| e.into_inner());
            if let Some(found) = cached.get(&(rel_idx, column)) {
                return Some(Arc::clone(found));
            }
        }
        let built = Arc::new(SortedIndex::build(&rel.store, column, &rel.dict)?);
        let mut map = self.cache.sorted.write().unwrap_or_else(|e| e.into_inner());
        Some(Arc::clone(map.entry((rel_idx, column)).or_insert(built)))
    }

    /// Total tuple count over all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.iter().map(Relation::len).sum()
    }

    /// Iterate every `(relation name, tid, tuple)` in deterministic order.
    /// Materializes value-level row caches; id-space consumers iterate
    /// [`Relation::store`] instead.
    pub fn facts(&self) -> impl Iterator<Item = (&str, Tid, &Tuple)> + '_ {
        self.relations
            .iter()
            .flat_map(|rel| rel.iter().map(move |(tid, t)| (rel.name(), tid, t)))
    }

    /// The set of all tids (no row materialization).
    pub fn tids(&self) -> BTreeSet<Tid> {
        self.relations
            .iter()
            .flat_map(|rel| rel.store.tids().iter().copied())
            .collect()
    }

    /// Mint a fresh labelled null (for existential tgd repairs, §4.2, and for
    /// LAV inverse rules, §5).
    pub fn fresh_null(&mut self) -> Value {
        let v = Value::Null(self.next_null);
        self.next_null += 1;
        v
    }

    /// Content of the database as a canonical set, ignoring tids.
    ///
    /// Two repairs are "the same instance" iff their content sets are equal,
    /// even when their inserted tuples carry different fresh tids.
    pub fn content_set(&self) -> BTreeSet<(String, Tuple)> {
        self.facts()
            .map(|(r, _, t)| (r.to_string(), t.clone()))
            .collect()
    }

    /// Structural equality of content (ignores tids and counters).
    pub fn same_content(&self, other: &Database) -> bool {
        self.content_set() == other.content_set()
    }

    /// Clone this database applying a symmetric-difference delta: delete the
    /// given tids, then insert the given `(relation, tuple)` pairs. Returns
    /// the repaired clone and the tids assigned to the insertions.
    pub fn with_changes(
        &self,
        deletions: &BTreeSet<Tid>,
        insertions: &[(String, Tuple)],
    ) -> Result<(Database, Vec<Tid>)> {
        let known: usize = deletions
            .iter()
            .filter(|&&t| {
                self.relations
                    .iter()
                    .any(|r| r.store.position_of(t).is_some())
            })
            .count();
        if known != deletions.len() {
            // Surface the first unknown tid for a useful error.
            for &tid in deletions {
                if !self
                    .relations
                    .iter()
                    .any(|r| r.store.position_of(tid).is_some())
                {
                    return Err(RelationError::UnknownTid(tid.0));
                }
            }
        }
        // Single filtered pass per relation, entirely in id-space: columns
        // and content keys copy as fixed-width vids, no re-interning and no
        // value materialization.
        let mut relations = Vec::with_capacity(self.relations.len());
        for rel in &self.relations {
            let mut store = ColumnStore::new(rel.schema.arity());
            let mut by_content = ContentMap::default();
            let mut touched = false;
            for pos in 0..rel.store.len() {
                let Some(tid) = rel.store.tid_at(pos) else {
                    continue;
                };
                if deletions.contains(&tid) {
                    touched = true;
                    continue;
                }
                let key = rel.store.row_key(pos);
                store.push(tid, &key);
                by_content.insert(&key, tid);
            }
            relations.push(Relation {
                schema: Arc::clone(&rel.schema),
                dict: Arc::clone(&rel.dict),
                store,
                by_content,
                rows: OnceLock::new(),
                // An untouched relation is byte-identical to the original
                // (same rows, same shared dictionary): its content stamp
                // carries over, so plans and cached subresults keyed on it
                // stay shareable across the derived instance. Insertions
                // re-mint below via the normal `insert` funnel.
                stamp: if touched { mint_stamp() } else { rel.stamp },
            });
        }
        let mut db = Database {
            relations,
            index: self.index.clone(),
            next_tid: self.next_tid,
            next_null: self.next_null,
            dict: Arc::clone(&self.dict),
            cache: IndexCache::default(),
            // A derived instance is a new identity: epochs restart.
            epoch: 0,
            changes: ChangeLog::default(),
        };
        let mut new_tids = Vec::with_capacity(insertions.len());
        for (rel, tuple) in insertions {
            new_tids.push(db.insert(rel, tuple.clone())?);
        }
        Ok((db, new_tids))
    }

    /// Clone this database keeping only the tuples whose tid is in `keep`.
    /// Tuples of relations absent from `keep` are dropped too.
    pub fn restricted_to(&self, keep: &BTreeSet<Tid>) -> Database {
        let mut relations = Vec::with_capacity(self.relations.len());
        for rel in &self.relations {
            let mut store = ColumnStore::new(rel.schema.arity());
            let mut by_content = ContentMap::default();
            let mut touched = false;
            for pos in 0..rel.store.len() {
                let Some(tid) = rel.store.tid_at(pos) else {
                    continue;
                };
                if !keep.contains(&tid) {
                    touched = true;
                    continue;
                }
                let key = rel.store.row_key(pos);
                store.push(tid, &key);
                by_content.insert(&key, tid);
            }
            relations.push(Relation {
                schema: Arc::clone(&rel.schema),
                dict: Arc::clone(&rel.dict),
                store,
                by_content,
                rows: OnceLock::new(),
                // Untouched relation: identical content, stamp carries over.
                stamp: if touched { mint_stamp() } else { rel.stamp },
            });
        }
        Database {
            relations,
            index: self.index.clone(),
            next_tid: self.next_tid,
            next_null: self.next_null,
            dict: Arc::clone(&self.dict),
            cache: IndexCache::default(),
            // A derived instance is a new identity: epochs restart.
            epoch: 0,
            changes: ChangeLog::default(),
        }
    }

    /// The active domain: every constant appearing in some tuple.
    ///
    /// Collected as *distinct vids* first (one dictionary resolve per
    /// distinct value), then emitted through the dictionary in value order —
    /// never in raw id order.
    pub fn active_domain(&self) -> BTreeSet<Value> {
        let mut seen = crate::fxhash::WordHashSet::default();
        for rel in &self.relations {
            for col in 0..rel.store.arity() {
                seen.extend(rel.store.column(col).iter().copied());
            }
        }
        seen.into_iter()
            .filter(|&vid| !self.dict.is_null(vid))
            .filter_map(|vid| self.dict.resolve(vid))
            .collect()
    }

    /// Estimated retained heap bytes of all relation storage (columns,
    /// spines, content maps). Excludes the shared dictionary — count that
    /// separately, once, via the bench harness's accounting.
    pub fn heap_bytes(&self) -> usize {
        self.relations.iter().map(Relation::heap_bytes).sum()
    }

    /// Compact the whole instance after a bulk load: every relation's
    /// columns and content guard plus the shared dictionary release their
    /// spare capacity. Contents, tids and vids are unaffected.
    pub fn shrink_to_fit(&mut self) {
        for rel in &mut self.relations {
            rel.shrink_to_fit();
        }
        self.dict.shrink_to_fit();
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rel in &self.relations {
            crate::display::write_relation(f, rel)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn supply_db() -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new(
            "Supply",
            ["Company", "Receiver", "Item"],
        ))
        .unwrap();
        db.create_relation(RelationSchema::new("Articles", ["Item"]))
            .unwrap();
        db.insert("Supply", tuple!["C1", "R1", "I1"]).unwrap();
        db.insert("Supply", tuple!["C2", "R2", "I2"]).unwrap();
        db.insert("Supply", tuple!["C2", "R1", "I3"]).unwrap();
        db.insert("Articles", tuple!["I1"]).unwrap();
        db.insert("Articles", tuple!["I2"]).unwrap();
        db
    }

    #[test]
    fn insert_assigns_sequential_tids() {
        let db = supply_db();
        let tids: Vec<u64> = db.facts().map(|(_, t, _)| t.0).collect();
        assert_eq!(tids, vec![1, 2, 3, 4, 5]);
        assert_eq!(db.total_tuples(), 5);
    }

    #[test]
    fn set_semantics_dedupes() {
        let mut db = supply_db();
        let t1 = db.insert("Articles", tuple!["I1"]).unwrap();
        assert_eq!(t1, Tid(4));
        assert_eq!(db.total_tuples(), 5);
    }

    #[test]
    fn delete_and_get() {
        let mut db = supply_db();
        let (rel, t) = db.delete(Tid(3)).unwrap();
        assert_eq!(rel, "Supply");
        assert_eq!(t, tuple!["C2", "R1", "I3"]);
        assert_eq!(db.get(Tid(3)), None);
        assert!(db.delete(Tid(3)).is_err());
    }

    #[test]
    fn with_changes_builds_repairs() {
        let db = supply_db();
        // Repair D1: delete Supply(C2, R1, I3).
        let dels: BTreeSet<Tid> = [Tid(3)].into();
        let (d1, _) = db.with_changes(&dels, &[]).unwrap();
        assert_eq!(d1.total_tuples(), 4);
        // Repair D2: insert Articles(I3).
        let (d2, new) = db
            .with_changes(&BTreeSet::new(), &[("Articles".into(), tuple!["I3"])])
            .unwrap();
        assert_eq!(d2.total_tuples(), 6);
        assert_eq!(new.len(), 1);
        // Fresh tid does not collide with original tids.
        assert!(new[0].0 > 5);
        // Original untouched.
        assert_eq!(db.total_tuples(), 5);
    }

    #[test]
    fn same_content_ignores_tids() {
        let db = supply_db();
        let (a, _) = db
            .with_changes(&BTreeSet::new(), &[("Articles".into(), tuple!["I3"])])
            .unwrap();
        let mut b = supply_db();
        b.insert("Articles", tuple!["I3"]).unwrap();
        assert!(a.same_content(&b));
        assert!(!a.same_content(&db));
    }

    #[test]
    fn restricted_to_keeps_subset() {
        let db = supply_db();
        let keep: BTreeSet<Tid> = [Tid(1), Tid(4)].into();
        let sub = db.restricted_to(&keep);
        assert_eq!(sub.total_tuples(), 2);
        assert!(sub
            .relation("Supply")
            .unwrap()
            .contains(&tuple!["C1", "R1", "I1"]));
    }

    #[test]
    fn update_value_preserves_tid() {
        let mut db = supply_db();
        db.update_value(Tid(3), 2, Value::NULL).unwrap();
        let (_, t) = db.get(Tid(3)).unwrap();
        assert!(t.at(2).is_null());
        assert_eq!(db.total_tuples(), 5);
    }

    #[test]
    fn update_value_collision_shrinks_set() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("S", ["A"])).unwrap();
        let t1 = db.insert("S", tuple!["a"]).unwrap();
        let _t2 = db.insert("S", tuple!["b"]).unwrap();
        // Turning 'b' into 'a' collides; set semantics keeps one copy.
        db.update_value(Tid(2), 0, Value::str("a")).unwrap();
        assert_eq!(db.relation("S").unwrap().len(), 1);
        // The updated tid survives; the duplicate content's old tid is gone.
        assert!(db.get(Tid(2)).is_some());
        assert!(db.get(t1).is_none());
    }

    #[test]
    fn arity_and_type_validation() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::with_attributes(
            "T",
            vec![
                crate::Attribute::typed("N", crate::AttrType::Int),
                crate::Attribute::typed("S", crate::AttrType::Str),
            ],
        ))
        .unwrap();
        assert!(db.insert("T", tuple![1]).is_err());
        assert!(db.insert("T", tuple!["x", "y"]).is_err());
        assert!(db.insert("T", tuple![1, "y"]).is_ok());
        // Nulls are admitted by every type.
        assert!(db
            .insert("T", Tuple::new(vec![Value::NULL, Value::NULL]))
            .is_ok());
    }

    #[test]
    fn fresh_nulls_are_distinct() {
        let mut db = Database::new();
        let a = db.fresh_null();
        let b = db.fresh_null();
        assert_ne!(a, b);
        assert!(a.is_null() && b.is_null());
    }

    #[test]
    fn active_domain_excludes_nulls() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("R", ["A", "B"]))
            .unwrap();
        db.insert("R", Tuple::new(vec![Value::str("a"), Value::NULL]))
            .unwrap();
        let dom = db.active_domain();
        assert_eq!(dom.len(), 1);
        assert!(dom.contains(&Value::str("a")));
    }

    #[test]
    fn with_schema_creates_all_relations() {
        let mut schema = crate::DatabaseSchema::new();
        schema.add(RelationSchema::new("A", ["X"])).unwrap();
        schema.add(RelationSchema::new("B", ["X", "Y"])).unwrap();
        let mut db = Database::with_schema(&schema);
        assert!(db.relation("A").is_some());
        assert_eq!(db.relation("B").unwrap().schema().arity(), 2);
        db.insert("A", tuple![1]).unwrap();
        assert_eq!(db.total_tuples(), 1);
    }

    #[test]
    fn hash_index_caches_and_invalidates() {
        let mut db = supply_db();
        let key = |s: &str| db.dict().lookup(&Value::str(s)).unwrap();
        let ix = db.hash_index("Supply", &[0]).unwrap();
        // Rows 1 and 2 (tids 2 and 3) carry company C2.
        assert_eq!(ix.rows_for_vid(key("C2")), &[1, 2]);
        // Second call returns the same shared index.
        let again = db.hash_index("Supply", &[0]).unwrap();
        assert!(Arc::ptr_eq(&ix, &again));
        // Out-of-range column and unknown relation yield no index.
        assert!(db.hash_index("Supply", &[9]).is_none());
        assert!(db.hash_index("Supply", &[]).is_none());
        assert!(db.hash_index("Nope", &[0]).is_none());
        // A mutation invalidates: the rebuilt index sees the new tuple.
        db.insert("Supply", tuple!["C2", "R9", "I9"]).unwrap();
        let rebuilt = db.hash_index("Supply", &[0]).unwrap();
        assert!(!Arc::ptr_eq(&ix, &rebuilt));
        assert_eq!(
            rebuilt
                .rows_for_vid(db.dict().lookup(&Value::str("C2")).unwrap())
                .len(),
            3
        );
        // Clones start with a fresh (empty) cache but identical content.
        let clone = db.clone();
        let cloned_ix = clone.hash_index("Supply", &[0]).unwrap();
        assert!(!Arc::ptr_eq(&rebuilt, &cloned_ix));
        assert_eq!(
            cloned_ix.rows_for_vid(clone.dict().lookup(&Value::str("C2")).unwrap()),
            rebuilt.rows_for_vid(db.dict().lookup(&Value::str("C2")).unwrap())
        );
    }

    #[test]
    fn index_invalidation_is_scoped_to_touched_relation() {
        let mut db = supply_db();
        let supply_ix = db.hash_index("Supply", &[0]).unwrap();
        let supply_sorted = db.sorted_index("Supply", 0).unwrap();
        let articles_ix = db.hash_index("Articles", &[0]).unwrap();
        // Mutating Articles leaves the Supply indexes untouched…
        db.insert("Articles", tuple!["I9"]).unwrap();
        assert!(Arc::ptr_eq(
            &supply_ix,
            &db.hash_index("Supply", &[0]).unwrap()
        ));
        assert!(Arc::ptr_eq(
            &supply_sorted,
            &db.sorted_index("Supply", 0).unwrap()
        ));
        // …but rebuilds the Articles index.
        let articles_again = db.hash_index("Articles", &[0]).unwrap();
        assert!(!Arc::ptr_eq(&articles_ix, &articles_again));
        // Deleting from Supply drops only the Supply indexes.
        let articles_after = db.hash_index("Articles", &[0]).unwrap();
        db.delete(Tid(3)).unwrap();
        assert!(!Arc::ptr_eq(
            &supply_ix,
            &db.hash_index("Supply", &[0]).unwrap()
        ));
        assert!(Arc::ptr_eq(
            &articles_after,
            &db.hash_index("Articles", &[0]).unwrap()
        ));
    }

    #[test]
    fn epoch_and_change_log_track_mutations() {
        let mut db = supply_db();
        let e0 = db.epoch();
        assert_eq!(db.changes_since(e0), Some(&[][..]));
        let t = db.insert("Articles", tuple!["I9"]).unwrap();
        // Duplicate insert and identity update are no-ops: no epoch bump.
        db.insert("Articles", tuple!["I9"]).unwrap();
        db.update_value(t, 0, Value::str("I9")).unwrap();
        assert_eq!(db.epoch(), e0 + 1);
        db.delete(Tid(1)).unwrap();
        db.update_value(Tid(2), 2, Value::str("I9")).unwrap();
        assert_eq!(db.epoch(), e0 + 3);
        let log = db.changes_since(e0).unwrap();
        assert_eq!(
            log,
            &[
                Change::Insert {
                    relation: 1,
                    tid: t
                },
                Change::Delete {
                    relation: 0,
                    tid: Tid(1)
                },
                Change::Update {
                    relation: 0,
                    tid: Tid(2)
                },
            ]
        );
        // Future epochs and structural changes answer None.
        assert!(db.changes_since(db.epoch() + 1).is_none());
        db.create_relation(RelationSchema::new("Fresh", ["X"]))
            .unwrap();
        assert!(db.changes_since(e0).is_none());
        assert_eq!(db.changes_since(db.epoch()), Some(&[][..]));
        // A clone carries the epoch/log forward.
        let clone = db.clone();
        assert_eq!(clone.epoch(), db.epoch());
    }

    #[test]
    fn update_collision_logs_delete_then_update() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("S", ["A"])).unwrap();
        let e0 = db.epoch();
        let t1 = db.insert("S", tuple!["a"]).unwrap();
        let t2 = db.insert("S", tuple!["b"]).unwrap();
        db.update_value(t2, 0, Value::str("a")).unwrap();
        let log = db.changes_since(e0).unwrap();
        assert_eq!(
            log,
            &[
                Change::Insert {
                    relation: 0,
                    tid: t1
                },
                Change::Insert {
                    relation: 0,
                    tid: t2
                },
                Change::Delete {
                    relation: 0,
                    tid: t1
                },
                Change::Update {
                    relation: 0,
                    tid: t2
                },
            ]
        );
    }

    #[test]
    fn content_stamps_remint_on_mutation_and_survive_clones() {
        let mut db = supply_db();
        let s0 = db.relation("Supply").unwrap().content_stamp();
        let a0 = db.relation("Articles").unwrap().content_stamp();
        assert_ne!(s0, a0); // globally unique
                            // Clones copy stamps (identical content).
        let clone = db.clone();
        assert_eq!(clone.relation("Supply").unwrap().content_stamp(), s0);
        // A mutation re-mints only the touched relation's stamp.
        db.insert("Articles", tuple!["I9"]).unwrap();
        assert_eq!(db.relation("Supply").unwrap().content_stamp(), s0);
        let a1 = db.relation("Articles").unwrap().content_stamp();
        assert_ne!(a1, a0);
        // No-op mutations don't re-mint.
        db.insert("Articles", tuple!["I9"]).unwrap();
        assert_eq!(db.relation("Articles").unwrap().content_stamp(), a1);
        // Derived instances keep stamps of untouched relations and re-mint
        // the filtered ones.
        let dels: BTreeSet<Tid> = [Tid(1)].into();
        let (derived, _) = db.with_changes(&dels, &[]).unwrap();
        assert_ne!(derived.relation("Supply").unwrap().content_stamp(), s0);
        assert_eq!(derived.relation("Articles").unwrap().content_stamp(), a1);
        let kept = db.restricted_to(&db.tids());
        assert_eq!(kept.relation("Supply").unwrap().content_stamp(), s0);
    }

    #[test]
    fn column_stats_cache_and_invalidate() {
        let mut db = supply_db();
        let stats = db.column_stats("Supply").unwrap();
        assert_eq!(stats.rows(), 3);
        assert_eq!(stats.distinct(0), 2); // C1, C2
        let again = db.column_stats("Supply").unwrap();
        assert!(Arc::ptr_eq(&stats, &again));
        assert!(db.column_stats("Nope").is_none());
        // Mutation invalidates the touched relation's stats only.
        let articles = db.column_stats("Articles").unwrap();
        db.insert("Supply", tuple!["C3", "R9", "I9"]).unwrap();
        assert!(!Arc::ptr_eq(&stats, &db.column_stats("Supply").unwrap()));
        assert!(Arc::ptr_eq(
            &articles,
            &db.column_stats("Articles").unwrap()
        ));
        assert_eq!(db.column_stats("Supply").unwrap().rows(), 4);
    }

    #[test]
    fn multi_column_hash_index_probes() {
        let db = supply_db();
        let ix = db.hash_index("Supply", &[0, 1]).unwrap();
        let key = [
            db.dict().lookup(&Value::str("C2")).unwrap(),
            db.dict().lookup(&Value::str("R1")).unwrap(),
        ];
        assert_eq!(ix.rows_for(&key), &[2]); // tid 3 at row position 2
        assert_eq!(
            db.relation("Supply").unwrap().store().tid_at(2),
            Some(Tid(3))
        );
    }

    #[test]
    fn sorted_index_caches_and_orders() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("N", ["V"])).unwrap();
        for v in [5i64, -2, 9, 0] {
            db.insert("N", tuple![v]).unwrap();
        }
        let ix = db.sorted_index("N", 0).unwrap();
        let again = db.sorted_index("N", 0).unwrap();
        assert!(Arc::ptr_eq(&ix, &again));
        let vals: Vec<Value> = ix
            .entries()
            .iter()
            .filter_map(|&(vid, _)| db.dict().resolve(vid))
            .collect();
        assert_eq!(
            vals,
            vec![Value::Int(-2), Value::Int(0), Value::Int(5), Value::Int(9)]
        );
        assert!(db.sorted_index("N", 3).is_none());
        db.insert("N", tuple![7]).unwrap();
        let rebuilt = db.sorted_index("N", 0).unwrap();
        assert!(!Arc::ptr_eq(&ix, &rebuilt));
        assert_eq!(rebuilt.entries().len(), 5);
    }

    #[test]
    fn insert_vids_fast_path_matches_insert() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("R", ["A", "B"]))
            .unwrap();
        let key: Box<[Vid]> = [
            db.dict().intern(&Value::str("a")),
            db.dict().intern(&Value::Int(1)),
        ]
        .into();
        let t1 = db.insert_vids("R", key.clone()).unwrap();
        // Set semantics against the value-level path.
        let t2 = db.insert("R", tuple!["a", 1]).unwrap();
        assert_eq!(t1, t2);
        assert_eq!(db.total_tuples(), 1);
        // Arity mismatch errors.
        assert!(db
            .insert_vids("R", [db.dict().intern(&Value::Int(1))].into())
            .is_err());
        // Typed schemas are enforced on the vid path too.
        db.create_relation(RelationSchema::with_attributes(
            "T",
            vec![crate::Attribute::typed("N", crate::AttrType::Int)],
        ))
        .unwrap();
        let str_vid = db.dict().intern(&Value::str("nope"));
        assert!(db.insert_vids("T", [str_vid].into()).is_err());
        let int_vid = db.dict().intern(&Value::Int(3));
        assert!(db.insert_vids("T", [int_vid].into()).is_ok());
    }

    #[test]
    fn shared_dictionary_across_clones() {
        let db = supply_db();
        let clone = db.clone();
        // Same Arc: a vid means the same value in the original and the clone.
        let vid = db.dict().lookup(&Value::str("C1")).unwrap();
        assert_eq!(clone.dict().resolve(vid), Some(Value::str("C1")));
    }

    #[test]
    fn check_insertable_matches_insert() {
        let db = supply_db();
        assert!(db
            .check_insertable("Supply", &tuple!["C3", "R3", "I4"])
            .is_ok());
        assert!(db.check_insertable("Supply", &tuple!["C3"]).is_err());
        assert!(db.check_insertable("Nope", &tuple!["x"]).is_err());
    }

    #[test]
    fn with_changes_unknown_tid_errors() {
        let db = supply_db();
        let dels: BTreeSet<Tid> = [Tid(99)].into();
        assert!(db.with_changes(&dels, &[]).is_err());
    }

    #[test]
    fn unknown_relation_errors() {
        let mut db = Database::new();
        assert!(db.insert("Nope", tuple![1]).is_err());
        assert!(db.require_relation("Nope").is_err());
    }

    #[test]
    fn float_int_canonicalization_keeps_set_semantics() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("R", ["A"])).unwrap();
        let t1 = db.insert("R", tuple![2]).unwrap();
        // Float(2.0) is structurally equal to Int(2): same row.
        let t2 = db.insert("R", Tuple::new(vec![Value::Float(2.0)])).unwrap();
        assert_eq!(t1, t2);
        assert_eq!(db.total_tuples(), 1);
        // Non-integral floats stay distinct.
        let t3 = db.insert("R", Tuple::new(vec![Value::Float(2.5)])).unwrap();
        assert_ne!(t1, t3);
    }
}
