#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Untrusted input must never panic the process: unwraps/expects are banned
// outside tests (allow-listed per site where an invariant is locally proven).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! # cqa-relation
//!
//! The relational database substrate for the `inconsistent-db` workspace: a
//! small, deterministic, in-memory relational engine on which repairs,
//! consistent query answering, answer-set programs, mediators and cleaners are
//! built.
//!
//! Design goals, in order:
//!
//! 1. **Determinism.** Every container iterates in a reproducible order, so
//!    repair enumerations, stable models and benchmarks are stable across
//!    runs.
//! 2. **Tuple identity.** The survey manipulates tuples by *global tuple
//!    identifiers* (tids, written ι₁, ι₂, … in the paper); [`Tid`] is a
//!    first-class handle that survives across repairs of the same original
//!    instance.
//! 3. **SQL-style nulls.** The null-based repair semantics of §4.2–4.3 of the
//!    paper require a `NULL` that never satisfies joins or comparisons.
//!    [`Value::Null`] carries a label (labelled nulls for data exchange);
//!    three-valued comparison lives in [`value::sql_eq`] and friends so that
//!    *structural* equality stays usable for set semantics.
//! 4. **Dictionary-encoded columnar storage.** Every value is interned once
//!    into a shared [`ValueDict`] and stored as a dense 32-bit [`Vid`];
//!    relations are per-attribute columns ([`ColumnStore`]) indexed by the
//!    typed index family ([`HashIndex`], [`SortedIndex`]). [`Tuple`]s and
//!    [`Value`]s survive only at the codec/display/API boundary.
//!
//! The crate has no dependencies outside `std`.

pub mod changes;
pub mod codec;
pub mod column;
pub mod dict;
pub mod display;
pub mod error;
pub mod fxhash;
pub mod index;
pub mod instance;
pub mod schema;
pub mod stats;
pub mod tuple;
pub mod value;
pub mod view;

pub use changes::{Change, ChangeLog};
pub use codec::{load, save};
pub use column::{ColumnStore, VidRow};
pub use dict::{ValueDict, Vid};
pub use error::RelationError;
pub use index::{HashIndex, SortedIndex};
pub use instance::{Database, Relation};
pub use schema::{AttrType, Attribute, DatabaseSchema, RelationSchema};
pub use stats::ColumnStats;
pub use tuple::{Tid, Tuple};
pub use value::{sql_eq, sql_le, sql_lt, Truth, Value};
pub use view::{DeltaView, Facts};

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, RelationError>;
