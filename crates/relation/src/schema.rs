//! Relation and database schemas.

use crate::error::RelationError;
use crate::value::Value;
use crate::Result;
use std::fmt;
use std::sync::Arc;

/// Declared type of an attribute.
///
/// `Any` is the permissive default used by most of the paper's abstract
/// examples (values like `a₁`, `I₃`); typed attributes get checked on insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// No type checking.
    Any,
    /// `Value::Int` (or null).
    Int,
    /// `Value::Float` or `Value::Int` (or null).
    Float,
    /// `Value::Str` (or null).
    Str,
    /// `Value::Bool` (or null).
    Bool,
}

impl AttrType {
    /// Does `value` inhabit this type? Nulls inhabit every type (SQL-style).
    pub fn admits(self, value: &Value) -> bool {
        matches!(
            (self, value),
            (_, Value::Null(_))
                | (AttrType::Any, _)
                | (AttrType::Int, Value::Int(_))
                | (AttrType::Float, Value::Float(_) | Value::Int(_))
                | (AttrType::Str, Value::Str(_))
                | (AttrType::Bool, Value::Bool(_))
        )
    }
}

/// A named, typed attribute.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Attribute {
    /// Attribute name (unique within its relation).
    pub name: String,
    /// Declared type.
    pub ty: AttrType,
}

impl Attribute {
    /// An attribute of type [`AttrType::Any`].
    pub fn any(name: impl Into<String>) -> Attribute {
        Attribute {
            name: name.into(),
            ty: AttrType::Any,
        }
    }

    /// A typed attribute.
    pub fn typed(name: impl Into<String>, ty: AttrType) -> Attribute {
        Attribute {
            name: name.into(),
            ty,
        }
    }
}

/// Schema of one relation: a name plus an ordered list of attributes.
///
/// Wrapped in `Arc` by [`crate::Relation`], so cloning a schema handle is
/// cheap and repairs share schemas with the original instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationSchema {
    name: String,
    attributes: Vec<Attribute>,
}

impl RelationSchema {
    /// Build a schema with [`AttrType::Any`] attributes from names only.
    ///
    /// ```
    /// use cqa_relation::RelationSchema;
    /// let s = RelationSchema::new("Supply", ["Company", "Receiver", "Item"]);
    /// assert_eq!(s.arity(), 3);
    /// ```
    pub fn new<S: Into<String>>(
        name: impl Into<String>,
        attribute_names: impl IntoIterator<Item = S>,
    ) -> RelationSchema {
        RelationSchema {
            name: name.into(),
            attributes: attribute_names
                .into_iter()
                .map(|n| Attribute::any(n.into()))
                .collect(),
        }
    }

    /// Build a schema from full attribute descriptors.
    pub fn with_attributes(name: impl Into<String>, attributes: Vec<Attribute>) -> RelationSchema {
        RelationSchema {
            name: name.into(),
            attributes,
        }
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// The attributes in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Position of attribute `name`.
    pub fn position_of(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == name)
    }

    /// Position of attribute `name`, as a `Result` with a helpful error.
    pub fn require_position(&self, name: &str) -> Result<usize> {
        self.position_of(name)
            .ok_or_else(|| RelationError::UnknownAttribute {
                relation: self.name.clone(),
                attribute: name.to_string(),
            })
    }

    /// Map several attribute names to positions.
    pub fn positions_of<'a>(&self, names: impl IntoIterator<Item = &'a str>) -> Result<Vec<usize>> {
        names
            .into_iter()
            .map(|n| self.require_position(n))
            .collect()
    }

    /// Attribute name at `position`.
    pub fn attribute_name(&self, position: usize) -> &str {
        &self.attributes[position].name
    }
}

impl fmt::Display for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", a.name)?;
        }
        write!(f, ")")
    }
}

/// A database schema: an ordered collection of relation schemas.
#[derive(Debug, Clone, Default)]
pub struct DatabaseSchema {
    relations: Vec<Arc<RelationSchema>>,
}

impl DatabaseSchema {
    /// Empty schema.
    pub fn new() -> DatabaseSchema {
        DatabaseSchema::default()
    }

    /// Add a relation schema; errors on duplicate names.
    pub fn add(&mut self, schema: RelationSchema) -> Result<Arc<RelationSchema>> {
        if self.get(schema.name()).is_some() {
            return Err(RelationError::DuplicateRelation(schema.name().to_string()));
        }
        let arc = Arc::new(schema);
        self.relations.push(Arc::clone(&arc));
        Ok(arc)
    }

    /// Look up a relation schema by name.
    pub fn get(&self, name: &str) -> Option<&Arc<RelationSchema>> {
        self.relations.iter().find(|r| r.name() == name)
    }

    /// All relation schemas in declaration order.
    pub fn relations(&self) -> &[Arc<RelationSchema>] {
        &self.relations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_and_names() {
        let s = RelationSchema::new("Employee", ["Name", "Salary"]);
        assert_eq!(s.position_of("Salary"), Some(1));
        assert_eq!(s.position_of("Oops"), None);
        assert_eq!(s.attribute_name(0), "Name");
        assert!(s.require_position("Oops").is_err());
        assert_eq!(s.positions_of(["Salary", "Name"]).unwrap(), vec![1, 0]);
    }

    #[test]
    fn typed_attributes_admit() {
        assert!(AttrType::Int.admits(&Value::int(1)));
        assert!(!AttrType::Int.admits(&Value::str("x")));
        assert!(AttrType::Float.admits(&Value::int(1)));
        assert!(AttrType::Int.admits(&Value::NULL));
        assert!(AttrType::Any.admits(&Value::Bool(true)));
        assert!(AttrType::Str.admits(&Value::str("x")));
        assert!(AttrType::Bool.admits(&Value::Bool(false)));
        assert!(!AttrType::Bool.admits(&Value::int(0)));
    }

    #[test]
    fn database_schema_rejects_duplicates() {
        let mut db = DatabaseSchema::new();
        db.add(RelationSchema::new("R", ["A"])).unwrap();
        let err = db.add(RelationSchema::new("R", ["B"])).unwrap_err();
        assert_eq!(err, RelationError::DuplicateRelation("R".into()));
        assert_eq!(db.relations().len(), 1);
        assert!(db.get("R").is_some());
    }

    #[test]
    fn display() {
        let s = RelationSchema::new("R", ["A", "B"]);
        assert_eq!(s.to_string(), "R(A, B)");
    }
}
