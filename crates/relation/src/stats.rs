//! Per-relation column statistics for cost-based join planning.
//!
//! A [`ColumnStats`] summarizes one relation's columns: the row count and an
//! estimated number of distinct [`Vid`]s per column. Estimates come from a
//! **deterministic stride sample** over the columnar store — row positions
//! `0, s, 2s, …` for a stride chosen so at most [`ColumnStats::SAMPLE_CAP`]
//! rows are touched — so the same content always yields the same numbers, on
//! every thread, with no randomness and no clock. Small relations are
//! measured exactly.
//!
//! Statistics are *estimates for planning only*: they influence which join
//! order the evaluator picks, never which answers it produces, so a stale or
//! coarse figure can cost time but not correctness.

use crate::column::ColumnStore;
use crate::dict::Vid;
use crate::fxhash::WordHashSet;

/// Row count plus per-column distinct-vid estimates for one relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnStats {
    rows: usize,
    /// Estimated distinct vids per column (aligned with the store's arity).
    distinct: Vec<usize>,
    /// How many rows the estimate actually inspected.
    sampled: usize,
}

impl ColumnStats {
    /// Relations at or below this many rows are measured exactly; larger
    /// ones are stride-sampled down to roughly this many probes.
    pub const SAMPLE_CAP: usize = 4096;

    /// Build statistics over `store` with deterministic stride sampling.
    pub fn build(store: &ColumnStore) -> ColumnStats {
        let rows = store.len();
        let arity = store.arity();
        if rows == 0 {
            return ColumnStats {
                rows,
                distinct: vec![0; arity],
                sampled: 0,
            };
        }
        let stride = rows.div_ceil(Self::SAMPLE_CAP).max(1);
        let mut sampled = 0usize;
        let mut distinct = Vec::with_capacity(arity);
        for col in 0..arity {
            let column: &[Vid] = store.column(col);
            let mut seen: WordHashSet<Vid> = WordHashSet::default();
            let mut count = 0usize;
            for &vid in column.iter().step_by(stride) {
                seen.insert(vid);
                count += 1;
            }
            if col == 0 {
                sampled = count;
            }
            // Naive scale-up of the sampled distinct count, capped at the
            // row count. Exact when stride == 1.
            let est = if stride == 1 {
                seen.len()
            } else {
                seen.len().saturating_mul(stride).min(rows)
            };
            distinct.push(est.max(1));
        }
        ColumnStats {
            rows,
            distinct,
            sampled,
        }
    }

    /// Total rows in the relation at build time.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Rows the sample actually inspected (`== rows` for small relations).
    pub fn sampled(&self) -> usize {
        self.sampled
    }

    /// Estimated distinct vids in `col` (always ≥ 1 for non-empty
    /// relations; 0 only when the relation is empty or `col` out of range).
    pub fn distinct(&self, col: usize) -> usize {
        self.distinct.get(col).copied().unwrap_or(0)
    }

    /// Estimated rows matching an equality probe on every column in `cols`:
    /// `rows / Π distinct(col)`, floored at 1, in saturating integer
    /// arithmetic (no floats — planning must be bit-deterministic).
    pub fn probe_estimate(&self, cols: &[usize]) -> u128 {
        if self.rows == 0 {
            return 0;
        }
        let mut est = self.rows as u128;
        for &col in cols {
            let d = self.distinct(col).max(1) as u128;
            est = (est / d).max(1);
        }
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_of(rows: &[&[u32]]) -> ColumnStore {
        let arity = rows.first().map_or(0, |r| r.len());
        let mut store = ColumnStore::new(arity);
        for (i, row) in rows.iter().enumerate() {
            let key: Vec<Vid> = row.iter().map(|&v| Vid::table(v)).collect();
            store.push(crate::Tid(i as u64 + 1), &key);
        }
        store
    }

    #[test]
    fn exact_stats_for_small_relations() {
        let store = store_of(&[&[1, 10], &[1, 11], &[2, 12], &[2, 12]]);
        let stats = ColumnStats::build(&store);
        assert_eq!(stats.rows(), 4);
        assert_eq!(stats.sampled(), 4);
        assert_eq!(stats.distinct(0), 2);
        assert_eq!(stats.distinct(1), 3);
        assert_eq!(stats.distinct(9), 0); // out of range
    }

    #[test]
    fn probe_estimate_divides_by_distinct() {
        let store = store_of(&[&[1, 10], &[1, 11], &[2, 12], &[2, 13]]);
        let stats = ColumnStats::build(&store);
        assert_eq!(stats.probe_estimate(&[0]), 2); // 4 rows / 2 distinct
        assert_eq!(stats.probe_estimate(&[0, 1]), 1); // floored at 1
        assert_eq!(stats.probe_estimate(&[]), 4); // no bound column: scan
    }

    #[test]
    fn empty_relation_has_zero_stats() {
        let store = ColumnStore::new(2);
        let stats = ColumnStats::build(&store);
        assert_eq!(stats.rows(), 0);
        assert_eq!(stats.distinct(0), 0);
        assert_eq!(stats.probe_estimate(&[0]), 0);
    }

    #[test]
    fn sampling_is_deterministic_and_bounded() {
        let mut store = ColumnStore::new(1);
        for i in 0..(ColumnStats::SAMPLE_CAP as u32 * 3) {
            store.push(crate::Tid(i as u64 + 1), &[Vid::table(i % 97)]);
        }
        let a = ColumnStats::build(&store);
        let b = ColumnStats::build(&store);
        assert_eq!(a, b); // same content → same numbers, always
        assert!(a.sampled() <= ColumnStats::SAMPLE_CAP + 1);
        // 97 true distinct values; the scaled estimate stays in range.
        assert!(a.distinct(0) >= 1 && a.distinct(0) <= a.rows());
    }
}
