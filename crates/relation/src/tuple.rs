//! Tuples and global tuple identifiers.

use crate::value::Value;
use std::fmt;

/// A global tuple identifier (the paper's ι₁, ι₂, …).
///
/// Tids are assigned by the [`crate::Database`] on insertion and are never
/// reused, so a tid minted for the original instance still denotes "that
/// tuple" inside every repair, conflict hyper-graph node, contingency set or
/// answer-set annotation derived from the instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tid(pub u64);

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ι{}", self.0)
    }
}

/// An immutable tuple of [`Value`]s.
///
/// Stored as a boxed slice: two words on the stack, no spare capacity.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple(Box<[Value]>);

impl Tuple {
    /// Build a tuple from any value-convertible sequence.
    pub fn new(values: impl IntoIterator<Item = Value>) -> Tuple {
        Tuple(values.into_iter().collect())
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Value at `position`, panicking on out-of-range (positions come from
    /// schema-validated code paths).
    pub fn at(&self, position: usize) -> &Value {
        &self.0[position]
    }

    /// Value at `position` without panicking.
    pub fn get(&self, position: usize) -> Option<&Value> {
        self.0.get(position)
    }

    /// True iff any attribute is a null.
    pub fn has_null(&self) -> bool {
        self.0.iter().any(Value::is_null)
    }

    /// A copy of this tuple with `position` replaced by `value` (the
    /// attribute-level update used by null-based attribute repairs, §4.3).
    pub fn with_value(&self, position: usize, value: Value) -> Tuple {
        let mut vals: Box<[Value]> = self.0.clone();
        vals[position] = value;
        Tuple(vals)
    }

    /// Project onto the given positions, in the given order.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple(positions.iter().map(|&p| self.0[p].clone()).collect())
    }

    /// Iterate over the values.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.0.iter()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", v.render())?;
        }
        write!(f, ")")
    }
}

impl<V: Into<Value>> FromIterator<V> for Tuple {
    fn from_iter<T: IntoIterator<Item = V>>(iter: T) -> Self {
        Tuple(iter.into_iter().map(Into::into).collect())
    }
}

impl std::ops::Index<usize> for Tuple {
    type Output = Value;

    fn index(&self, index: usize) -> &Value {
        &self.0[index]
    }
}

/// Build a tuple from heterogeneous literals: `tuple!["page", 5000]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    #[test]
    fn construction_and_access() {
        let t = tuple!["page", 5000];
        assert_eq!(t.arity(), 2);
        assert_eq!(t.at(0), &Value::str("page"));
        assert_eq!(t.at(1), &Value::int(5000));
        assert_eq!(t.get(2), None);
        assert_eq!(t[1], Value::int(5000));
    }

    #[test]
    fn projection_preserves_order_and_allows_repeats() {
        let t = tuple![1, 2, 3];
        let p = t.project(&[2, 0, 0]);
        assert_eq!(p, tuple![3, 1, 1]);
    }

    #[test]
    fn with_value_is_a_copy() {
        let t = tuple!["a", "b"];
        let u = t.with_value(1, Value::NULL);
        assert_eq!(t.at(1), &Value::str("b"));
        assert!(u.at(1).is_null());
        assert!(u.has_null());
        assert!(!t.has_null());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Tid(6).to_string(), "ι6");
        assert_eq!(tuple!["a", 1].to_string(), "(a, 1)");
    }

    #[test]
    fn tuples_are_set_friendly() {
        use std::collections::BTreeSet;
        let mut s = BTreeSet::new();
        s.insert(tuple![1, 2]);
        s.insert(tuple![1, 2]);
        s.insert(tuple![2, 1]);
        assert_eq!(s.len(), 2);
    }
}
