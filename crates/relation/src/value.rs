//! Database values with total order plus SQL's three-valued comparisons.
//!
//! Two comparison regimes coexist, on purpose:
//!
//! * **Structural** (`Eq`/`Ord`/`Hash` on [`Value`]): every value compares
//!   with every value, nulls are equal iff their labels are equal. This is
//!   what instances, repairs (sets of tuples) and deterministic iteration
//!   need.
//! * **SQL three-valued** ([`sql_eq`], [`sql_lt`], [`sql_le`] returning
//!   [`Truth`]): any comparison touching a null is [`Truth::Unknown`]. This is
//!   what query evaluation over instances with nulls must use so that "NULL
//!   cannot be used to satisfy joins" (§4.2–4.3 of the paper) holds.

use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A single database value.
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// IEEE-754 double, ordered with `total_cmp` so `Value` has a total order.
    Float(f64),
    /// Interned-ish string (cheap to clone via `Arc`).
    Str(Arc<str>),
    /// Boolean.
    Bool(bool),
    /// A (labelled) null. Label `0` is the plain SQL `NULL`; labels `> 0` are
    /// distinct labelled nulls as used in data exchange and peer systems
    /// (§4.2). Two nulls are structurally equal iff their labels coincide, but
    /// *no* null ever satisfies an SQL comparison.
    Null(u32),
}

impl Value {
    /// The plain, unlabelled SQL `NULL`.
    pub const NULL: Value = Value::Null(0);

    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Build an integer value.
    pub fn int(i: i64) -> Value {
        Value::Int(i)
    }

    /// True iff this is any null (labelled or not).
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null(_))
    }

    /// The label of a null, if this is one.
    pub fn null_label(&self) -> Option<u32> {
        match self {
            Value::Null(l) => Some(*l),
            _ => None,
        }
    }

    /// A short name for the runtime type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Bool(_) => "bool",
            Value::Null(_) => "null",
        }
    }

    /// Numeric view (ints widen to floats) used by aggregate evaluation.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Render the value without quotes, the way the paper's tables do.
    pub fn render(&self) -> Cow<'_, str> {
        match self {
            Value::Int(i) => Cow::Owned(i.to_string()),
            Value::Float(f) => Cow::Owned(format!("{f}")),
            Value::Str(s) => Cow::Borrowed(s),
            Value::Bool(b) => Cow::Owned(b.to_string()),
            Value::Null(0) => Cow::Borrowed("NULL"),
            Value::Null(l) => Cow::Owned(format!("NULL_{l}")),
        }
    }

    /// Rank used to order values of different runtime types.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null(_) => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total structural order: by type rank, then within type. Ints and
    /// floats compare numerically against each other so `Int(1) < Float(1.5)`
    /// behaves as expected in ORDER BY-style uses.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Null(a), Null(b)) => a.cmp(b),
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            // Ints and numerically-equal floats must hash alike because they
            // compare as equal.
            Value::Int(i) => {
                state.write_u8(2);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                state.write_u8(2);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                state.write_u8(4);
                s.hash(state);
            }
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            Value::Null(l) => {
                state.write_u8(0);
                l.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "'{s}'"),
            other => write!(f, "{}", other.render()),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

/// SQL's three truth values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Truth {
    /// Definitely true.
    True,
    /// Definitely false.
    False,
    /// Unknown (some operand was `NULL`).
    Unknown,
}

impl Truth {
    /// Kleene conjunction.
    pub fn and(self, other: Truth) -> Truth {
        use Truth::*;
        match (self, other) {
            (False, _) | (_, False) => False,
            (True, True) => True,
            _ => Unknown,
        }
    }

    /// Kleene disjunction.
    pub fn or(self, other: Truth) -> Truth {
        use Truth::*;
        match (self, other) {
            (True, _) | (_, True) => True,
            (False, False) => False,
            _ => Unknown,
        }
    }

    /// Kleene negation (also available as the `!` operator).
    #[allow(clippy::should_implement_trait)] // `!t` works too; see `Not` impl
    pub fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }

    /// SQL WHERE-clause semantics: only definite truth selects a row.
    pub fn is_definitely_true(self) -> bool {
        self == Truth::True
    }

    /// Lift a two-valued bool.
    pub fn from_bool(b: bool) -> Truth {
        if b {
            Truth::True
        } else {
            Truth::False
        }
    }
}

impl std::ops::Not for Truth {
    type Output = Truth;

    fn not(self) -> Truth {
        Truth::not(self)
    }
}

/// SQL equality: `Unknown` if either side is null, structural equality
/// otherwise.
pub fn sql_eq(a: &Value, b: &Value) -> Truth {
    if a.is_null() || b.is_null() {
        Truth::Unknown
    } else {
        Truth::from_bool(a == b)
    }
}

/// SQL `<`.
pub fn sql_lt(a: &Value, b: &Value) -> Truth {
    if a.is_null() || b.is_null() {
        Truth::Unknown
    } else {
        Truth::from_bool(a < b)
    }
}

/// SQL `<=`.
pub fn sql_le(a: &Value, b: &Value) -> Truth {
    if a.is_null() || b.is_null() {
        Truth::Unknown
    } else {
        Truth::from_bool(a <= b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn structural_equality_of_nulls() {
        assert_eq!(Value::NULL, Value::Null(0));
        assert_ne!(Value::Null(1), Value::Null(2));
    }

    #[test]
    fn sql_null_never_joins() {
        assert_eq!(sql_eq(&Value::NULL, &Value::NULL), Truth::Unknown);
        assert_eq!(sql_eq(&Value::Null(3), &Value::Null(3)), Truth::Unknown);
        assert_eq!(sql_eq(&Value::NULL, &Value::int(1)), Truth::Unknown);
    }

    #[test]
    fn sql_eq_on_non_nulls_is_two_valued() {
        assert_eq!(sql_eq(&Value::int(1), &Value::int(1)), Truth::True);
        assert_eq!(sql_eq(&Value::int(1), &Value::int(2)), Truth::False);
        assert_eq!(sql_eq(&Value::str("a"), &Value::str("a")), Truth::True);
    }

    #[test]
    fn int_float_numeric_comparison() {
        assert_eq!(Value::Int(1), Value::Float(1.0));
        assert!(Value::Int(1) < Value::Float(1.5));
        assert!(Value::Float(0.5) < Value::Int(1));
    }

    #[test]
    fn eq_implies_same_hash_across_int_float() {
        assert_eq!(hash_of(&Value::Int(7)), hash_of(&Value::Float(7.0)));
    }

    #[test]
    fn total_order_across_types_is_consistent() {
        let mut vals = [
            Value::str("z"),
            Value::int(-1),
            Value::NULL,
            Value::Bool(true),
            Value::Float(2.5),
            Value::Null(9),
        ];
        vals.sort();
        // Nulls first, then bools, then numerics, then strings.
        assert!(vals[0].is_null() && vals[1].is_null());
        assert_eq!(vals[2], Value::Bool(true));
        assert_eq!(vals.last().unwrap(), &Value::str("z"));
    }

    #[test]
    fn kleene_tables() {
        use Truth::*;
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(False.and(Unknown), False);
        assert_eq!(True.or(Unknown), True);
        assert_eq!(False.or(Unknown), Unknown);
        assert_eq!(Unknown.not(), Unknown);
    }

    #[test]
    fn display_and_render() {
        assert_eq!(Value::str("ab").to_string(), "'ab'");
        assert_eq!(Value::str("ab").render(), "ab");
        assert_eq!(Value::NULL.render(), "NULL");
        assert_eq!(Value::Null(4).render(), "NULL_4");
        assert_eq!(Value::int(3).to_string(), "3");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(2.0f64), Value::Float(2.0));
        assert_eq!(Value::from(String::from("s")), Value::str("s"));
    }

    #[test]
    fn sql_order_comparisons() {
        assert_eq!(sql_lt(&Value::int(1), &Value::int(2)), Truth::True);
        assert_eq!(sql_lt(&Value::int(2), &Value::int(2)), Truth::False);
        assert_eq!(sql_le(&Value::int(2), &Value::int(2)), Truth::True);
        assert_eq!(sql_lt(&Value::NULL, &Value::int(2)), Truth::Unknown);
        assert_eq!(sql_le(&Value::int(2), &Value::NULL), Truth::Unknown);
    }

    #[test]
    fn float_total_cmp_handles_nan() {
        let nan = Value::Float(f64::NAN);
        // total_cmp gives NaN a definite position; equality with itself holds
        // structurally (set semantics must tolerate any payload).
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
    }
}
