//! Copy-on-write repair views: the [`Facts`] trait and [`DeltaView`].
//!
//! A repair of a large instance is a *small* symmetric-difference delta
//! `(deleted tids, inserted tuples)` over a large shared base. Materializing a
//! full [`Database`] clone per repair makes enumeration cost `O(count ×
//! instance)`; evaluating queries and constraints directly against the overlay
//! makes it `O(count × delta)`. [`Facts`] is the read-only abstraction both
//! query evaluation and constraint checking are generic over; [`Database`]
//! implements it trivially (empty delta) and [`DeltaView`] implements it as a
//! zero-clone overlay.
//!
//! Since the columnar rewrite, [`Facts`] is also the **id-space seam**: it
//! exposes vid-level accessors (`vid_of`, `resolve_vid`, `vid_rows`,
//! `overlay_rows`, `contains_vids`) with defaults derived from the base
//! dictionary, so consumers port to fixed-width [`Vid`] keys without caring
//! whether they run over a materialized instance or a repair view. Overlay
//! rows that carry values the base dictionary has never seen get
//! **extension ids** minted per view, counted *down* from the top of the
//! table id space — they can never collide with (append-only, counted-up)
//! base ids, and they resolve through the view's own extension table.
//!
//! Views are immutable and [`Sync`], so they compose with the `cqa-exec`
//! thread pool without extra synchronization, and synthetic tids are minted
//! exactly as [`Database::with_changes`] would assign them, so a view and its
//! materialization agree *byte for byte* on every witness — the PR 2
//! determinism contract extends to views unchanged.

use crate::column::VidRow;
use crate::dict::Vid;
use crate::fxhash::{FxHashMap, FxHasher};
use crate::instance::{Database, Relation};
use crate::tuple::{Tid, Tuple};
use crate::value::Value;
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};

/// A read-only set of facts: a base instance plus an optional delta overlay.
///
/// Implemented by [`Database`] (the delta is empty) and [`DeltaView`] (the
/// delta is a deleted-tid set and a normalized insert overlay). Consumers —
/// join evaluation, constraint checking, CQA, causality probes — are generic
/// over `F: Facts + ?Sized`, so one code path serves materialized instances
/// and zero-clone repair views alike.
///
/// The trait is object-safe (`&dyn Facts` works) and requires [`Sync`] so
/// views can be shared across the `cqa-exec` worker pool.
pub trait Facts: Sync {
    /// The shared base instance (for schema lookups and cached indexes).
    ///
    /// For a plain [`Database`] this is the instance itself.
    fn base(&self) -> &Database;

    /// Is this base tid deleted in the view?
    fn is_deleted(&self, tid: Tid) -> bool;

    /// The insert overlay for `relation`: rows present in the view but not in
    /// the base, with their synthetic tids, in minted order.
    fn overlay_of(&self, relation: &str) -> &[(Tid, Tuple)];

    /// The insert overlay for `relation` in id-space, row-aligned with
    /// [`Facts::overlay_of`]. Implementations with a non-empty overlay
    /// **must** override this to mirror `overlay_of` (the default is only
    /// correct for empty overlays).
    fn overlay_rows(&self, _relation: &str) -> &[(Tid, Box<[Vid]>)] {
        &[]
    }

    /// The vid of `value` *as this view sees it*: the base dictionary id, or
    /// the view's extension id when only the overlay carries the value.
    /// `None` means no visible row anywhere can hold this value.
    fn vid_of(&self, value: &Value) -> Option<Vid> {
        self.base().dict().lookup(value)
    }

    /// Resolve a vid (base or view-extension) back to its value.
    fn resolve_vid(&self, vid: Vid) -> Option<Value> {
        self.base().dict().resolve(vid)
    }

    /// Is the value behind `vid` a (labelled) null?
    fn vid_is_null(&self, vid: Vid) -> bool {
        vid.is_inline_null() || self.base().dict().is_null(vid)
    }

    /// Iterate the visible rows of `relation` in id-space, tid order:
    /// surviving base rows (columnar) first, then the insert overlay.
    fn vid_rows<'s>(&'s self, relation: &str) -> Box<dyn Iterator<Item = (Tid, VidRow<'s>)> + 's> {
        let base = self.base().relation(relation).map(|rel| rel.store().rows());
        let overlay = self.overlay_rows(relation);
        Box::new(
            base.into_iter()
                .flatten()
                .filter(move |&(tid, _)| !self.is_deleted(tid))
                .chain(overlay.iter().map(|(tid, key)| (*tid, VidRow::Slice(key)))),
        )
    }

    /// Does the view contain a row with this exact encoded content?
    fn contains_vids(&self, relation: &str, key: &[Vid]) -> bool {
        if let Some(rel) = self.base().relation(relation) {
            if let Some(tid) = rel.tid_of_vids(key) {
                if !self.is_deleted(tid) {
                    return true;
                }
            }
        }
        self.overlay_rows(relation).iter().any(|(_, k)| &**k == key)
    }

    /// Number of visible tuples in `relation` (0 for unknown relations).
    fn relation_len(&self, relation: &str) -> usize {
        match self.base().relation(relation) {
            Some(rel) => {
                let deleted = rel.tids().filter(|&t| self.is_deleted(t)).count();
                rel.len() - deleted + self.overlay_of(relation).len()
            }
            None => self.overlay_of(relation).len(),
        }
    }

    /// Does the view contain a tuple with this exact content in `relation`?
    fn contains_fact(&self, relation: &str, tuple: &Tuple) -> bool {
        if let Some(rel) = self.base().relation(relation) {
            if let Some(tid) = rel.tid_of(tuple) {
                if !self.is_deleted(tid) {
                    return true;
                }
            }
        }
        self.overlay_of(relation).iter().any(|(_, t)| t == tuple)
    }

    /// Locate a visible tuple by tid: `(relation name, tuple)`.
    ///
    /// Resolves both base tids (unless deleted) and synthetic overlay tids.
    fn get_fact(&self, tid: Tid) -> Option<(&str, &Tuple)> {
        if self.is_deleted(tid) {
            return None;
        }
        if let Some(found) = self.base().get(tid) {
            return Some(found);
        }
        for rel in self.base().relations() {
            if let Some((_, t)) = self.overlay_of(rel.name()).iter().find(|(o, _)| *o == tid) {
                return Some((rel.name(), t));
            }
        }
        None
    }

    /// Iterate the visible `(tid, tuple)` pairs of `relation` in tid order:
    /// surviving base tuples first, then the insert overlay. Materializes
    /// the base's value-level row cache; id-space consumers use
    /// [`Facts::vid_rows`] instead.
    fn facts_in<'s>(&'s self, relation: &str) -> Box<dyn Iterator<Item = (Tid, &'s Tuple)> + 's> {
        let base = self.base().relation(relation).map(Relation::iter);
        let overlay = self.overlay_of(relation);
        Box::new(
            base.into_iter()
                .flatten()
                .filter(move |&(tid, _)| !self.is_deleted(tid))
                .chain(overlay.iter().map(|(tid, t)| (*tid, t))),
        )
    }

    /// The set of all visible tids (surviving base tids plus synthetic ones).
    fn visible_tids(&self) -> BTreeSet<Tid> {
        let mut out: BTreeSet<Tid> = self
            .base()
            .tids()
            .into_iter()
            .filter(|&t| !self.is_deleted(t))
            .collect();
        for rel in self.base().relations() {
            out.extend(self.overlay_of(rel.name()).iter().map(|(tid, _)| *tid));
        }
        out
    }

    /// A fingerprint of the visible content of the given relations, or
    /// `None` when this view cannot certify one (the default).
    ///
    /// Two views reporting the **same** fingerprint for the **same**
    /// relation list are guaranteed to hold identical visible tuples in
    /// every listed relation, so any query touching only those relations
    /// answers identically over both — the soundness contract the
    /// `cqa-query` plan cache keys on. The guarantee rests on
    /// [`Relation::content_stamp`]: stamps are globally unique, re-minted
    /// on every mutation and copied only onto byte-identical content over
    /// the same append-only dictionary, so a stale fingerprint can never
    /// equal a live one. Callers should pass `relations` sorted and
    /// deduplicated; the fingerprint folds them in the order given.
    fn plan_fingerprint(&self, _relations: &[&str]) -> Option<(u64, u64)> {
        None
    }

    /// Materialize the view into an owned [`Database`].
    ///
    /// Synthetic tids are preserved (insertions replay in minted order through
    /// [`Database::with_changes`]), so the snapshot is byte-identical to the
    /// view. Escape hatch for consumers that genuinely need an owned instance
    /// (e.g. Datalog evaluation); hot paths should stay on the trait.
    fn snapshot(&self) -> Database {
        let deleted: BTreeSet<Tid> = self
            .base()
            .tids()
            .into_iter()
            .filter(|&t| self.is_deleted(t))
            .collect();
        let mut rows: Vec<(Tid, String, Tuple)> = Vec::new();
        for rel in self.base().relations() {
            for (tid, t) in self.overlay_of(rel.name()) {
                rows.push((*tid, rel.name().to_string(), t.clone()));
            }
        }
        rows.sort_by_key(|(tid, _, _)| *tid);
        let inserted: Vec<(String, Tuple)> = rows.into_iter().map(|(_, rel, t)| (rel, t)).collect();
        // View deltas are validated against the base schema at
        // construction time, so re-applying them cannot fail.
        #[allow(clippy::expect_used)]
        self.base()
            .with_changes(&deleted, &inserted)
            .expect("view deltas are validated before construction")
            .0
    }
}

/// Fold one item into both halves of a 128-bit fingerprint. The second
/// hasher is domain-separated by its seed so the pair behaves like a single
/// wide hash (collisions must defeat both lanes at once).
fn hash_both<T: Hash + ?Sized>(item: &T, h1: &mut FxHasher, h2: &mut FxHasher) {
    item.hash(h1);
    item.hash(h2);
}

fn fingerprint_hashers() -> (FxHasher, FxHasher) {
    let h1 = FxHasher::default();
    let mut h2 = FxHasher::default();
    h2.write_u64(0x9e37_79b9_7f4a_7c15);
    (h1, h2)
}

impl Facts for Database {
    fn base(&self) -> &Database {
        self
    }

    fn is_deleted(&self, _tid: Tid) -> bool {
        false
    }

    fn overlay_of(&self, _relation: &str) -> &[(Tid, Tuple)] {
        &[]
    }

    fn relation_len(&self, relation: &str) -> usize {
        self.relation(relation).map_or(0, Relation::len)
    }

    fn contains_fact(&self, relation: &str, tuple: &Tuple) -> bool {
        self.relation(relation).is_some_and(|r| r.contains(tuple))
    }

    fn contains_vids(&self, relation: &str, key: &[Vid]) -> bool {
        self.relation(relation)
            .is_some_and(|r| r.tid_of_vids(key).is_some())
    }

    fn get_fact(&self, tid: Tid) -> Option<(&str, &Tuple)> {
        self.get(tid)
    }

    fn facts_in<'s>(&'s self, relation: &str) -> Box<dyn Iterator<Item = (Tid, &'s Tuple)> + 's> {
        match self.relation(relation) {
            Some(rel) => Box::new(rel.iter()),
            None => Box::new(std::iter::empty()),
        }
    }

    fn vid_rows<'s>(&'s self, relation: &str) -> Box<dyn Iterator<Item = (Tid, VidRow<'s>)> + 's> {
        match self.relation(relation) {
            Some(rel) => Box::new(rel.store().rows()),
            None => Box::new(std::iter::empty()),
        }
    }

    fn visible_tids(&self) -> BTreeSet<Tid> {
        self.tids()
    }

    fn plan_fingerprint(&self, relations: &[&str]) -> Option<(u64, u64)> {
        // No delta: the content stamps alone certify the visible content.
        // The empty-delta separator matches [`DeltaView`]'s format, so a
        // database and a delta-free view over it share cache entries.
        let (mut h1, mut h2) = fingerprint_hashers();
        for name in relations {
            hash_both(*name, &mut h1, &mut h2);
            let stamp = self.relation(name).map_or(0, Relation::content_stamp);
            hash_both(&stamp, &mut h1, &mut h2);
            hash_both(&0xfeu8, &mut h1, &mut h2);
        }
        Some((h1.finish(), h2.finish()))
    }

    fn snapshot(&self) -> Database {
        self.clone()
    }
}

/// The value-id extension table a view mints for overlay values the base
/// dictionary has never interned.
///
/// Extension ids are table-tagged vids counted **down** from the top of the
/// 30-bit table space; base ids count up from 0. The two ranges cannot meet
/// in practice (2³⁰ distinct values); minting refuses to hand out an id that
/// would land at or below the base watermark.
#[derive(Debug, Clone, Default)]
struct ExtDict {
    /// Extension values in first-appearance (construction) order.
    values: Vec<Value>,
    /// Canonicalized value → slot in `values`.
    lookup: FxHashMap<Value, u32>,
    /// Base dictionary table length at view construction.
    base_len: u32,
}

impl ExtDict {
    const TOP: u32 = (1 << 30) - 1;

    fn vid_for_slot(slot: u32) -> Vid {
        Vid::table(Self::TOP - slot)
    }

    /// The extension slot of a table vid, if it is one of ours.
    fn slot_of(&self, vid: Vid) -> Option<u32> {
        let idx = vid.table_index()?;
        if idx < self.base_len {
            return None;
        }
        let slot = Self::TOP - idx;
        ((slot as usize) < self.values.len()).then_some(slot)
    }

    fn intern(&mut self, value: &Value) -> Option<Vid> {
        let canon = crate::dict::canonical(value);
        if let Some(&slot) = self.lookup.get(&canon) {
            return Some(Self::vid_for_slot(slot));
        }
        let slot = self.values.len() as u32;
        // Refuse to collide with the (append-only) base id range.
        if Self::TOP - slot <= self.base_len {
            return None;
        }
        self.lookup.insert(canon.clone(), slot);
        self.values.push(canon);
        Some(Self::vid_for_slot(slot))
    }

    fn resolve(&self, vid: Vid) -> Option<Value> {
        self.slot_of(vid)
            .and_then(|slot| self.values.get(slot as usize).cloned())
    }

    fn vid_of(&self, value: &Value) -> Option<Vid> {
        self.lookup
            .get(&crate::dict::canonical(value))
            .map(|&slot| Self::vid_for_slot(slot))
    }
}

/// Relation name → row-aligned `(synthetic tid, vid row)` overlay entries.
type VidOverlay = FxHashMap<String, Vec<(Tid, Box<[Vid]>)>>;

/// A zero-clone repair view: a borrowed base, a borrowed deleted-tid set, and
/// a normalized insert overlay.
///
/// Construction normalizes the requested insertions exactly the way
/// [`Database::with_changes`] would apply them:
///
/// - an insertion whose content is still visible in the base (its tid is not
///   deleted) is dropped — set semantics make it a no-op;
/// - duplicate insertions collapse to the first copy;
/// - surviving insertions receive synthetic tids minted from the base's tid
///   watermark in insertion order, so view tids equal materialized tids.
///
/// Overlay rows are additionally encoded into id-space at construction:
/// values the base dictionary knows keep their base vids, novel values get
/// deterministic per-view extension ids (see [`Facts::vid_of`]). The
/// per-relation deleted counts are cached here too, so
/// [`Facts::relation_len`] is O(1) instead of rescanning tids per call.
///
/// Insertions are assumed valid for the base's schema (repair enumeration
/// validates them up front via [`Database::check_insertable`]); an invalid
/// overlay makes [`Facts::snapshot`] panic.
#[derive(Debug, Clone)]
pub struct DeltaView<'a> {
    base: &'a Database,
    deleted: &'a BTreeSet<Tid>,
    /// Relation name → normalized overlay rows with synthetic tids.
    overlay: FxHashMap<String, Vec<(Tid, Tuple)>>,
    /// Id-space mirror of `overlay`, row-aligned.
    overlay_vids: VidOverlay,
    /// Extension ids for overlay values absent from the base dictionary.
    ext: ExtDict,
    /// Total overlay rows across relations (after normalization).
    overlay_len: usize,
    /// Deleted tids per relation index of the base, computed once at
    /// construction (the `relation_len` fast path).
    deleted_per_relation: Vec<usize>,
}

impl<'a> DeltaView<'a> {
    /// Build a view of `base` with the given deletions and insertions.
    pub fn new(
        base: &'a Database,
        deleted: &'a BTreeSet<Tid>,
        inserted: &[(String, Tuple)],
    ) -> DeltaView<'a> {
        let mut overlay: FxHashMap<String, Vec<(Tid, Tuple)>> = FxHashMap::default();
        let mut overlay_vids: VidOverlay = FxHashMap::default();
        let mut ext = ExtDict {
            base_len: base.dict().len() as u32,
            ..ExtDict::default()
        };
        let mut overlay_len = 0;
        let mut next = base.tid_watermark();
        for (name, tuple) in inserted {
            if let Some(rel) = base.relation(name) {
                if let Some(existing) = rel.tid_of(tuple) {
                    if !deleted.contains(&existing) {
                        continue; // content already visible: set-semantics no-op
                    }
                }
            }
            let rows = overlay.entry(name.clone()).or_default();
            if rows.iter().any(|(_, t)| t == tuple) {
                continue; // duplicate insertion collapses
            }
            let key: Option<Box<[Vid]>> = tuple
                .iter()
                .map(|v| base.dict().lookup(v).or_else(|| ext.intern(v)))
                .collect();
            if let Some(key) = key {
                overlay_vids
                    .entry(name.clone())
                    .or_default()
                    .push((Tid(next), key));
            }
            rows.push((Tid(next), tuple.clone()));
            overlay_len += 1;
            next += 1;
        }
        let deleted_per_relation = base
            .relations()
            .iter()
            .map(|rel| {
                if deleted.len() <= rel.len() {
                    // O(|Δ| log n): probe each deleted tid against the spine.
                    deleted
                        .iter()
                        .filter(|&&t| rel.store().position_of(t).is_some())
                        .count()
                } else {
                    rel.tids().filter(|t| deleted.contains(t)).count()
                }
            })
            .collect();
        DeltaView {
            base,
            deleted,
            overlay,
            overlay_vids,
            ext,
            overlay_len,
            deleted_per_relation,
        }
    }

    /// The deleted-tid set this view filters out.
    pub fn deleted(&self) -> &BTreeSet<Tid> {
        self.deleted
    }

    /// Number of overlay rows (normalized insertions) across all relations.
    pub fn overlay_len(&self) -> usize {
        self.overlay_len
    }
}

impl Facts for DeltaView<'_> {
    fn base(&self) -> &Database {
        self.base
    }

    fn is_deleted(&self, tid: Tid) -> bool {
        self.deleted.contains(&tid)
    }

    fn overlay_of(&self, relation: &str) -> &[(Tid, Tuple)] {
        self.overlay.get(relation).map_or(&[], Vec::as_slice)
    }

    fn overlay_rows(&self, relation: &str) -> &[(Tid, Box<[Vid]>)] {
        self.overlay_vids.get(relation).map_or(&[], Vec::as_slice)
    }

    fn vid_of(&self, value: &Value) -> Option<Vid> {
        // Extension ids first: within this view the construction-time
        // assignment wins, even if a sibling interned the value into the
        // shared base dictionary afterwards.
        self.ext
            .vid_of(value)
            .or_else(|| self.base.dict().lookup(value))
    }

    fn resolve_vid(&self, vid: Vid) -> Option<Value> {
        self.ext
            .resolve(vid)
            .or_else(|| self.base.dict().resolve(vid))
    }

    fn vid_is_null(&self, vid: Vid) -> bool {
        if vid.is_inline_null() {
            return true;
        }
        match self.ext.resolve(vid) {
            Some(v) => v.is_null(),
            None => self.base.dict().is_null(vid),
        }
    }

    fn plan_fingerprint(&self, relations: &[&str]) -> Option<(u64, u64)> {
        // Base stamps certify the shared content; the view's delta is folded
        // in *scoped to the listed relations*: deleted tids outside them and
        // overlay rows of other relations cannot affect a query that only
        // touches the listed ones. Overlay rows hash by **value**, not by
        // vid — extension ids are minted per view and may differ between
        // views holding identical content.
        let (mut h1, mut h2) = fingerprint_hashers();
        for name in relations {
            hash_both(*name, &mut h1, &mut h2);
            let rel = self.base.relation(name);
            let stamp = rel.map_or(0, Relation::content_stamp);
            hash_both(&stamp, &mut h1, &mut h2);
            if let Some(rel) = rel {
                // BTreeSet iteration: ascending tid order, deterministic.
                for &tid in self.deleted {
                    if rel.store().position_of(tid).is_some() {
                        hash_both(&tid, &mut h1, &mut h2);
                    }
                }
            }
            hash_both(&0xfeu8, &mut h1, &mut h2);
            for (_, tuple) in self.overlay_of(name) {
                for v in tuple.iter() {
                    hash_both(v, &mut h1, &mut h2);
                }
                hash_both(&0xfdu8, &mut h1, &mut h2);
            }
        }
        Some((h1.finish(), h2.finish()))
    }

    fn relation_len(&self, relation: &str) -> usize {
        // Per-relation deleted counts are cached at construction, so this is
        // O(relations) for the name lookup and O(1) for the count — no
        // per-call rescan of the tid spine.
        let rel_pos = self
            .base
            .relations()
            .iter()
            .position(|r| r.name() == relation);
        match rel_pos.and_then(|i| {
            self.base
                .relations()
                .get(i)
                .zip(self.deleted_per_relation.get(i))
        }) {
            Some((rel, &dels)) => rel.len() - dels + self.overlay_of(relation).len(),
            None => self.overlay_of(relation).len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::tuple;

    fn base_db() -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("R", ["A", "B"]))
            .unwrap();
        db.create_relation(RelationSchema::new("S", ["A"])).unwrap();
        db.insert("R", tuple!["a", 1]).unwrap();
        db.insert("R", tuple!["b", 2]).unwrap();
        db.insert("S", tuple!["a"]).unwrap();
        db
    }

    #[test]
    fn database_is_a_trivial_view() {
        let db = base_db();
        assert_eq!(db.relation_len("R"), 2);
        assert_eq!(db.relation_len("Nope"), 0);
        assert!(db.contains_fact("R", &tuple!["a", 1]));
        assert!(!db.is_deleted(Tid(1)));
        assert!(db.overlay_of("R").is_empty());
        assert!(db.overlay_rows("R").is_empty());
        assert_eq!(db.facts_in("R").count(), 2);
        assert_eq!(db.vid_rows("R").count(), 2);
        assert_eq!(db.visible_tids(), db.tids());
        assert_eq!(db.get_fact(Tid(3)), Some(("S", &tuple!["a"])));
    }

    #[test]
    fn delta_view_filters_deletions_and_adds_overlay() {
        let db = base_db();
        let deleted: BTreeSet<Tid> = [Tid(1)].into();
        let inserted = vec![("R".to_string(), tuple!["c", 3])];
        let view = DeltaView::new(&db, &deleted, &inserted);
        assert_eq!(view.relation_len("R"), 2); // -1 deleted, +1 inserted
        assert!(!view.contains_fact("R", &tuple!["a", 1]));
        assert!(view.contains_fact("R", &tuple!["c", 3]));
        assert_eq!(view.get_fact(Tid(1)), None);
        let rows: Vec<(Tid, &Tuple)> = view.facts_in("R").collect();
        assert_eq!(rows.len(), 2);
        // Synthetic tid continues from the base watermark (next tid is 4).
        assert_eq!(rows[1].0, Tid(4));
        assert_eq!(view.get_fact(Tid(4)), Some(("R", &tuple!["c", 3])));
    }

    #[test]
    fn overlay_normalization_matches_with_changes() {
        let db = base_db();
        let deleted: BTreeSet<Tid> = [Tid(2)].into();
        let inserted = vec![
            ("R".to_string(), tuple!["a", 1]), // already visible: dropped
            ("R".to_string(), tuple!["b", 2]), // deleted content: re-inserted
            ("R".to_string(), tuple!["b", 2]), // duplicate: collapsed
            ("S".to_string(), tuple!["z"]),
        ];
        let view = DeltaView::new(&db, &deleted, &inserted);
        let (materialized, new_tids) = db.with_changes(&deleted, &inserted).unwrap();
        assert_eq!(view.overlay_len(), 2);
        // The view's synthetic tids equal the materialized insertion tids.
        let view_tids: BTreeSet<Tid> = view
            .visible_tids()
            .difference(&db.tids())
            .copied()
            .collect();
        let fresh: BTreeSet<Tid> = new_tids
            .iter()
            .copied()
            .filter(|t| t.0 >= db.tid_watermark())
            .collect();
        assert_eq!(view_tids, fresh);
        assert_eq!(view.visible_tids(), materialized.tids());
    }

    #[test]
    fn snapshot_is_byte_identical_to_with_changes() {
        let db = base_db();
        let deleted: BTreeSet<Tid> = [Tid(1)].into();
        let inserted = vec![
            ("S".to_string(), tuple!["x"]),
            ("R".to_string(), tuple!["c", 9]),
        ];
        let view = DeltaView::new(&db, &deleted, &inserted);
        let snap = view.snapshot();
        let (materialized, _) = db.with_changes(&deleted, &inserted).unwrap();
        assert_eq!(snap.tids(), materialized.tids());
        assert!(snap.same_content(&materialized));
        // Per-tid equality, not just content equality.
        for tid in snap.tids() {
            assert_eq!(snap.get(tid), materialized.get(tid));
        }
    }

    #[test]
    fn empty_delta_view_equals_base() {
        let db = base_db();
        let deleted = BTreeSet::new();
        let view = DeltaView::new(&db, &deleted, &[]);
        assert_eq!(view.visible_tids(), db.tids());
        assert_eq!(view.relation_len("R"), 2);
        assert_eq!(view.snapshot().tids(), db.tids());
    }

    #[test]
    fn views_work_as_trait_objects() {
        let db = base_db();
        let deleted: BTreeSet<Tid> = [Tid(3)].into();
        let view = DeltaView::new(&db, &deleted, &[]);
        let dyns: Vec<&dyn Facts> = vec![&db, &view];
        assert_eq!(dyns[0].relation_len("S"), 1);
        assert_eq!(dyns[1].relation_len("S"), 0);
    }

    #[test]
    fn overlay_rows_mirror_overlay_of() {
        let db = base_db();
        let deleted = BTreeSet::new();
        let inserted = vec![
            ("R".to_string(), tuple!["a", 7]),    // known values
            ("S".to_string(), tuple!["novel-v"]), // novel value → ext id
        ];
        let view = DeltaView::new(&db, &deleted, &inserted);
        for rel in ["R", "S"] {
            let tuples = view.overlay_of(rel);
            let vids = view.overlay_rows(rel);
            assert_eq!(tuples.len(), vids.len());
            for ((tid_t, t), (tid_v, key)) in tuples.iter().zip(vids) {
                assert_eq!(tid_t, tid_v);
                // Round-trip each vid through the view's resolve path.
                let resolved: Vec<Value> = key
                    .iter()
                    .map(|&vid| view.resolve_vid(vid).unwrap())
                    .collect();
                assert_eq!(resolved, t.values().to_vec());
            }
        }
    }

    #[test]
    fn extension_ids_for_novel_values() {
        let db = base_db();
        let deleted = BTreeSet::new();
        let inserted = vec![("S".to_string(), tuple!["ghost"])];
        let view = DeltaView::new(&db, &deleted, &inserted);
        // The base dictionary has never seen "ghost"…
        assert!(db.dict().lookup(&Value::str("ghost")).is_none());
        // …but the view can still encode and resolve it.
        let vid = view.vid_of(&Value::str("ghost")).unwrap();
        assert_eq!(view.resolve_vid(vid), Some(Value::str("ghost")));
        assert!(!view.vid_is_null(vid));
        // And the base dictionary does not resolve the extension id.
        assert_eq!(db.dict().resolve(vid), None);
        // Known values keep their base ids.
        assert_eq!(
            view.vid_of(&Value::str("a")),
            db.dict().lookup(&Value::str("a"))
        );
        // vid_rows surfaces the overlay row with the extension id.
        let rows: Vec<(Tid, Box<[Vid]>)> = view
            .vid_rows("S")
            .map(|(tid, row)| (tid, row.to_key()))
            .collect();
        assert_eq!(rows.len(), 2); // base "a" + overlay "ghost"
        assert_eq!(rows[1].1, [vid].into());
    }

    #[test]
    fn contains_vids_sees_base_and_overlay() {
        let db = base_db();
        let deleted: BTreeSet<Tid> = [Tid(3)].into(); // delete S("a")
        let inserted = vec![("S".to_string(), tuple!["new"])];
        let view = DeltaView::new(&db, &deleted, &inserted);
        let a = db.dict().lookup(&Value::str("a")).unwrap();
        assert!(!view.contains_vids("S", &[a])); // deleted
        assert!(db.contains_vids("S", &[a])); // still in the plain base
        let new_vid = view.vid_of(&Value::str("new")).unwrap();
        assert!(view.contains_vids("S", &[new_vid]));
    }

    #[test]
    fn plan_fingerprints_track_content_not_identity() {
        let db = base_db();
        let rels = ["R", "S"];
        let fp = db.plan_fingerprint(&rels).unwrap();
        // Clones and untouched derived instances share the fingerprint.
        assert_eq!(db.clone().plan_fingerprint(&rels), Some(fp));
        let derived = db.restricted_to(&db.tids());
        assert_eq!(derived.plan_fingerprint(&rels), Some(fp));
        // An empty delta view is content-equal but hashes its (empty) delta
        // sections too, so it agrees with itself deterministically.
        let none = BTreeSet::new();
        let v1 = DeltaView::new(&db, &none, &[]);
        let v2 = DeltaView::new(&db, &none, &[]);
        assert_eq!(v1.plan_fingerprint(&rels), v2.plan_fingerprint(&rels));
        // A mutation re-mints: different fingerprint, even after the edit
        // is reverted (stamps are never reused).
        let mut edited = db.clone();
        let t = edited.insert("S", tuple!["zz"]).unwrap();
        let fp_edit = edited.plan_fingerprint(&rels).unwrap();
        assert_ne!(fp_edit, fp);
        edited.delete(t).unwrap();
        assert_ne!(edited.plan_fingerprint(&rels), Some(fp));
        // Scoping: a delta touching only R leaves an S-only fingerprint
        // unchanged, but changes the R-scoped one.
        let del_r: BTreeSet<Tid> = [Tid(1)].into();
        let view = DeltaView::new(&db, &del_r, &[]);
        assert_eq!(view.plan_fingerprint(&["S"]), db.plan_fingerprint(&["S"]));
        assert_ne!(view.plan_fingerprint(&["R"]), db.plan_fingerprint(&["R"]));
        // Two views with equal visible content agree even when built from
        // different insertion vectors (normalization + value hashing).
        let ins_a = vec![("S".to_string(), tuple!["ghost"])];
        let ins_b = vec![
            ("S".to_string(), tuple!["a"]), // visible no-op, dropped
            ("S".to_string(), tuple!["ghost"]),
            ("S".to_string(), tuple!["ghost"]), // duplicate, collapsed
        ];
        let va = DeltaView::new(&db, &none, &ins_a);
        let vb = DeltaView::new(&db, &none, &ins_b);
        assert_eq!(
            va.plan_fingerprint(&rels).unwrap(),
            vb.plan_fingerprint(&rels).unwrap()
        );
    }

    #[test]
    fn relation_len_uses_cached_deleted_counts() {
        let db = base_db();
        let deleted: BTreeSet<Tid> = [Tid(1), Tid(2), Tid(3)].into();
        let view = DeltaView::new(&db, &deleted, &[]);
        assert_eq!(view.relation_len("R"), 0);
        assert_eq!(view.relation_len("S"), 0);
        let partial: BTreeSet<Tid> = [Tid(2)].into();
        let view2 = DeltaView::new(&db, &partial, &[]);
        assert_eq!(view2.relation_len("R"), 1);
        assert_eq!(view2.relation_len("S"), 1);
        assert_eq!(view2.relation_len("Nope"), 0);
    }
}
