//! Request routing and handlers, independent of the transport.
//!
//! [`handle`] maps one parsed [`Request`] to a status + JSON body; the TCP
//! layer in [`crate::server`] only frames it. Keeping the handlers
//! socket-free means the equivalence and smoke suites can drive the full
//! protocol in-process, and the graceful-degradation contract is easy to
//! state: **every request gets a JSON response** — malformed input is a
//! 4xx with an `error` field, an exhausted budget is a 200 whose body
//! carries a `truncated` object, and only transport death ends a
//! connection without a reply.

use crate::http::Request;
use crate::json::{parse, Json};
use crate::server::ServerState;
use crate::sessions::write_lock;
use crate::wire::{
    budget_from_body, int_json, strategy_tag, strings_json, truncation_json, tuple_from_json,
    value_from_json,
};
use cqa_core::cqa::RepairClass;
use cqa_core::CqaSession;
use cqa_exec::{Budget, CancelToken};
use cqa_query::UnionQuery;
use std::sync::RwLock;

/// One handler verdict: the HTTP status, an optional `Retry-After` value
/// (seconds), and the JSON body.
#[derive(Debug)]
pub struct Reply {
    /// HTTP status code.
    pub status: u16,
    /// `Retry-After` seconds for 429/503 replies.
    pub retry_after: Option<u64>,
    /// Response body.
    pub body: Json,
}

impl Reply {
    fn ok(body: Json) -> Reply {
        Reply {
            status: 200,
            retry_after: None,
            body,
        }
    }

    fn error(status: u16, message: impl Into<String>) -> Reply {
        Reply {
            status,
            retry_after: None,
            body: Json::obj([("error", Json::Str(message.into()))]),
        }
    }

    fn busy(status: u16, message: &str, retry_after: u64) -> Reply {
        Reply {
            status,
            retry_after: Some(retry_after),
            body: Json::obj([
                ("error", Json::str(message)),
                ("retry_after", int_json(retry_after)),
            ]),
        }
    }
}

/// Dispatch one request. `cancel_slot` receives the request's budget
/// cancel token for the duration of the call, so the transport's
/// disconnect watcher can abort work for a vanished client; it is cleared
/// before returning.
pub fn handle(
    state: &ServerState,
    req: &Request,
    cancel_slot: &RwLock<Option<CancelToken>>,
) -> Reply {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    let reply = match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["health"]) => health(state),
        ("POST", ["shutdown"]) => shutdown(state),
        ("POST", ["sessions"]) => with_body(req, |body| create_session(state, body)),
        ("GET", ["sessions"]) => list_sessions(state),
        ("DELETE", ["sessions", id]) => delete_session(state, id),
        ("POST", ["sessions", id, verb @ ("mutate" | "query" | "repairs" | "causes")]) => {
            let verb = *verb;
            with_body(req, |body| {
                with_session(state, id, |session| {
                    let budget = budget_from_body(body, &state.budget_policy());
                    *write_lock(cancel_slot) = Some(budget.cancel_token());
                    match verb {
                        "mutate" => mutate(session, body, &budget),
                        "query" => query(session, body, &budget),
                        "repairs" => repairs(session, body, &budget),
                        _ => causes(session, body, &budget),
                    }
                })
            })
        }
        (
            "GET" | "POST" | "DELETE" | "PUT" | "PATCH" | "HEAD",
            ["health" | "shutdown" | "sessions", ..],
        ) => Reply::error(405, format!("{} not supported on {}", req.method, req.path)),
        _ => Reply::error(404, format!("no route for {} {}", req.method, req.path)),
    };
    *write_lock(cancel_slot) = None;
    reply
}

fn with_body(req: &Request, f: impl FnOnce(&Json) -> Reply) -> Reply {
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return Reply::error(400, "request body is not UTF-8"),
    };
    let body = if text.trim().is_empty() {
        Json::Object(Vec::new())
    } else {
        match parse(text) {
            Ok(v) => v,
            Err(e) => return Reply::error(400, format!("malformed JSON body: {e}")),
        }
    };
    f(&body)
}

fn with_session(state: &ServerState, id: &str, f: impl FnOnce(&mut CqaSession) -> Reply) -> Reply {
    let Ok(id) = id.parse::<u64>() else {
        return Reply::error(400, format!("session id must be an integer, got `{id}`"));
    };
    let Some(slot) = state.sessions.get(id) else {
        return Reply::error(404, format!("no session {id}"));
    };
    // Uniform write lock: even "read" requests refresh the warm state.
    let mut session = write_lock(&slot);
    f(&mut session)
}

fn health(state: &ServerState) -> Reply {
    // One subplan cache serves every session: warm sessions over the same
    // instance share entries, so the hit counter is a fleet-wide signal.
    let cache = cqa_query::plan_cache_stats();
    Reply::ok(Json::obj([
        (
            "status",
            Json::str(if state.stop.is_cancelled() {
                "stopping"
            } else {
                "ok"
            }),
        ),
        ("sessions", int_json(state.sessions.len() as u64)),
        ("inflight", int_json(state.gate.in_flight() as u64)),
        ("refused", int_json(state.gate.refused() as u64)),
        (
            "plan_cache",
            Json::obj([
                ("enabled", Json::Bool(cqa_exec::plan_cache_enabled())),
                ("hits", int_json(cache.hits)),
                ("misses", int_json(cache.misses)),
                ("entries", int_json(cache.entries as u64)),
            ]),
        ),
    ]))
}

fn shutdown(state: &ServerState) -> Reply {
    state.stop.cancel();
    Reply::ok(Json::obj([("stopping", Json::Bool(true))]))
}

fn create_session(state: &ServerState, body: &Json) -> Reply {
    let Some(db_text) = body.get("db").and_then(Json::as_str) else {
        return Reply::error(400, "missing `db` (database codec text)");
    };
    let Some(sigma_text) = body.get("constraints").and_then(Json::as_str) else {
        return Reply::error(400, "missing `constraints` (Σ text)");
    };
    let session = match CqaSession::from_text(db_text, sigma_text) {
        Ok(s) => s,
        Err(e) => return Reply::error(400, e),
    };
    let epoch = session.epoch();
    let consistent = match session.is_consistent() {
        Ok(b) => b,
        Err(e) => return Reply::error(400, e.to_string()),
    };
    let violations = session.violation_count();
    match state.sessions.create(session) {
        Some(id) => Reply::ok(Json::obj([
            ("session", int_json(id)),
            ("epoch", int_json(epoch)),
            ("consistent", Json::Bool(consistent)),
            (
                "violations",
                violations.map_or(Json::Null, |n| int_json(n as u64)),
            ),
        ])),
        None => Reply::busy(503, "session table full", 1),
    }
}

fn list_sessions(state: &ServerState) -> Reply {
    let mut rows = Vec::new();
    for id in state.sessions.ids() {
        if let Some(slot) = state.sessions.get(id) {
            let session = crate::sessions::read_lock(&slot);
            rows.push(Json::obj([
                ("session", int_json(id)),
                ("epoch", int_json(session.epoch())),
            ]));
        }
    }
    Reply::ok(Json::obj([("sessions", Json::Array(rows))]))
}

fn delete_session(state: &ServerState, id: &str) -> Reply {
    let Ok(id) = id.parse::<u64>() else {
        return Reply::error(400, format!("session id must be an integer, got `{id}`"));
    };
    if state.sessions.remove(id) {
        Reply::ok(Json::obj([("deleted", int_json(id))]))
    } else {
        Reply::error(404, format!("no session {id}"))
    }
}

/// Apply a batch of mutations, maintaining the warm state after each
/// through the delta pipeline. Application is sequential and **prefix
/// atomic**: on the first bad op the reply is a 400 naming the op index,
/// and `applied` tells the client how many earlier ops took effect.
fn mutate(session: &mut CqaSession, body: &Json, budget: &Budget) -> Reply {
    let Some(ops) = body.get("ops").and_then(Json::as_array) else {
        return Reply::error(400, "missing `ops` array");
    };
    let mut results = Vec::new();
    let mut last_decision = None;
    for (index, op) in ops.iter().enumerate() {
        let applied = results.len() as u64;
        let fail = move |e: String| Reply {
            status: 400,
            retry_after: None,
            body: Json::obj([
                ("error", Json::Str(e)),
                ("op", int_json(index as u64)),
                ("applied", int_json(applied)),
            ]),
        };
        match op.get("op").and_then(Json::as_str) {
            Some("insert") => {
                let Some(relation) = op.get("relation").and_then(Json::as_str) else {
                    return fail("insert needs `relation`".to_string());
                };
                let row = match op.get("row").ok_or("insert needs `row`".to_string()) {
                    Ok(r) => match tuple_from_json(r) {
                        Ok(t) => t,
                        Err(e) => return fail(e),
                    },
                    Err(e) => return fail(e),
                };
                match session.insert(relation, row, budget) {
                    Ok((tid, decision)) => {
                        results.push(Json::obj([("tid", int_json(tid.0))]));
                        last_decision = Some(decision);
                    }
                    Err(e) => return fail(e.to_string()),
                }
            }
            Some("delete") => {
                let Some(tid) = op.get("tid").and_then(Json::as_u64) else {
                    return fail("delete needs `tid`".to_string());
                };
                match session.delete(cqa_relation::Tid(tid), budget) {
                    Ok((relation, row, decision)) => {
                        results.push(Json::obj([
                            ("relation", Json::str(relation)),
                            ("row", Json::str(row.to_string())),
                        ]));
                        last_decision = Some(decision);
                    }
                    Err(e) => return fail(e.to_string()),
                }
            }
            Some("update") => {
                let (Some(tid), Some(position), Some(value)) = (
                    op.get("tid").and_then(Json::as_u64),
                    op.get("position").and_then(Json::as_u64),
                    op.get("value"),
                ) else {
                    return fail("update needs `tid`, `position`, `value`".to_string());
                };
                let value = match value_from_json(value) {
                    Ok(v) => v,
                    Err(e) => return fail(e),
                };
                match session.update(cqa_relation::Tid(tid), position as usize, value, budget) {
                    Ok(decision) => {
                        results.push(Json::obj([("tid", int_json(tid))]));
                        last_decision = Some(decision);
                    }
                    Err(e) => return fail(e.to_string()),
                }
            }
            other => {
                return fail(format!(
                    "unknown op `{}` (use insert|delete|update)",
                    other.unwrap_or("<missing>")
                ))
            }
        }
    }
    let consistent = match session.is_consistent() {
        Ok(b) => b,
        Err(e) => return Reply::error(400, e.to_string()),
    };
    Reply::ok(Json::obj([
        ("epoch", int_json(session.epoch())),
        ("consistent", Json::Bool(consistent)),
        (
            "maintenance",
            last_decision.map_or(Json::Null, |d| Json::Str(d.describe())),
        ),
        ("results", Json::Array(results)),
    ]))
}

fn parse_union_query(body: &Json) -> Result<UnionQuery, Reply> {
    let Some(text) = body.get("query").and_then(Json::as_str) else {
        return Err(Reply::error(400, "missing `query`"));
    };
    cqa_query::parse_query(text)
        .map(UnionQuery::single)
        .map_err(|e| Reply::error(400, e.to_string()))
}

fn parse_class(body: &Json) -> Result<RepairClass, Reply> {
    match body.get("class").and_then(Json::as_str).unwrap_or("subset") {
        "subset" | "s" => Ok(RepairClass::Subset),
        "cardinality" | "c" => Ok(RepairClass::Cardinality),
        "attribute" | "attr" => Ok(RepairClass::AttributeNull),
        "deletions" => Ok(RepairClass::SubsetDeletionsOnly),
        other => Err(Reply::error(
            400,
            format!("unknown repair class `{other}` (use subset|cardinality|attribute|deletions)"),
        )),
    }
}

fn query(session: &mut CqaSession, body: &Json, budget: &Budget) -> Reply {
    let query = match parse_union_query(body) {
        Ok(q) => q,
        Err(reply) => return reply,
    };
    let class = match parse_class(body) {
        Ok(c) => c,
        Err(reply) => return reply,
    };
    let kind = body.get("kind").and_then(Json::as_str).unwrap_or("certain");
    let mut pairs = Vec::new();
    let truncated = match kind {
        "certain" if matches!(class, RepairClass::Subset) => {
            // The planned path: warm incremental state + strategy report.
            let planned = match session.certain(&query, budget) {
                Ok(p) => p,
                Err(e) => return Reply::error(400, e.to_string()),
            };
            let t = truncation_json(&planned);
            let planned = planned.into_value();
            pairs.push(("answers".to_string(), strings_json(&planned.answers)));
            pairs.push((
                "strategy".to_string(),
                Json::str(strategy_tag(&planned.strategy)),
            ));
            t
        }
        "certain" => {
            let answers = match session.certain_with_class(&query, &class, budget) {
                Ok(a) => a,
                Err(e) => return Reply::error(400, e.to_string()),
            };
            let t = truncation_json(&answers);
            let answers = answers.into_value();
            pairs.push(("answers".to_string(), strings_json(&answers)));
            t
        }
        "possible" => {
            let answers = match session.possible(&query, &class, budget) {
                Ok(a) => a,
                Err(e) => return Reply::error(400, e.to_string()),
            };
            let t = truncation_json(&answers);
            let answers = answers.into_value();
            pairs.push(("answers".to_string(), strings_json(&answers)));
            t
        }
        other => {
            return Reply::error(
                400,
                format!("unknown kind `{other}` (use certain|possible)"),
            )
        }
    };
    if let Some(t) = truncated {
        pairs.push(("truncated".to_string(), t));
    }
    Reply::ok(Json::Object(pairs))
}

fn repairs(session: &mut CqaSession, body: &Json, budget: &Budget) -> Reply {
    let class = match parse_class(body) {
        Ok(c) => c,
        Err(reply) => return reply,
    };
    let limit = body.get("limit").and_then(Json::as_u64).map(|n| n as usize);
    if matches!(class, RepairClass::AttributeNull) {
        let repairs = match session.attribute_repairs() {
            Ok(r) => r,
            Err(e) => return Reply::error(400, e.to_string()),
        };
        let shown: Vec<_> = repairs.iter().take(limit.unwrap_or(usize::MAX)).collect();
        return Reply::ok(Json::obj([
            ("count", int_json(repairs.len() as u64)),
            ("repairs", strings_json(shown)),
        ]));
    }
    let outcome = match session.repairs(&class, limit, budget) {
        Ok(o) => o,
        Err(e) => return Reply::error(400, e.to_string()),
    };
    let truncated = truncation_json(&outcome);
    let repairs = outcome.into_value();
    let mut pairs = vec![
        ("count".to_string(), int_json(repairs.len() as u64)),
        (
            "repairs".to_string(),
            strings_json(repairs.iter().take(limit.unwrap_or(usize::MAX))),
        ),
    ];
    if let Some(t) = truncated {
        pairs.push(("truncated".to_string(), t));
    }
    Reply::ok(Json::Object(pairs))
}

fn causes(session: &mut CqaSession, body: &Json, budget: &Budget) -> Reply {
    let query = match parse_union_query(body) {
        Ok(q) => q,
        Err(reply) => return reply,
    };
    let outcome = cqa_causality::actual_causes_budgeted(session.db(), &query, budget);
    let truncated = truncation_json(&outcome);
    let causes = outcome.into_value();
    let mut pairs = vec![("causes".to_string(), strings_json(causes.iter()))];
    if let Some(t) = truncated {
        pairs.push(("truncated".to_string(), t));
    }
    Reply::ok(Json::Object(pairs))
}
