//! A deliberately small HTTP/1.1 layer over blocking streams.
//!
//! `repaird` speaks just enough HTTP for scripted clients and `curl`:
//! request line + headers + `Content-Length` body in, status line +
//! `Content-Type: application/json` body out, keep-alive by default.
//! There is no chunked transfer, no TLS, no compression — the server is a
//! trusted-network tool, and every unsupported construct is rejected with
//! an explicit 4xx rather than misparsed.
//!
//! Hard limits (header size, body size) are enforced *before* buffering,
//! so an adversarial peer cannot balloon memory; breaching them is a
//! protocol error the connection handler turns into 431/413 and a close.

use std::io::{BufRead, Write};

/// Upper bound on the request line + headers block, bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// How many consecutive read-timeout ticks a *partially received* request
/// may stall before the connection is declared dead. The server arms a
/// 100 ms socket read timeout, so this bounds a mid-request stall at
/// roughly a minute; a stall *between* requests is handled by the caller's
/// idle loop and never reaches here.
const MAX_STALL_TICKS: u32 = 600;

fn is_stall(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// One parsed request.
#[derive(Debug, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// Path with any `?query` suffix stripped.
    pub path: String,
    /// `Content-Length` body, possibly empty.
    pub body: Vec<u8>,
    /// True when the client asked for `Connection: close`.
    pub close: bool,
}

/// Why a request could not be read.
#[derive(Debug, PartialEq, Eq)]
pub enum HttpError {
    /// The peer closed (or the socket died) before a complete request; the
    /// connection is simply over.
    Disconnected,
    /// The head exceeded [`MAX_HEAD_BYTES`] → 431.
    HeadTooLarge,
    /// The declared body exceeds the configured cap → 413.
    BodyTooLarge,
    /// Anything else malformed → 400 with this message.
    Malformed(String),
}

/// Read one request from a buffered stream. `Ok(None)` is a clean EOF
/// between requests (keep-alive connection ended); [`HttpError`] values
/// distinguish "hang up" from "answer 4xx".
pub fn read_request(
    stream: &mut impl BufRead,
    max_body: usize,
) -> Result<Option<Request>, HttpError> {
    let mut head = Vec::new();
    // Read up to the blank line terminating the head, bounded.
    loop {
        let mut line = Vec::new();
        let n = read_line_limited(stream, &mut line, MAX_HEAD_BYTES)?;
        if n == 0 {
            // EOF: clean only if nothing was read at all.
            return if head.is_empty() {
                Ok(None)
            } else {
                Err(HttpError::Disconnected)
            };
        }
        if line == b"\r\n" || line == b"\n" {
            if head.is_empty() {
                // Tolerate a stray blank line before the request line.
                continue;
            }
            break;
        }
        head.extend_from_slice(&line);
        if head.len() > MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
    }
    let head = String::from_utf8(head)
        .map_err(|_| HttpError::Malformed("non-UTF-8 request head".to_string()))?;
    let mut lines = head.lines();
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request".to_string()))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing method".to_string()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".to_string()))?;
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported version {version}"
        )));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    let mut close = false;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("malformed header {line:?}")));
        };
        let value = value.trim();
        match name.to_ascii_lowercase().as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| HttpError::Malformed("bad Content-Length".to_string()))?;
            }
            "transfer-encoding" => {
                return Err(HttpError::Malformed(
                    "chunked transfer encoding is not supported".to_string(),
                ));
            }
            "connection" => close = value.eq_ignore_ascii_case("close"),
            _ => {}
        }
    }
    if content_length > max_body {
        return Err(HttpError::BodyTooLarge);
    }
    let mut body = Vec::with_capacity(content_length.min(64 * 1024));
    let mut chunk = [0u8; 8 * 1024];
    let mut stalls = 0u32;
    while body.len() < content_length {
        let want = (content_length - body.len()).min(chunk.len());
        let Some(buf) = chunk.get_mut(..want) else {
            return Err(HttpError::Malformed("body read window".to_string()));
        };
        let n = match stream.read(buf) {
            Ok(0) => return Err(HttpError::Disconnected),
            Ok(n) => n,
            Err(e) if is_stall(&e) => {
                stalls += 1;
                if stalls > MAX_STALL_TICKS {
                    return Err(HttpError::Disconnected);
                }
                continue;
            }
            Err(_) => return Err(HttpError::Disconnected),
        };
        stalls = 0;
        body.extend_from_slice(buf.get(..n).unwrap_or(&[]));
    }
    Ok(Some(Request {
        method,
        path,
        body,
        close,
    }))
}

/// `read_until(b'\n')` with a byte cap (a peer streaming an endless header
/// line must hit [`HttpError::HeadTooLarge`], not OOM).
fn read_line_limited(
    stream: &mut impl BufRead,
    out: &mut Vec<u8>,
    cap: usize,
) -> Result<usize, HttpError> {
    let mut stalls = 0u32;
    loop {
        let available = match stream.fill_buf() {
            Ok(buf) => buf,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if is_stall(&e) => {
                stalls += 1;
                if stalls > MAX_STALL_TICKS {
                    return Err(HttpError::Disconnected);
                }
                continue;
            }
            Err(_) => return Err(HttpError::Disconnected),
        };
        stalls = 0;
        if available.is_empty() {
            return Ok(out.len());
        }
        let (chunk, done) = match available.iter().position(|&b| b == b'\n') {
            Some(i) => (available.get(..=i).unwrap_or(available), true),
            None => (available, false),
        };
        if out.len() + chunk.len() > cap {
            return Err(HttpError::HeadTooLarge);
        }
        out.extend_from_slice(chunk);
        let used = chunk.len();
        stream.consume(used);
        if done {
            return Ok(out.len());
        }
    }
}

/// Extra response headers (e.g. `Retry-After`).
pub type Headers<'a> = &'a [(&'a str, String)];

/// Write one JSON response. `close` adds `Connection: close`.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    extra: Headers<'_>,
    body: &str,
    close: bool,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Response",
    };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
        body.len()
    );
    for (name, value) in extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    if close {
        head.push_str("Connection: close\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(bytes), 1024)
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(
            b"POST /sessions/7/query?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nbody",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/sessions/7/query");
        assert_eq!(req.body, b"body");
        assert!(!req.close);
    }

    #[test]
    fn clean_eof_is_none_and_truncated_head_is_disconnect() {
        assert!(parse(b"").unwrap().is_none());
        assert_eq!(parse(b"GET / HT"), Err(HttpError::Disconnected));
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpError::Disconnected)
        );
    }

    #[test]
    fn enforces_limits() {
        let long_header = format!(
            "GET / HTTP/1.1\r\nX-Big: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        assert_eq!(parse(long_header.as_bytes()), Err(HttpError::HeadTooLarge));
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n"),
            Err(HttpError::BodyTooLarge)
        );
    }

    #[test]
    fn rejects_unsupported_constructs() {
        assert!(matches!(
            parse(b"GET / HTTP/2\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn connection_close_is_honoured_and_responses_are_well_formed() {
        let req = parse(b"GET /health HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.close);
        let mut out = Vec::new();
        write_response(
            &mut out,
            429,
            &[("Retry-After", "1".to_string())],
            "{}",
            true,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
