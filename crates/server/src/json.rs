//! A minimal, panic-free JSON codec for the wire protocol.
//!
//! The build is offline (no serde), and the server's needs are small:
//! parse request bodies, render response bodies. The representation keeps
//! integers exact (`i64`, so tids and epochs round-trip bit-for-bit — a
//! float representation would corrupt tids above 2⁵³) and objects as
//! insertion-ordered pairs, so responses serialize deterministically in
//! the order the handlers built them.
//!
//! The parser is recursive-descent with an explicit depth cap, rejects
//! trailing garbage, and never panics on malformed input: every failure is
//! an `Err(String)` rendered into a 400 by the HTTP layer.

use std::fmt;

/// Maximum nesting depth accepted by [`parse`]; beyond this the input is
/// rejected rather than risking stack exhaustion on adversarial bodies.
const MAX_DEPTH: usize = 64;

/// A JSON value. Objects preserve insertion order (no hashing anywhere —
/// serialization is deterministic by construction).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer that fits `i64` exactly (tids, epochs, counts).
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object as ordered key/value pairs.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Build an object from ordered pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Look up a key in an object (first match; `None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as `bool`, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::Float(x) => {
                if x.is_finite() {
                    write!(f, "{x}")
                } else {
                    // JSON has no NaN/Inf; degrade to null rather than
                    // emitting an unparsable token.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Object(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => Err(format!(
                "expected '{}' at byte {}, found '{}'",
                b as char,
                self.pos - 1,
                got as char
            )),
            None => Err(format!("expected '{}' at end of input", b as char)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        let rest = self.bytes.get(self.pos..).unwrap_or(&[]);
        if rest.starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected byte '{}' at {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(Json::Array(items)),
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(Json::Object(pairs)),
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes (valid UTF-8 by construction —
            // the input is a &str).
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\' && b >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                let run = self.bytes.get(start..self.pos).unwrap_or(&[]);
                out.push_str(std::str::from_utf8(run).map_err(|e| e.to_string())?);
            }
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = self.hex4()?;
                        // Surrogate pairs: a high surrogate must be followed
                        // by an escaped low surrogate.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err("unpaired surrogate".to_string());
                            }
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err("invalid low surrogate".to_string());
                            }
                            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(code)
                        };
                        out.push(c.ok_or_else(|| "invalid \\u escape".to_string())?);
                    }
                    _ => return Err(format!("bad escape at byte {}", self.pos)),
                },
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos - 1))
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| "truncated \\u".to_string())?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| format!("bad hex digit at byte {}", self.pos - 1))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = self
            .bytes
            .get(start..self.pos)
            .and_then(|s| std::str::from_utf8(s).ok())
            .ok_or_else(|| "bad number".to_string())?;
        if !float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let text = r#"{"a":[1,-2,3.5,null,true],"b":"x\"y\n","c":{"d":9223372036854775807}}"#;
        let v = parse(text).unwrap();
        assert_eq!(
            v.get("c").and_then(|c| c.get("d")).and_then(Json::as_i64),
            Some(i64::MAX)
        );
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn integers_stay_exact() {
        let v = parse("9007199254740993").unwrap(); // 2^53 + 1
        assert_eq!(v, Json::Int(9007199254740993));
        assert_eq!(v.to_string(), "9007199254740993");
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::obj([("z", Json::Int(1)), ("a", Json::Int(2))]);
        assert_eq!(v.to_string(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn escapes_and_unicode() {
        let v = parse(r#""tab\there \u00e9 \ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("tab\there é 😀"));
        let back = Json::str("quote\" slash\\ nl\n ctl\u{1}");
        assert_eq!(parse(&back.to_string()).unwrap(), back);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"1}",
            "tru",
            "1 2",
            "\"\\q\"",
            "\"\u{1}\"",
            "nul",
            "--1",
            "{\"a\":}",
            "\"\\ud800x\"",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err(), "accepted 200-deep nesting");
    }
}
