//! `repaird` — a multi-tenant consistent-query-answering server.
//!
//! This crate turns the workspace's library pipeline into a long-running
//! service: tenants load a database + Σ once into a **session**, then issue
//! mutations and queries against it over a small HTTP/1.1 + JSON protocol
//! (`repairctl serve`). The value of the server over the one-shot CLI is
//! *warmth*: a session keeps the loaded instance, its shared base-index
//! cache, and the delta-maintained conflict state (violations,
//! hyper-graph, primed component factorization, frozen core) alive between
//! requests, so a mutate-then-query round trip costs an incremental
//! maintenance step instead of a full reload-and-rebuild — while staying
//! byte-identical to the library path (the F20 harness and the
//! `server_equivalence` suite pin this).
//!
//! Operational contract:
//!
//! * **std-only.** The HTTP framing ([`http`]) and JSON codec ([`json`])
//!   are hand-rolled over `std::net`; the build stays offline.
//! * **Admission control.** At most `max_inflight` requests execute at
//!   once; excess load is refused *immediately* with `429` +
//!   `Retry-After`, never queued unboundedly ([`cqa_exec::AdmissionGate`]).
//! * **Budgets end-to-end.** Every request derives a
//!   [`cqa_exec::Budget`] from its `timeout_ms`/`budget_steps`/
//!   `max_repairs` fields; exhaustion degrades to a sound
//!   `truncated`-annotated response, never a dropped connection.
//!   `timeout_ms: 0` means "truncate immediately", and a client that
//!   disconnects mid-request has its budget cancelled so abandoned work
//!   stops promptly.
//! * **Deterministic wire format.** Objects serialize in construction
//!   order, answers render through the same `Display` impls as the CLI,
//!   and the session table iterates in id order — responses are
//!   reproducible byte-for-byte at any thread count.

#![forbid(unsafe_code)]

pub mod api;
pub mod http;
pub mod json;
pub mod server;
pub mod sessions;
pub mod wire;

pub use api::Reply;
pub use http::{read_request, write_response, HttpError, Request};
pub use json::Json;
pub use server::{start, ServerConfig, ServerHandle, ServerState};
pub use sessions::SessionStore;
pub use wire::BudgetPolicy;
