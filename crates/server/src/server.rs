//! `repaird`: the TCP accept loop, connection handling, and lifecycle.
//!
//! Threading model (all through `cqa-exec`'s [`ServiceGroup`] — the rest of
//! the workspace never spawns raw threads):
//!
//! * one **accept** thread, non-blocking with a short sleep so it can
//!   observe the shutdown token;
//! * one **connection** thread per accepted socket, running the
//!   keep-alive request loop;
//! * one **disconnect watcher** thread per connection, `peek`ing the
//!   socket: when the peer vanishes mid-request it cancels the request's
//!   budget, so abandoned work stops burning CPU instead of running to its
//!   deadline.
//!
//! Admission control is per *request*, not per connection: a permit from
//! the [`AdmissionGate`] is held for the duration of one handler call, and
//! a full gate answers `429` + `Retry-After` immediately — the connection
//! stays usable. Graceful degradation is end-to-end: budget exhaustion
//! surfaces as a `truncated` JSON field inside a 200, never as a dropped
//! connection.

use crate::api;
use crate::http::{read_request, write_response, HttpError, Request};
use crate::json::Json;
use crate::sessions::{write_lock, SessionStore};
use crate::wire::BudgetPolicy;
use cqa_exec::{AdmissionGate, CancelToken, ServiceGroup};
use std::io::{BufRead, BufReader};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind host. Defaults to loopback only.
    pub host: String,
    /// Bind port; 0 asks the OS for a free one (the bound address is
    /// reported by [`ServerHandle::addr`]).
    pub port: u16,
    /// Maximum concurrently *executing* requests; beyond it, 429.
    pub max_inflight: usize,
    /// Maximum live sessions; beyond it, session creation answers 503.
    pub max_sessions: usize,
    /// Applied when a request has no `timeout_ms` field. `None` = no
    /// deadline.
    pub default_timeout_ms: Option<u64>,
    /// Hard cap on any requested `timeout_ms`.
    pub max_timeout_ms: u64,
    /// Hard cap on request bodies, bytes; beyond it, 413.
    pub max_body_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            host: "127.0.0.1".to_string(),
            port: 0,
            max_inflight: 64,
            max_sessions: 256,
            default_timeout_ms: None,
            max_timeout_ms: 3_600_000,
            max_body_bytes: 8 * 1024 * 1024,
        }
    }
}

/// Shared server internals, visible to the handlers in [`crate::api`].
#[derive(Debug)]
pub struct ServerState {
    /// The configuration the server was started with.
    pub config: ServerConfig,
    /// The session table.
    pub sessions: SessionStore,
    /// Per-request admission gate.
    pub gate: AdmissionGate,
    /// Set by `POST /shutdown` (or [`ServerHandle::shutdown`]); every loop
    /// polls it.
    pub stop: CancelToken,
}

impl ServerState {
    /// The budget policy handlers derive per-request [`cqa_exec::Budget`]s
    /// from.
    pub fn budget_policy(&self) -> BudgetPolicy {
        BudgetPolicy {
            default_timeout_ms: self.config.default_timeout_ms,
            max_timeout_ms: self.config.max_timeout_ms,
        }
    }
}

/// A running server: its bound address plus the shutdown/join handles.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    state: Arc<ServerState>,
    group: ServiceGroup,
}

impl ServerHandle {
    /// The actually bound address (resolves port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The shared state (tests inspect gate/session counters through this).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Ask the server to stop accepting and drain.
    pub fn shutdown(&self) {
        self.state.stop.cancel();
    }

    /// Block until the accept loop has exited (implies [`shutdown`] was
    /// requested by someone), then drop all sessions. Returns the number of
    /// sessions dropped — a clean client-driven shutdown leaves 0 behind.
    ///
    /// [`shutdown`]: ServerHandle::shutdown
    pub fn join(mut self) -> usize {
        let _ = self.group.join_all();
        self.state.sessions.clear()
    }
}

/// How often blocked loops wake to poll the stop token.
const POLL: Duration = Duration::from_millis(25);

/// Bind and start serving in the background.
pub fn start(config: ServerConfig) -> Result<ServerHandle, String> {
    let listener = TcpListener::bind((config.host.as_str(), config.port))
        .map_err(|e| format!("bind {}:{}: {e}", config.host, config.port))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("set_nonblocking: {e}"))?;
    let state = Arc::new(ServerState {
        sessions: SessionStore::new(config.max_sessions),
        gate: AdmissionGate::new(config.max_inflight),
        stop: CancelToken::new(),
        config,
    });
    let mut group = ServiceGroup::new();
    let accept_state = Arc::clone(&state);
    let spawned = group.spawn("repaird-accept", move || {
        accept_loop(&listener, &accept_state);
    });
    if !spawned {
        return Err("could not spawn the accept thread".to_string());
    }
    Ok(ServerHandle { addr, state, group })
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    while !state.stop.is_cancelled() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let state = Arc::clone(state);
                if !ServiceGroup::spawn_detached("repaird-conn", move || {
                    serve_connection(stream, &state);
                }) {
                    // Thread exhaustion: nothing to do but drop the socket;
                    // the client sees a reset and retries.
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

fn would_block(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// The keep-alive request loop for one connection.
fn serve_connection(stream: TcpStream, state: &Arc<ServerState>) {
    // Short read timeout so the loop can poll the stop token while idle.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    // The disconnect watcher peeks a clone of the socket and cancels the
    // budget of whatever request is in flight when the peer vanishes. The
    // clone shares the socket's open file description, so the 100 ms read
    // timeout above paces the watcher's `peek` too — it must NOT switch the
    // socket to non-blocking, or every read on the main path busy-spins
    // through its stall allowance in microseconds.
    let cancel_slot: Arc<RwLock<Option<CancelToken>>> = Arc::default();
    let conn_done = CancelToken::new();
    if let Ok(peer) = stream.try_clone() {
        let slot = Arc::clone(&cancel_slot);
        let done = conn_done.clone();
        ServiceGroup::spawn_detached("repaird-watch", move || {
            watch_disconnect(&peer, &slot, &done);
        });
    }
    let Ok(read_half) = stream.try_clone() else {
        conn_done.cancel();
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        // Idle wait: poll for the first byte of a request (or EOF, or
        // shutdown) without committing to a blocking parse.
        let ready = loop {
            if state.stop.is_cancelled() {
                break false;
            }
            match reader.fill_buf() {
                Ok([]) => break false, // clean EOF between requests
                Ok(_) => break true,
                Err(e) if would_block(&e) => continue,
                Err(_) => break false,
            }
        };
        if !ready {
            break;
        }
        let request = match read_request(&mut reader, state.config.max_body_bytes) {
            Ok(Some(request)) => request,
            Ok(None) => break,
            Err(HttpError::Disconnected) => break,
            Err(HttpError::HeadTooLarge) => {
                let _ = respond_error(&mut writer, 431, "request head too large");
                break;
            }
            Err(HttpError::BodyTooLarge) => {
                let _ = respond_error(&mut writer, 413, "request body too large");
                break;
            }
            Err(HttpError::Malformed(e)) => {
                let _ = respond_error(&mut writer, 400, &e);
                break;
            }
        };
        let close = request.close;
        if !dispatch(state, &request, &cancel_slot, &mut writer) {
            break;
        }
        if close {
            break;
        }
    }
    *write_lock(&cancel_slot) = None;
    conn_done.cancel();
}

/// Admission-check and run one request; returns false when the response
/// could not be written (peer gone).
fn dispatch(
    state: &Arc<ServerState>,
    request: &Request,
    cancel_slot: &Arc<RwLock<Option<CancelToken>>>,
    writer: &mut TcpStream,
) -> bool {
    // Health and shutdown never take a permit: they do no CQA work, must
    // stay reachable on a saturated server, and keeping them out of the
    // gate makes `in_flight` an honest count of executing CQA requests.
    let exempt = request.path == "/health" || request.path == "/shutdown";
    let reply = if exempt {
        api::handle(state, request, cancel_slot)
    } else {
        match state.gate.try_enter() {
            Some(_permit) => api::handle(state, request, cancel_slot),
            None => api::Reply {
                status: 429,
                retry_after: Some(1),
                body: Json::obj([
                    ("error", Json::str("server is at its in-flight request cap")),
                    ("retry_after", Json::Int(1)),
                ]),
            },
        }
    };
    let mut extra: Vec<(&str, String)> = Vec::new();
    if let Some(seconds) = reply.retry_after {
        extra.push(("Retry-After", seconds.to_string()));
    }
    write_response(writer, reply.status, &extra, &reply.body.to_string(), false).is_ok()
}

fn respond_error(writer: &mut TcpStream, status: u16, message: &str) -> std::io::Result<()> {
    let body = Json::obj([("error", Json::str(message))]).to_string();
    write_response(writer, status, &[], &body, true)
}

/// Poll `peek` until the peer hangs up or the connection finishes its own
/// lifecycle. `Ok(0)` from `peek` is EOF — the peer is gone; pending
/// request bytes show up as `Ok(n > 0)` and are left untouched.
fn watch_disconnect(peer: &TcpStream, slot: &RwLock<Option<CancelToken>>, done: &CancelToken) {
    let mut probe = [0u8; 1];
    while !done.is_cancelled() {
        let gone = match peer.peek(&mut probe) {
            Ok(0) => true,
            Ok(_) => false,
            Err(e) if would_block(&e) => false,
            Err(_) => true,
        };
        if gone {
            // The peer may vanish *before* the handler registers its
            // budget token (it parses the request first), so keep draining
            // the slot until the connection loop winds down — whatever
            // token appears belongs to work nobody is waiting for.
            while !done.is_cancelled() {
                if let Some(token) = write_lock(slot).take() {
                    token.cancel();
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}
