//! The multi-tenant session table.
//!
//! Each session is one tenant's [`CqaSession`] — a loaded instance plus its
//! warm CQA artifacts — behind its own `RwLock`, so requests against
//! *different* sessions run fully in parallel while requests against the
//! same session serialize (mutations take the write lock, read-only queries
//! could share the read lock; the handlers take write uniformly because
//! even queries refresh the maintained state).
//!
//! The table itself is a `RwLock<BTreeMap>` — ordered, so `GET /sessions`
//! listings are deterministic — with a hard capacity: when full, creation
//! is refused (the handler answers 503) instead of growing unboundedly.

use cqa_core::CqaSession;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// One registered session.
pub type SessionSlot = Arc<RwLock<CqaSession>>;

/// Read a lock, absorbing poisoning: a handler that panicked while holding
/// the lock must not take the whole server down with it — the data is a
/// session cache, and the worst case is serving that tenant a state another
/// handler failed to finish mutating (mutations go through `&mut` methods
/// that keep the session coherent step-by-step).
pub fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Write counterpart of [`read_lock`].
pub fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A bounded table of live sessions, keyed by a monotone id.
#[derive(Debug)]
pub struct SessionStore {
    table: RwLock<BTreeMap<u64, SessionSlot>>,
    next_id: AtomicU64,
    capacity: usize,
}

impl SessionStore {
    /// An empty store admitting at most `capacity` concurrent sessions.
    pub fn new(capacity: usize) -> SessionStore {
        SessionStore {
            table: RwLock::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
            capacity,
        }
    }

    /// Register a session; `None` when the table is full (the id counter is
    /// only consumed on success, so refused creations leave no gaps).
    pub fn create(&self, session: CqaSession) -> Option<u64> {
        let mut table = write_lock(&self.table);
        if table.len() >= self.capacity {
            return None;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        table.insert(id, Arc::new(RwLock::new(session)));
        Some(id)
    }

    /// Look up a live session.
    pub fn get(&self, id: u64) -> Option<SessionSlot> {
        read_lock(&self.table).get(&id).map(Arc::clone)
    }

    /// Drop a session; `true` if it existed. In-flight requests holding the
    /// `Arc` finish against the detached session.
    pub fn remove(&self, id: u64) -> bool {
        write_lock(&self.table).remove(&id).is_some()
    }

    /// Live session ids, ascending.
    pub fn ids(&self) -> Vec<u64> {
        read_lock(&self.table).keys().copied().collect()
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        read_lock(&self.table).len()
    }

    /// True when no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every session (shutdown path); returns how many were dropped.
    pub fn clear(&self) -> usize {
        let mut table = write_lock(&self.table);
        let n = table.len();
        table.clear();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> CqaSession {
        CqaSession::from_text("@relation T(K, V)\n1, 1\n", "key T(K)\n").unwrap()
    }

    #[test]
    fn ids_are_monotone_and_capacity_is_enforced() {
        let store = SessionStore::new(2);
        let a = store.create(session()).unwrap();
        let b = store.create(session()).unwrap();
        assert!(a < b);
        assert!(store.create(session()).is_none(), "over capacity");
        assert_eq!(store.ids(), vec![a, b]);
        assert!(store.remove(a));
        assert!(!store.remove(a), "double remove");
        let c = store.create(session()).unwrap();
        assert!(c > b, "ids never reused");
        assert_eq!(store.clear(), 2);
        assert!(store.is_empty());
    }

    #[test]
    fn detached_sessions_stay_usable_by_holders() {
        let store = SessionStore::new(8);
        let id = store.create(session()).unwrap();
        let slot = store.get(id).unwrap();
        assert!(store.remove(id));
        assert!(store.get(id).is_none());
        // The Arc we took before removal still works.
        assert_eq!(read_lock(&slot).epoch(), 2);
    }
}
