//! JSON ↔ domain conversions shared by all handlers.
//!
//! The wire format renders answers, repairs and causes with the same
//! `Display` impls the CLI uses, so a response body carries strings that
//! are byte-identical to the library/one-shot path — the equivalence suite
//! and the F20 harness compare them verbatim.

use crate::json::Json;
use cqa_core::planner::Strategy;
use cqa_exec::{Budget, Limits, Outcome};
use cqa_relation::{Tuple, Value};

/// Per-server budget policy: what a request may ask for and what it gets
/// when it asks for nothing.
#[derive(Debug, Clone, Copy)]
pub struct BudgetPolicy {
    /// Applied when a request carries no `timeout_ms`. `None` = no deadline.
    pub default_timeout_ms: Option<u64>,
    /// Hard cap on any requested `timeout_ms`.
    pub max_timeout_ms: u64,
}

/// Build the request [`Budget`] from a parsed body.
///
/// * `timeout_ms` — wall-clock deadline; **`0` means "truncate
///   immediately"** (the budget is born exhausted — the response is an
///   empty-but-sound truncated outcome, not an unlimited run), values above
///   the policy cap are clamped to it.
/// * `budget_steps` — logical step cap (deterministic truncation).
/// * `max_repairs` — emitted-item cap.
pub fn budget_from_body(body: &Json, policy: &BudgetPolicy) -> Budget {
    let deadline_ms = body
        .get("timeout_ms")
        .and_then(Json::as_u64)
        .or(policy.default_timeout_ms)
        .map(|ms| ms.min(policy.max_timeout_ms));
    Budget::new(Limits {
        deadline_ms,
        steps: body.get("budget_steps").and_then(Json::as_u64),
        items: body.get("max_repairs").and_then(Json::as_u64),
    })
}

/// Convert a JSON scalar to a [`Value`]; arrays/objects are rejected.
pub fn value_from_json(j: &Json) -> Result<Value, String> {
    match j {
        Json::Null => Ok(Value::NULL),
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::Int(n) => Ok(Value::Int(*n)),
        Json::Float(x) => Ok(Value::Float(*x)),
        Json::Str(s) => Ok(Value::str(s)),
        other => Err(format!("row values must be scalars, got {other}")),
    }
}

/// Convert a JSON array to a [`Tuple`].
pub fn tuple_from_json(j: &Json) -> Result<Tuple, String> {
    let items = j
        .as_array()
        .ok_or_else(|| format!("expected a row array, got {j}"))?;
    let values: Result<Vec<Value>, String> = items.iter().map(value_from_json).collect();
    Ok(Tuple::new(values?))
}

/// The `truncated` response field for a truncated outcome, `None` for an
/// exact one (exact responses carry no field at all, mirroring the CLI's
/// silent-when-exact convention).
pub fn truncation_json<T>(outcome: &Outcome<T>) -> Option<Json> {
    outcome.truncation().map(|(reason, explored)| {
        Json::obj([
            ("reason", Json::str(reason.as_str())),
            ("explored", int_json(explored)),
        ])
    })
}

/// A short machine-readable tag for the planner's strategy.
pub fn strategy_tag(strategy: &Strategy) -> &'static str {
    match strategy {
        Strategy::FoRewriting => "fo-rewriting",
        Strategy::RepairEnumeration { .. } => "repair-enumeration",
        Strategy::FactoredEnumeration { .. } => "factored-enumeration",
        Strategy::DirectEvaluation => "direct-evaluation",
    }
}

/// Render an iterator of displayables to a JSON string array.
pub fn strings_json<T: std::fmt::Display>(items: impl IntoIterator<Item = T>) -> Json {
    Json::Array(
        items
            .into_iter()
            .map(|t| Json::Str(t.to_string()))
            .collect(),
    )
}

/// A `u64` as wire JSON (saturating into `i64` — epochs and counts never
/// get near the boundary, but the codec must stay total).
pub fn int_json(n: u64) -> Json {
    Json::Int(i64::try_from(n).unwrap_or(i64::MAX))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use cqa_exec::TruncationReason;

    const POLICY: BudgetPolicy = BudgetPolicy {
        default_timeout_ms: None,
        max_timeout_ms: 60_000,
    };

    #[test]
    fn zero_timeout_is_born_exhausted_not_unlimited() {
        let body = parse(r#"{"timeout_ms":0}"#).unwrap();
        let budget = budget_from_body(&body, &POLICY);
        assert_eq!(budget.exhaustion(), Some(TruncationReason::Deadline));
        // And the huge end of the range is clamped to the policy cap, not
        // interpreted as zero or rejected.
        let body = parse(&format!(r#"{{"timeout_ms":{}}}"#, u64::MAX)).unwrap();
        assert!(!budget_from_body(&body, &POLICY).exhausted());
    }

    #[test]
    fn absent_limits_are_unlimited_under_default_policy() {
        let body = parse("{}").unwrap();
        let budget = budget_from_body(&body, &POLICY);
        assert!(!budget.exhausted());
        assert!(!budget.forces_sequential());
    }

    #[test]
    fn step_budgets_force_sequential_determinism() {
        let body = parse(r#"{"budget_steps":100,"max_repairs":3}"#).unwrap();
        assert!(budget_from_body(&body, &POLICY).forces_sequential());
    }

    #[test]
    fn tuples_round_trip_scalars_and_reject_nesting() {
        let row = parse(r#"[1, "a", 2.5, true, null]"#).unwrap();
        let t = tuple_from_json(&row).unwrap();
        assert_eq!(t.to_string(), "(1, a, 2.5, true, NULL)");
        assert!(tuple_from_json(&parse(r#"[[1]]"#).unwrap()).is_err());
        assert!(tuple_from_json(&parse(r#"{"a":1}"#).unwrap()).is_err());
    }
}
