//! Live-socket smoke tests for `repaird`: the graceful-degradation and
//! lifecycle contract, driven through real TCP connections against an
//! in-process server.
//!
//! Covered here (the CI "server smoke" job runs exactly this suite plus
//! the CLI binary test):
//! * an over-budget query returns a `truncated` JSON body on a healthy
//!   connection — never a dropped connection;
//! * a saturated admission gate answers 429 + `Retry-After` while
//!   `/health` stays reachable;
//! * a client that disconnects mid-request has its work cancelled and the
//!   in-flight count drains back to zero;
//! * shutdown is clean: accept loop exits, sessions are not leaked.

use cqa_server::{start, ServerConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Minimal test client: one request over a fresh connection.
fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    send(&mut stream, method, path, body);
    read_reply(&mut BufReader::new(stream))
}

fn send(stream: &mut TcpStream, method: &str, path: &str, body: &str) {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
}

/// Parse one HTTP response (status, body) off a buffered stream.
fn read_reply(reader: &mut BufReader<TcpStream>) -> (u16, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
            .and_then(|v| v.parse().ok())
        {
            content_length = v;
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf8 body"))
}

/// A small inconsistent instance: one key, two conflicting groups.
const DB: &str = "@relation Employee(Name, Salary)\n'page', 5000\n'page', 8000\n'smith', 3000\n";
const SIGMA: &str = "key Employee(Name)\n";

fn create_session(addr: std::net::SocketAddr) -> u64 {
    let body = format!(
        r#"{{"db": {}, "constraints": {}}}"#,
        json_str(DB),
        json_str(SIGMA)
    );
    let (status, reply) = request(addr, "POST", "/sessions", &body);
    assert_eq!(status, 200, "create failed: {reply}");
    field_u64(&reply, "session").expect("session id")
}

fn json_str(s: &str) -> String {
    cqa_server::Json::str(s).to_string()
}

/// Pull `"name":<int>` out of a flat JSON reply (enough for smoke checks).
fn field_u64(reply: &str, name: &str) -> Option<u64> {
    let key = format!("\"{name}\":");
    let rest = &reply[reply.find(&key)? + key.len()..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

#[test]
fn over_budget_query_truncates_on_a_live_connection() {
    let handle = start(ServerConfig::default()).expect("start");
    let addr = handle.addr();
    let id = create_session(addr);

    // Keep-alive connection: over-budget query, then a healthy one — both
    // on the SAME socket, proving truncation did not kill the connection.
    // `timeout_ms: 0` is a budget born exhausted; the cardinality class
    // goes through repair enumeration, the budget-metered regime (the
    // planner's polynomial paths are deliberately budget-exempt — they
    // answer exactly in less time than a truncation check would justify).
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    send(
        &mut stream,
        "POST",
        &format!("/sessions/{id}/query"),
        r#"{"query": "Q(x) :- Employee(x, y)", "class": "cardinality", "timeout_ms": 0}"#,
    );
    let (status, reply) = read_reply(&mut reader);
    assert_eq!(status, 200, "truncation must be a 200: {reply}");
    assert!(
        reply.contains(r#""truncated":{"reason":"deadline""#),
        "expected a deadline truncation, got {reply}"
    );
    // Truncated answers are a sound *subset* of the exact certain answers
    // {page, smith}: whatever survived the exhausted enumeration must not
    // include anything outside that set.
    assert!(
        reply.contains(r#""answers":["#),
        "missing answers field: {reply}"
    );
    assert!(
        !reply.contains("8000") && !reply.contains("5000") && !reply.contains("3000"),
        "truncated answers leaked non-certain values: {reply}"
    );

    send(
        &mut stream,
        "POST",
        &format!("/sessions/{id}/query"),
        r#"{"query": "Q(x) :- Employee(x, y)"}"#,
    );
    let (status, reply) = read_reply(&mut reader);
    assert_eq!(status, 200);
    assert!(
        reply.contains("(smith)") && !reply.contains("truncated"),
        "unbudgeted rerun on same socket must be exact: {reply}"
    );

    let (status, _) = request(addr, "DELETE", &format!("/sessions/{id}"), "");
    assert_eq!(status, 200);
    let (_, _) = request(addr, "POST", "/shutdown", "");
    assert_eq!(handle.join(), 0, "sessions leaked across shutdown");
}

#[test]
fn saturated_gate_answers_429_and_health_stays_up() {
    let config = ServerConfig {
        max_inflight: 0, // everything is "excess load"
        ..ServerConfig::default()
    };
    let handle = start(config).expect("start");
    let addr = handle.addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    send(
        &mut stream,
        "POST",
        "/sessions",
        r#"{"db": "", "constraints": ""}"#,
    );
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status");
    assert!(
        status_line.contains("429"),
        "expected 429 from a saturated gate, got {status_line:?}"
    );
    let mut retry_after = false;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header");
        if line.trim_end().is_empty() {
            break;
        }
        if line.to_ascii_lowercase().starts_with("retry-after:") {
            retry_after = true;
        }
    }
    assert!(retry_after, "429 must carry Retry-After");

    // Health is exempt from admission (it does no CQA work).
    let (status, reply) = request(addr, "GET", "/health", "");
    assert_eq!(status, 200);
    assert!(reply.contains(r#""status":"ok""#), "{reply}");
    // The fleet-wide subplan-cache counters ride along.
    assert!(reply.contains(r#""plan_cache""#), "{reply}");
    assert!(reply.contains(r#""hits""#), "{reply}");
    assert!(reply.contains(r#""misses""#), "{reply}");

    handle.shutdown();
    assert_eq!(handle.join(), 0);
}

#[test]
fn mid_request_disconnect_cancels_work_and_drains() {
    let handle = start(ServerConfig::default()).expect("start");
    let addr = handle.addr();

    // A session whose repair space is huge: 18 independent conflicts give
    // 2^18 S-repairs — ample time to hang up mid-enumeration.
    let mut db = String::from("@relation T(K, V)\n");
    for k in 0..18 {
        db.push_str(&format!("{k}, 1\n{k}, 2\n"));
    }
    let body = format!(
        r#"{{"db": {}, "constraints": {}}}"#,
        json_str(&db),
        json_str("key T(K)\n")
    );
    let (status, reply) = request(addr, "POST", "/sessions", &body);
    assert_eq!(status, 200, "{reply}");
    let id = field_u64(&reply, "session").expect("id");

    // Fire the expensive request and immediately hang up.
    let mut stream = TcpStream::connect(addr).expect("connect");
    send(
        &mut stream,
        "POST",
        &format!("/sessions/{id}/repairs"),
        r#"{"class": "subset"}"#,
    );
    drop(stream);

    // The disconnect watcher must cancel the budget: in-flight drains back
    // to zero well before the enumeration could have finished naturally.
    let mut drained = false;
    for _ in 0..400 {
        let (status, reply) = request(addr, "GET", "/health", "");
        assert_eq!(status, 200);
        if field_u64(&reply, "inflight") == Some(0) {
            drained = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(
        drained,
        "in-flight request was not cancelled after disconnect"
    );

    // The server is still fully functional afterwards.
    let (status, reply) = request(
        addr,
        "POST",
        &format!("/sessions/{id}/query"),
        r#"{"query": "Q(x) :- T(x, y)", "budget_steps": 500000}"#,
    );
    assert_eq!(status, 200, "{reply}");

    let (status, _) = request(addr, "DELETE", &format!("/sessions/{id}"), "");
    assert_eq!(status, 200);
    let (_, _) = request(addr, "POST", "/shutdown", "");
    assert_eq!(handle.join(), 0);
}

#[test]
fn protocol_errors_are_4xx_not_drops() {
    let handle = start(ServerConfig {
        max_body_bytes: 1024,
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = handle.addr();

    // Malformed JSON → 400 with an error body.
    let id_body = format!(
        r#"{{"db": {}, "constraints": {}}}"#,
        json_str(DB),
        json_str(SIGMA)
    );
    let (status, reply) = request(addr, "POST", "/sessions", &id_body);
    assert_eq!(status, 200, "{reply}");
    let id = field_u64(&reply, "session").expect("id");
    let (status, reply) = request(addr, "POST", &format!("/sessions/{id}/query"), "{nope");
    assert_eq!(status, 400);
    assert!(reply.contains("error"), "{reply}");

    // Unknown session → 404; bad route → 404; wrong method → 405.
    let (status, _) = request(
        addr,
        "POST",
        "/sessions/9999/query",
        r#"{"query":"Q(x) :- Employee(x, y)"}"#,
    );
    assert_eq!(status, 404);
    let (status, _) = request(addr, "GET", "/nothing/here", "");
    assert_eq!(status, 404);
    let (status, _) = request(addr, "PUT", "/sessions", "{}");
    assert_eq!(status, 405);

    // Oversized body → 413.
    let big = format!(
        r#"{{"db": {}, "constraints": ""}}"#,
        json_str(&"x".repeat(4096))
    );
    let (status, _) = request(addr, "POST", "/sessions", &big);
    assert_eq!(status, 413);

    handle.shutdown();
    assert_eq!(handle.join(), 1, "the one live session is dropped at join");
}
