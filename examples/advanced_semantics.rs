//! The survey's "further developments" in one tour: prioritized repairs
//! ([103]), update-based repairs ([108]), incremental repairs under updates
//! ([87]), AR/IAR inconsistency-tolerant semantics (§8), numerical repairs
//! ([20, 62]), causal effect ([102]), and the strategy planner.
//!
//! Run with `cargo run --example advanced_semantics`.

use inconsistent_db::causality::causal_effects;
use inconsistent_db::cleaning::{numeric_repair, NumericConstraint};
use inconsistent_db::core::{
    answer_consistently, ar_answers, globally_optimal_repairs, iar_answers, pareto_optimal_repairs,
    repairs_after_insert, update_repairs, PriorityRelation, Strategy,
};
use inconsistent_db::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A payroll with two conflicting groups.
    let mut db = Database::new();
    db.create_relation(RelationSchema::new("Emp", ["Name", "Salary"]))?;
    db.insert("Emp", tuple!["page", 5000])?; // ι1 (from HR)
    db.insert("Emp", tuple!["page", 8000])?; // ι2 (from a stale import)
    db.insert("Emp", tuple!["ruiz", 4000])?; // ι3 (from HR)
    db.insert("Emp", tuple!["ruiz", 4400])?; // ι4 (from a stale import)
    db.insert("Emp", tuple!["smith", 3000])?; // ι5
    let sigma = ConstraintSet::from_iter([KeyConstraint::new("Emp", ["Name"])]);

    // --- Prioritized repairs: trust HR over the import --------------------
    let mut trust = PriorityRelation::new();
    trust.prefer(Tid(1), Tid(2)).prefer(Tid(3), Tid(4));
    println!("All S-repairs: {}", s_repairs(&db, &sigma)?.len());
    let pareto = pareto_optimal_repairs(&db, &sigma, &trust)?;
    println!("Pareto-optimal under the trust priority: {}", pareto.len());
    for r in &pareto {
        println!("  {r}");
    }
    let global = globally_optimal_repairs(&db, &sigma, &trust)?;
    println!("Globally-optimal: {}", global.len());

    // --- Update repairs: overwrite instead of delete ----------------------
    let fd = FunctionalDependency::new("Emp", ["Name"], ["Salary"]);
    let updates = update_repairs(&db, &fd, None)?;
    println!(
        "\nUpdate repairs (domain values, every tuple survives): {}",
        updates.len()
    );
    for u in updates.iter().take(2) {
        let ops: Vec<String> = u.updates.iter().map(|c| c.to_string()).collect();
        println!("  {{{}}}", ops.join(", "));
    }

    // --- AR vs IAR ---------------------------------------------------------
    let q_names = UnionQuery::single(parse_query("Q(x) :- Emp(x, y)")?);
    let ar = ar_answers(&db, &sigma, &q_names)?;
    let iar = iar_answers(&db, &sigma, &q_names)?;
    println!("\nAR answers (true in every repair): {:?}", names(&ar));
    println!("IAR answers (true in the intersection): {:?}", names(&iar));

    // --- Strategy planner ---------------------------------------------------
    let planned = answer_consistently(&db, &sigma, &q_names)?;
    let how = match planned.strategy {
        Strategy::FoRewriting => "FO rewriting",
        Strategy::DirectEvaluation => "direct evaluation",
        Strategy::RepairEnumeration { .. } => "repair enumeration",
        Strategy::FactoredEnumeration { .. } => "factored repair enumeration",
    };
    println!("Planner answered via: {how}");

    // --- Incremental repairs under updates ---------------------------------
    let mut clean_db = db.clone();
    for t in [Tid(2), Tid(4)] {
        clean_db.delete(t)?;
    }
    let inc = repairs_after_insert(&clean_db, &sigma, &[("Emp".into(), tuple!["smith", 9999])])?;
    println!(
        "\nAfter inserting a conflicting smith row: {} local repairs (untouched rows stay put)",
        inc.repairs.len()
    );

    // --- Numerical repair under an aggregate constraint --------------------
    let budget = NumericConstraint::sum_at_most("Emp", "Salary", 10000.0);
    let fixed = numeric_repair(&clean_db, &budget)?;
    println!(
        "Budget repair: L1 distance {:.0} across {} cell(s)",
        fixed.l1_distance,
        fixed.fixes.len()
    );

    // --- Causal effect ------------------------------------------------------
    let q = UnionQuery::single(parse_query("Q() :- Emp(x, y), Emp(x, z), y != z")?);
    let endo = db.tids();
    println!("\nCausal effects on \"some key is violated\":");
    for (tid, effect) in causal_effects(&db, &q, &endo) {
        println!("  {tid}: {effect:+.3}");
    }

    Ok(())
}

fn names(ts: &std::collections::BTreeSet<Tuple>) -> Vec<String> {
    ts.iter().map(|t| t.at(0).render().into_owned()).collect()
}
