//! The static-analysis layer (`cqa-analysis`) end to end: the diagnostic
//! catalog, program classification (stratified / head-cycle-free / full),
//! constraint-set lints, and the stratified fast path the analysis selects
//! in the ASP solver.
//!
//! Run with `cargo run --example analyze_program`.

use inconsistent_db::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Every diagnostic carries a stable code; this is the full catalog.
    println!("Diagnostic catalog:");
    for code in DiagCode::ALL {
        println!(
            "  {} {:<26} [{}] {}",
            code.code(),
            code.name(),
            code.default_severity(),
            code.summary()
        );
    }

    // A stratified program: reachability plus a negation layer.
    let reach = parse_asp(
        "node(A).\n\
         node(B).\n\
         node(C).\n\
         edge(A, B).\n\
         reach(A).\n\
         reach(y) :- reach(x), edge(x, y).\n\
         unreached(x) :- node(x), not reach(x).",
    )?;
    let a = analyze_program(&reach);
    println!("\nReachability program: {}", a.classification_line());
    assert_eq!(a.class, ProgramClass::Stratified);

    // The classic even loop is NOT stratified: the analysis says so (A002)
    // and the solver must fall back to stable-model search (two models).
    let even = parse_asp("a :- not b().\nb :- not a().")?;
    let a = analyze_program(&even);
    println!("\nEven negation loop: {}", a.classification_line());
    for d in &a.diagnostics {
        println!("{d}");
    }

    // The stratified program takes the analysis-selected fast path: a
    // bottom-up per-stratum fixpoint, no search — and one unique model.
    let g = inconsistent_db::asp::ground(&reach)
        .map_err(inconsistent_db::relation::RelationError::Parse)?;
    let ground_analysis = analyze_ground(&g);
    println!(
        "\nGround reachability program: {}",
        ground_analysis.classification_line()
    );
    let models = stable_models(&g); // dispatches to the fast path
    assert_eq!(models.len(), 1);
    println!("unique stable model, computed without search");

    // Constraint-set lints: a duplicate, a subsumed DC, and an FD that is
    // secretly a key (the planner uses C004 to explain its strategy).
    let mut db = Database::new();
    db.create_relation(RelationSchema::new("Employee", ["Name", "Salary"]))?;
    db.insert("Employee", tuple!["page", 5000])?;
    let sigma = ConstraintSet::from_iter([
        Constraint::from(DenialConstraint::parse("d1", "S(x), R(x, y), S(y)")?),
        Constraint::from(DenialConstraint::parse("d2", "S(x), R(x, y), S(y)")?),
        Constraint::from(DenialConstraint::parse("d3", "S(x), R(x, y)")?),
        Constraint::from(FunctionalDependency::new("Employee", ["Name"], ["Salary"])),
    ]);
    println!("\nConstraint-set lints:");
    for d in lint_constraints(&sigma, Some(&db)) {
        println!("{d}");
    }

    // Query lints: a disconnected body is a Cartesian product (Q002).
    let q = parse_query("Q() :- Employee(x, y), Employee(u, w)")?;
    println!("\nQuery lints:");
    for d in lint_query(&q) {
        println!("{d}");
    }

    Ok(())
}
