//! Causality as explanation (§7 of the paper): causes and responsibilities
//! for query answers (Example 7.1), computed three ways — directly, through
//! repairs, and through repair programs (Example 7.2) — plus attribute-level
//! causes (Example 7.3) and causality under integrity constraints
//! (Example 7.4).
//!
//! Run with `cargo run --example causality_explanations`.

use inconsistent_db::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The instance of Examples 3.5 / 7.1.
    let mut db = Database::new();
    db.create_relation(RelationSchema::new("R", ["A", "B"]))?;
    db.create_relation(RelationSchema::new("S", ["A"]))?;
    db.insert("R", tuple!["a4", "a3"])?; // ι1
    db.insert("R", tuple!["a2", "a1"])?; // ι2
    db.insert("R", tuple!["a3", "a3"])?; // ι3
    db.insert("S", tuple!["a4"])?; // ι4
    db.insert("S", tuple!["a2"])?; // ι5
    db.insert("S", tuple!["a3"])?; // ι6
    println!("{db}");

    let q = UnionQuery::single(parse_query("Q() :- S(x), R(x, y), S(y)")?);

    // --- Example 7.1: direct computation ----------------------------------
    println!("Why is Q true? The actual causes, with responsibilities:");
    for c in actual_causes(&db, &q) {
        println!("  {c}");
    }
    let mracs = most_responsible_causes(&db, &q);
    println!(
        "Most responsible: {:?}",
        mracs.iter().map(|c| c.tid.to_string()).collect::<Vec<_>>()
    );

    // --- §7 connection: the same through S-/C-repairs of κ(Q) -------------
    let via = causes_via_repairs(&db, &q)?;
    println!("\nThrough repairs of κ(Q) (must agree):");
    for c in &via {
        println!("  {c}");
    }

    // --- Example 7.2: through extended repair programs --------------------
    let via_asp = causes_via_asp(&db, &q)?;
    println!("\nThrough the extended repair program (ans/caucon/preresp):");
    for c in &via_asp {
        println!("  {c}");
    }

    // --- Example 7.3: attribute-level causes ------------------------------
    println!("\nAttribute-level causes (which *cells* explain Q):");
    for c in attribute_causes(&db, &q)? {
        println!("  {c}");
    }

    // --- Example 7.4: causality under integrity constraints ---------------
    let mut uni = Database::new();
    uni.create_relation(RelationSchema::new("Dep", ["DName", "TStaff"]))?;
    uni.create_relation(RelationSchema::new("Course", ["CName", "TStaff", "DName"]))?;
    uni.insert("Dep", tuple!["Computing", "John"])?; // ι1
    uni.insert("Dep", tuple!["Philosophy", "Patrick"])?; // ι2
    uni.insert("Dep", tuple!["Math", "Kevin"])?; // ι3
    uni.insert("Course", tuple!["COM08", "John", "Computing"])?; // ι4
    uni.insert("Course", tuple!["Math01", "Kevin", "Math"])?; // ι5
    uni.insert("Course", tuple!["HIST02", "Patrick", "Philosophy"])?; // ι6
    uni.insert("Course", tuple!["Math08", "Eli", "Math"])?; // ι7
    uni.insert("Course", tuple!["COM01", "John", "Computing"])?; // ι8

    let q_a = UnionQuery::single(parse_query("Q() :- Dep(y, 'John'), Course(z, 'John', y)")?);
    let psi = ConstraintSet::from_iter([Tgd::parse("psi", "Course(u, y, x) :- Dep(x, y)")?]);

    println!("\nExample 7.4 — query (A), answer John, without constraints:");
    for c in causes_under_ics(&uni, &ConstraintSet::new(), &q_a, None)? {
        println!("  {c}");
    }
    println!("…and under ψ (Dep rows must keep a course): the Course causes vanish:");
    for c in causes_under_ics(&uni, &psi, &q_a, None)? {
        println!("  {c}");
    }

    let q_c = UnionQuery::single(parse_query("Q() :- Course(z, 'John', y)")?);
    println!("\nQuery (C) under ψ: responsibilities drop from 1/2 to 1/3,");
    println!("because contingency sets must now include the Dep row:");
    for c in causes_under_ics(&uni, &psi, &q_c, None)? {
        println!("  {c}");
    }

    Ok(())
}
