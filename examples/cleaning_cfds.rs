//! Data cleaning (§6 of the paper): conditional functional dependencies on
//! the paper's customer table, cost-based value repair, entity resolution,
//! and quality query answering.
//!
//! Run with `cargo run --example cleaning_cfds`.

use inconsistent_db::cleaning::quality_answers_with_threshold;
use inconsistent_db::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The customer table from §6.
    let mut db = Database::new();
    db.create_relation(RelationSchema::new(
        "Cust",
        ["CC", "AC", "Phone", "Name", "Street", "City", "Zip"],
    ))?;
    db.insert(
        "Cust",
        tuple![44, 131, "1234567", "mike", "mayfield", "NYC", "EH4 8LE"],
    )?;
    db.insert(
        "Cust",
        tuple![44, 131, "3456789", "rick", "crichton", "NYC", "EH4 8LE"],
    )?;
    db.insert(
        "Cust",
        tuple![1, 908, "3456789", "joe", "mtn ave", "NYC", "07974"],
    )?;
    println!("{db}");

    // The paper's plain FDs hold…
    let fd1 = FunctionalDependency::new("Cust", ["CC", "AC", "Phone"], ["Street", "City", "Zip"]);
    let fd2 = FunctionalDependency::new("Cust", ["CC", "AC"], ["City"]);
    println!(
        "[CC, AC, Phone] -> [Street, City, Zip] holds? {}",
        fd1.is_satisfied(&db)?
    );
    println!(
        "[CC, AC]        -> [City]              holds? {}",
        fd2.is_satisfied(&db)?
    );

    // …but the CFD [CC = 44, Zip] -> [Street] does not.
    let cfd = ConditionalFd::new(
        "Cust",
        vec![("CC", Some(Value::int(44))), ("Zip", None)],
        "Street",
        None,
    );
    println!("{cfd} holds? {}", cfd.is_satisfied(&db)?);
    println!("Violations: {:?}\n", cfd.violations(&db)?);

    // Cost-based value-modification cleaning.
    let spec = CleaningSpec::new().with_cfd(cfd);
    let result = clean(&db, &spec, &CostModel::uniform())?;
    println!(
        "Cleaner applied {} fix(es), total cost {:.3}:",
        result.fixes.len(),
        result.total_cost
    );
    for f in &result.fixes {
        println!("  {f}");
    }
    println!("\nCleaned instance:\n{}", result.db);

    // Entity resolution with a matching dependency.
    let mut people = Database::new();
    people.create_relation(RelationSchema::new("People", ["Name", "Phone"]))?;
    people.insert("People", tuple!["john smith", "555-1234"])?;
    people.insert("People", tuple!["jon smith", "555-1234"])?;
    people.insert("People", tuple!["alice jones", "555-9999"])?;
    let md = MatchingDependency::new("People", [("Name", 0.8), ("Phone", 1.0)]);
    let dedup = deduplicate(&people, &[md])?;
    println!(
        "Entity resolution merged {} cluster(s):\n{}",
        dedup.clusters.len(),
        dedup.db
    );

    // Quality answers: certain vs "true in most repairs".
    let mut payroll = Database::new();
    payroll.create_relation(RelationSchema::new("Emp", ["Name", "Salary"]))?;
    payroll.insert("Emp", tuple!["page", 5000])?;
    payroll.insert("Emp", tuple!["page", 8000])?;
    payroll.insert("Emp", tuple!["smith", 3000])?;
    let sigma = ConstraintSet::from_iter([KeyConstraint::new("Emp", ["Name"])]);
    let q = UnionQuery::single(parse_query("Q(x, y) :- Emp(x, y)")?);
    let majority = quality_answers_with_threshold(&payroll, &sigma, &q, &RepairClass::Subset, 0.5)?;
    println!("Quality answers with their repair-support fractions:");
    for (t, f) in majority {
        println!("  {t}  ({:.0}% of repairs)", f * 100.0);
    }

    Ok(())
}
