//! Keys and consistent query answering in depth (Examples 3.3–3.4 and the
//! §3.2 theory): repairs, SQL-style rewriting, the attack graph, aggregate
//! CQA with range semantics, and a case where rewriting is impossible.
//!
//! Run with `cargo run --example payroll_keys`.

use inconsistent_db::core::rewrite::keys::KeyRewriteError;
use inconsistent_db::core::{consistent_aggregate_range, count_key_repairs};
use inconsistent_db::prelude::*;
use inconsistent_db::query::{AggOp, AggregateQuery};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new();
    db.create_relation(RelationSchema::new("Employee", ["Name", "Salary"]))?;
    db.insert("Employee", tuple!["page", 5000])?;
    db.insert("Employee", tuple!["page", 8000])?;
    db.insert("Employee", tuple!["smith", 3000])?;
    db.insert("Employee", tuple!["stowe", 7000])?;
    println!("{db}");

    let key = KeyConstraint::new("Employee", ["Name"]);
    let sigma = ConstraintSet::from_iter([key.clone()]);

    // Repair counting: product of key-group sizes (poly time).
    println!(
        "Number of repairs (product formula): {}",
        count_key_repairs(&db, &key)?
    );

    // Example 3.4: the rewriting is exactly the SQL pattern from the paper —
    //   SELECT Name, Salary FROM Employee e WHERE NOT EXISTS (
    //     SELECT * FROM Employee e2 WHERE e2.Name = e.Name AND e2.Salary <> e.Salary)
    let q1 = parse_query("Q(x, y) :- Employee(x, y)")?;
    let keys = [("Employee".to_string(), vec![0usize])].into();
    let rewritten = rewrite_key_query(&q1, &keys)?;
    println!("\nCertain rows via the FO rewriting:");
    for t in eval_fo(&db, &rewritten, NullSemantics::Structural) {
        println!("  {t}");
    }
    // The same rewriting, rendered as the SQL the paper prints — ready to
    // run on any DBMS against the original, inconsistent table:
    println!(
        "\nAs SQL:\n  {}",
        inconsistent_db::query::fo_to_sql(&rewritten, &db)?
    );

    // The attack-graph test: a two-atom chain query is rewritable…
    let chain = parse_query("Q(x) :- Employee(x, y), Bonus(y, z)")?;
    let keys2 = [
        ("Employee".to_string(), vec![0usize]),
        ("Bonus".to_string(), vec![0usize]),
    ]
    .into();
    match rewrite_key_query(&chain, &keys2) {
        Ok(_) => println!("\nchain query: attack graph acyclic → FO-rewritable ✓"),
        Err(e) => println!("\nchain query unexpectedly not rewritable: {e}"),
    }

    // …but the classic cyclic query is coNP-complete, and the library says so.
    let cyc = parse_query("Q() :- Pred(x, y), Succ(y, x)")?;
    let keys3 = [
        ("Pred".to_string(), vec![0usize]),
        ("Succ".to_string(), vec![0usize]),
    ]
    .into();
    match rewrite_key_query(&cyc, &keys3) {
        Err(KeyRewriteError::CyclicAttackGraph { .. }) => {
            println!("cyclic query: attack graph cyclic → fall back to repair enumeration ✓")
        }
        other => println!("unexpected: {other:?}"),
    }

    // Aggregate CQA with range semantics [5]: the certain SUM is an interval.
    let body = parse_query("Q() :- Employee(n, s)")?;
    let s = body.vars.lookup("s").expect("var s");
    let sum = AggregateQuery {
        body,
        group_by: vec![],
        target: Some(s),
        op: AggOp::Sum,
    };
    if let Some((lo, hi)) = consistent_aggregate_range(&db, &sigma, &sum, &RepairClass::Subset)? {
        println!("\nSUM(Salary) over all repairs lies in [{lo}, {hi}]");
    }

    // Possible vs certain answers.
    let q_sal = UnionQuery::single(parse_query("Q(y) :- Employee('page', y)")?);
    let certain = consistent_answers(&db, &sigma, &q_sal, &RepairClass::Subset)?;
    let possible = possible_answers(&db, &sigma, &q_sal, &RepairClass::Subset)?;
    println!(
        "\npage's salary — certain: {:?}, possible: {:?}",
        certain.iter().map(|t| t.to_string()).collect::<Vec<_>>(),
        possible.iter().map(|t| t.to_string()).collect::<Vec<_>>()
    );

    Ok(())
}
