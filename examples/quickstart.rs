//! Quickstart: an inconsistent database, its repairs, and consistent query
//! answering — the core loop of the paper in ~60 lines.
//!
//! Run with `cargo run --example quickstart`.

use inconsistent_db::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A database that violates a key constraint (Example 3.3).
    let mut db = Database::new();
    db.create_relation(RelationSchema::new("Employee", ["Name", "Salary"]))?;
    db.insert("Employee", tuple!["page", 5000])?;
    db.insert("Employee", tuple!["page", 8000])?;
    db.insert("Employee", tuple!["smith", 3000])?;
    db.insert("Employee", tuple!["stowe", 7000])?;

    let sigma = ConstraintSet::from_iter([KeyConstraint::new("Employee", ["Name"])]);
    println!("The instance:\n{db}");
    println!("Consistent? {}", sigma.is_satisfied(&db)?);
    println!(
        "Inconsistency degree: {:.3}\n",
        inconsistency_degree(&db, &sigma)?
    );

    // 2. Enumerate the S-repairs.
    let repairs = s_repairs(&db, &sigma)?;
    println!("{} S-repairs:", repairs.len());
    for r in &repairs {
        println!("  {r}");
    }

    // 3. Consistent (certain) answers: the data that persists across all
    //    repairs.
    let q_all = UnionQuery::single(parse_query("Q(x, y) :- Employee(x, y)")?);
    let certain = consistent_answers(&db, &sigma, &q_all, &RepairClass::Subset)?;
    println!("\nCons(Q1) — full rows certain in every repair:");
    for t in &certain {
        println!("  {t}");
    }

    // The projection keeps `page`: every repair has *some* salary for page.
    let q_names = UnionQuery::single(parse_query("Q(x) :- Employee(x, y)")?);
    let names = consistent_answers(&db, &sigma, &q_names, &RepairClass::Subset)?;
    println!("\nCons(Q2) — names certain in every repair:");
    for t in &names {
        println!("  {t}");
    }

    // 4. The same answers without touching any repair: the certain
    //    first-order rewriting (Example 3.4 / Koutris–Wijsen).
    let keys = [("Employee".to_string(), vec![0usize])].into();
    let rewritten = rewrite_key_query(&parse_query("Q(x, y) :- Employee(x, y)")?, &keys)?;
    let via_rewriting = eval_fo(&db, &rewritten, NullSemantics::Structural);
    assert_eq!(via_rewriting, certain);
    println!("\nFO rewriting evaluated on the *inconsistent* instance agrees: ✓");

    Ok(())
}
