//! Answer-set programming for repairs (§3.3 of the paper): the repair
//! program of Example 3.5, its stable models, and the weak-constraint
//! C-repair selection of Example 4.2 — all on the bundled ASP engine.
//!
//! Run with `cargo run --example repair_programs`.

use inconsistent_db::asp::{stable_models, RepairProgram};
use inconsistent_db::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The instance of Example 3.5 (tids ι1–ι6 as in the paper).
    let mut db = Database::new();
    db.create_relation(RelationSchema::new("R", ["A", "B"]))?;
    db.create_relation(RelationSchema::new("S", ["A"]))?;
    db.insert("R", tuple!["a4", "a3"])?; // ι1
    db.insert("R", tuple!["a2", "a1"])?; // ι2
    db.insert("R", tuple!["a3", "a3"])?; // ι3
    db.insert("S", tuple!["a4"])?; // ι4
    db.insert("S", tuple!["a2"])?; // ι5
    db.insert("S", tuple!["a3"])?; // ι6
    println!("{db}");

    // κ: ¬∃x∃y (S(x) ∧ R(x, y) ∧ S(y)).
    let kappa = DenialConstraint::parse("kappa", "S(x), R(x, y), S(y)")?;
    let sigma = ConstraintSet::from_iter([kappa]);

    // Compile the repair program (disjunctive deletion rules + inertia).
    let rp = RepairProgram::build(&db, &sigma)?;
    println!("The generated repair program:\n\n{}", rp.program);

    // Its stable models are the three S-repairs.
    let ground = rp.ground()?;
    println!(
        "Grounding: {} atoms, {} rules.",
        ground.atom_count(),
        ground.rules.len()
    );
    let models = stable_models(&ground);
    println!(
        "\n{} stable models = {} S-repairs:",
        models.len(),
        models.len()
    );
    for m in &models {
        let repair = rp.read_model(&ground, m);
        let deleted: Vec<String> = repair.deleted.iter().map(|t| t.to_string()).collect();
        println!("  deletes {{{}}}", deleted.join(", "));
    }

    // Cross-check against the direct repair engine.
    let direct = s_repairs(&db, &sigma)?;
    assert_eq!(models.len(), direct.len());
    println!("\nDirect engine agrees: {} repairs. ✓", direct.len());

    // Example 4.2: weak constraints single out the C-repair (delete ι6 only).
    let mut rp_c = RepairProgram::build(&db, &sigma)?;
    rp_c.add_c_repair_weak_constraints();
    let c_models = rp_c.c_repair_models()?;
    println!("\nWith the weak constraints of Example 4.2, only the C-repair survives:");
    for m in &c_models {
        let deleted: Vec<String> = m.deleted.iter().map(|t| t.to_string()).collect();
        println!("  deletes {{{}}}", deleted.join(", "));
    }

    // The engine is a general ASP solver, too.
    let program = parse_asp(
        "node(1).\n\
         node(2).\n\
         node(3).\n\
         edge(1, 2).\n\
         edge(2, 3).\n\
         red(x) | green(x) :- node(x).\n\
         :- edge(x, y), red(x), red(y).\n\
         :- edge(x, y), green(x), green(y).",
    )?;
    let g = inconsistent_db::asp::ground(&program)
        .map_err(inconsistent_db::relation::RelationError::Parse)?;
    let colorings = stable_models(&g);
    println!(
        "\nBonus: 2-colourings of a 3-path via the same solver: {}",
        colorings.len()
    );

    Ok(())
}
