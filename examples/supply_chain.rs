//! The paper's running supply-chain example, start to finish:
//! Example 2.1 (the inconsistent instance), Example 2.2 (residue rewriting),
//! Examples 3.1–3.2 (S-repairs and consistent answers), and Example 4.3
//! (null-based tuple repairs for the existential variant).
//!
//! Run with `cargo run --example supply_chain`.

use inconsistent_db::core::null_tuple_repairs;
use inconsistent_db::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Example 2.1: Supply/Articles with an inclusion dependency -------
    let mut db = Database::new();
    db.create_relation(RelationSchema::new(
        "Supply",
        ["Company", "Receiver", "Item"],
    ))?;
    db.create_relation(RelationSchema::new("Articles", ["Item"]))?;
    db.insert("Supply", tuple!["C1", "R1", "I1"])?;
    db.insert("Supply", tuple!["C2", "R2", "I2"])?;
    db.insert("Supply", tuple!["C2", "R1", "I3"])?;
    db.insert("Articles", tuple!["I1"])?;
    db.insert("Articles", tuple!["I2"])?;
    println!("{db}");

    let id = Tgd::parse("ID", "Articles(z) :- Supply(x, y, z)")?;
    let sigma = ConstraintSet::from_iter([id]);
    println!("D |= ID?  {}\n", sigma.is_satisfied(&db)?);

    // --- Example 2.2: the residue rewriting -------------------------------
    let q = parse_query("Q(z) :- Supply(x, y, z)")?;
    let rewriting = residue_rewrite(&q, &sigma)?;
    println!(
        "Residue rewriting appended {} residue(s); evaluating it on the",
        rewriting.residues_applied
    );
    println!("inconsistent instance gives the consistent answers:");
    for t in eval_fo(&db, &rewriting.query, NullSemantics::Structural) {
        println!("  {t}");
    }

    // --- Examples 3.1–3.2: repairs and Cons(Q, D, {ID}) -------------------
    let repairs = s_repairs(&db, &sigma)?;
    println!(
        "\n{} S-repairs (delete the bad tuple, or insert Articles(I3)):",
        repairs.len()
    );
    for r in &repairs {
        println!("  {r}");
    }
    let cons = consistent_answers(&db, &sigma, &UnionQuery::single(q), &RepairClass::Subset)?;
    println!(
        "\nCons(Q, D, {{ID}}) = {:?}",
        cons.iter().map(|t| t.to_string()).collect::<Vec<_>>()
    );

    // --- Example 4.3: the existential variant with Articles(Item, Cost) ---
    let mut db2 = Database::new();
    db2.create_relation(RelationSchema::new(
        "Supply",
        ["Company", "Receiver", "Item"],
    ))?;
    db2.create_relation(RelationSchema::new("Articles", ["Item", "Cost"]))?;
    db2.insert("Supply", tuple!["C1", "R1", "I1"])?;
    db2.insert("Supply", tuple!["C2", "R2", "I2"])?;
    db2.insert("Supply", tuple!["C2", "R1", "I3"])?;
    db2.insert("Articles", tuple!["I1", 50])?;
    db2.insert("Articles", tuple!["I2", 30])?;
    let id_prime = Tgd::parse("ID'", "Articles(z, v) :- Supply(x, y, z)")?;
    let sigma2 = ConstraintSet::from_iter([id_prime]);

    println!("\nExample 4.3 — ID' has an existential head; its repairs:");
    for r in null_tuple_repairs(&db2, &sigma2)? {
        println!("  [{:?}] {}", r.style, r.repair);
    }
    println!("\nThe insertion repair pads the unknown cost with NULL, which");
    println!("satisfies no join — exactly SQL's NULL semantics.");

    Ok(())
}
