//! Virtual data integration (§5 of the paper): the two-university mediator
//! of Example 5.1 under GAV and LAV, and the global-constraint CQA of
//! Example 5.2.
//!
//! Run with `cargo run --example university_integration`.

use inconsistent_db::prelude::*;

fn sources() -> Result<Database, Box<dyn std::error::Error>> {
    let mut db = Database::new();
    db.create_relation(RelationSchema::new("CUstds", ["Number", "Name"]))?;
    db.create_relation(RelationSchema::new("SpecCU", ["Number", "Field"]))?;
    db.create_relation(RelationSchema::new("OUstds", ["Number", "Name"]))?;
    db.create_relation(RelationSchema::new("SpecOU", ["Number", "Field"]))?;
    db.insert("CUstds", tuple![101, "john"])?;
    db.insert("CUstds", tuple![102, "mary"])?;
    db.insert("SpecCU", tuple![101, "alg"])?;
    db.insert("SpecCU", tuple![102, "ai"])?;
    db.insert("OUstds", tuple![103, "claire"])?;
    db.insert("OUstds", tuple![104, "peter"])?;
    db.insert("SpecOU", tuple![103, "db"])?;
    Ok(db)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- GAV (Example 5.1): global Stds defined over the sources ----------
    let views = parse_program(
        "Stds(x, y, 'cu', z) :- CUstds(x, y), SpecCU(x, z).\n\
         Stds(x, y, 'ou', z) :- OUstds(x, y), SpecOU(x, z).",
    )?;
    let mediator = GavMediator::new(sources()?, views.clone());
    let global = mediator.retrieved_global_instance()?;
    println!("GAV retrieved global instance:\n{global}");

    let q = UnionQuery::single(parse_query("Q(n, f) :- Stds(x, n, u, f)")?);
    println!("Students with their fields, through the mediator:");
    for t in mediator.answer(&q)? {
        println!("  {t}");
    }

    // --- LAV: sources as views over the global schema ---------------------
    let lav = LavMediator::new(
        sources()?,
        vec![RelationSchema::new(
            "Stds",
            ["Number", "Name", "Univ", "Field"],
        )],
        vec![
            LavMapping::parse("CUstds(x, y) :- Stds(x, y, 'cu', z)")?,
            LavMapping::parse("OUstds(x, y) :- Stds(x, y, 'ou', z)")?,
        ],
    );
    let canonical = lav.canonical_global_instance()?;
    println!("\nLAV canonical instance (skolem nulls for the unknown fields):\n{canonical}");
    let names = lav.certain_answers(&UnionQuery::single(parse_query(
        "Q(n) :- Stds(x, n, u, z)",
    )?))?;
    println!(
        "Certain names under LAV: {:?}",
        names.iter().map(|t| t.to_string()).collect::<Vec<_>>()
    );

    // --- Example 5.2: a global FD the mediator cannot enforce -------------
    let mut dirty = sources()?;
    dirty.insert("OUstds", tuple![101, "sue"])?;
    dirty.insert("SpecOU", tuple![101, "cs"])?; // makes the conflict visible
    let system = GlobalSystem::new(
        GavMediator::new(dirty, views),
        vec![RelationSchema::new(
            "Stds",
            ["Number", "Name", "Univ", "Field"],
        )],
        ConstraintSet::from_iter([FunctionalDependency::new("Stds", ["Number"], ["Name"])]),
    );
    println!(
        "\nWith OU's (101, sue), is the global instance consistent? {}",
        system.is_globally_consistent()?
    );
    let q2 = UnionQuery::single(parse_query("Q(x, y) :- Stds(x, y, u, z)")?);
    let cons = system.consistent_answers(&q2, &RepairClass::Subset)?;
    println!("Consistent global answers (student 101 is ambiguous, so absent):");
    for t in &cons {
        println!("  {t}");
    }

    Ok(())
}
