#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # inconsistent-db
//!
//! A complete, from-scratch Rust implementation of the systems surveyed in
//! **Leopoldo Bertossi, "Database Repairs and Consistent Query Answering:
//! Origins and Further Developments" (PODS 2019)**:
//!
//! * a relational in-memory database substrate with global tuple ids and
//!   SQL-style nulls ([`relation`]);
//! * conjunctive/first-order/Datalog/aggregate query evaluation ([`query`]);
//! * integrity constraints — denial constraints, FDs, keys, CFDs, inclusion
//!   dependencies — with violation detection and conflict hyper-graphs
//!   ([`constraints`]);
//! * static program analysis: stratification, safety diagnostics, and
//!   constraint/query lints with stable diagnostic codes ([`analysis`]);
//! * repairs (S-, C-, null-based tuple- and attribute-level) and consistent
//!   query answering, with residue and attack-graph FO rewritings
//!   ([`core`]);
//! * an answer-set programming engine and repair programs ([`asp`]);
//! * causality: actual causes, responsibility, MRACs, attribute-level
//!   causes, causality under ICs ([`causality`]);
//! * virtual data integration with GAV/LAV mediators and global CQA
//!   ([`integration`]);
//! * data cleaning: cost-based CFD repair, entity resolution, quality
//!   answers ([`cleaning`]).
//!
//! ## Quickstart
//!
//! ```
//! use inconsistent_db::prelude::*;
//!
//! // An inconsistent payroll (Example 3.3 of the paper).
//! let mut db = Database::new();
//! db.create_relation(RelationSchema::new("Employee", ["Name", "Salary"])).unwrap();
//! db.insert("Employee", tuple!["page", 5000]).unwrap();
//! db.insert("Employee", tuple!["page", 8000]).unwrap();
//! db.insert("Employee", tuple!["smith", 3000]).unwrap();
//! let sigma = ConstraintSet::from_iter([KeyConstraint::new("Employee", ["Name"])]);
//!
//! // Two repairs; smith is the only certain full row.
//! assert_eq!(s_repairs(&db, &sigma).unwrap().len(), 2);
//! let q = UnionQuery::single(parse_query("Q(x, y) :- Employee(x, y)").unwrap());
//! let certain = consistent_answers(&db, &sigma, &q, &RepairClass::Subset).unwrap();
//! assert_eq!(certain, [tuple!["smith", 3000]].into());
//! ```

pub use cqa_analysis as analysis;
pub use cqa_asp as asp;
pub use cqa_causality as causality;
pub use cqa_cleaning as cleaning;
pub use cqa_constraints as constraints;
pub use cqa_core as core;
pub use cqa_integration as integration;
pub use cqa_query as query;
pub use cqa_relation as relation;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use cqa_analysis::{lint_constraints, lint_query, DiagCode, Diagnostic, ProgramClass};
    pub use cqa_asp::{
        analyze_ground, analyze_program, parse_asp, stable_models, AspProgram, RepairProgram,
    };
    pub use cqa_causality::{
        actual_causes, attribute_causes, causes_under_ics, causes_via_asp, causes_via_repairs,
        most_responsible_causes, Cause,
    };
    pub use cqa_cleaning::{clean, deduplicate, CleaningSpec, CostModel, MatchingDependency};
    pub use cqa_constraints::{
        ConditionalFd, ConflictHypergraph, Constraint, ConstraintSet, DenialConstraint,
        FunctionalDependency, InclusionDependency, KeyConstraint, Tgd,
    };
    pub use cqa_core::{
        attribute_repairs, c_repairs, consistent_answers, consistent_core, inconsistency_degree,
        is_repair, possible_answers, residue_rewrite, rewrite_key_query, s_repairs, Repair,
        RepairClass, RepairSemantics,
    };
    pub use cqa_integration::{GavMediator, GlobalSystem, LavMapping, LavMediator};
    pub use cqa_query::{
        eval_cq, eval_fo, eval_ucq, parse_fo, parse_program, parse_query, parse_ucq,
        ConjunctiveQuery, FoQuery, NullSemantics, Program, UnionQuery,
    };
    pub use cqa_relation::{tuple, Database, RelationSchema, Tid, Tuple, Value};
}
