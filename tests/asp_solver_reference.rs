//! Brute-force cross-validation of the ASP stable-model solver.
//!
//! The solver (`cqa-asp::solve`) is the most safety-critical component in
//! the workspace: repairs, C-repairs and causality all route through it.
//! This suite re-implements the *definition* of a stable model naively —
//! enumerate every subset of ground atoms, check classical modelhood of the
//! GL-reduct and minimality by enumerating every proper subset — and
//! requires the solver to agree on randomized ground programs.

use inconsistent_db::asp::{ground, parse_asp, stable_models, AtomId, GroundProgram};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Naive stable-model enumeration straight from the definition.
fn brute_force_stable_models(g: &GroundProgram) -> Vec<BTreeSet<AtomId>> {
    let n = g.atom_count();
    assert!(
        n <= 16,
        "brute force is exponential; keep test programs small"
    );
    let atoms: Vec<AtomId> = (0..n as u32).map(AtomId).collect();
    let mut models = Vec::new();
    for mask in 0u32..(1 << n) {
        let m: BTreeSet<AtomId> = atoms
            .iter()
            .copied()
            .filter(|a| mask & (1 << a.0) != 0)
            .collect();
        if is_stable(g, &m) {
            models.push(m);
        }
    }
    models
}

/// Is `m` a minimal classical model of the reduct `gᵐ`?
fn is_stable(g: &GroundProgram, m: &BTreeSet<AtomId>) -> bool {
    // Reduct: drop rules with a negative literal in m; strip negatives.
    let reduct: Vec<(&[AtomId], &[AtomId])> = g
        .rules
        .iter()
        .filter(|r| r.neg.iter().all(|a| !m.contains(a)))
        .map(|r| (r.pos.as_slice(), r.head.as_slice()))
        .collect();
    let satisfies = |s: &BTreeSet<AtomId>| -> bool {
        reduct.iter().all(|(pos, head)| {
            !pos.iter().all(|a| s.contains(a)) || head.iter().any(|h| s.contains(h))
        })
    };
    if !satisfies(m) {
        return false;
    }
    // Minimality: no proper subset of m is a model of the reduct.
    let members: Vec<AtomId> = m.iter().copied().collect();
    let k = members.len();
    if k == 0 {
        return true;
    }
    assert!(k <= 16);
    for mask in 0u32..((1 << k) - 1) {
        let s: BTreeSet<AtomId> = members
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, a)| *a)
            .collect();
        if satisfies(&s) {
            return false;
        }
    }
    true
}

fn check_program(src: &str) {
    let p = parse_asp(src).unwrap();
    let g = ground(&p).unwrap();
    let solver: BTreeSet<BTreeSet<AtomId>> = stable_models(&g).into_iter().collect();
    let brute: BTreeSet<BTreeSet<AtomId>> = brute_force_stable_models(&g).into_iter().collect();
    assert_eq!(solver, brute, "disagreement on program:\n{src}");
}

#[test]
fn classic_textbook_programs_match_brute_force() {
    for src in [
        "a :- not b().\nb :- not a().",
        "a :- not a().",
        "a | b.\nc :- a().\nc :- b().",
        "a | b | c.\n:- a().",
        "a :- b().\nb :- a().",
        "a.\nb :- a(), not c().",
        "a | b.\na :- b().",
        "p.\nq :- p(), not r().\nr :- p(), not q().",
        ":- not a().\na | b.",
        "a | b.\nb | c.\n:- a(), c().",
    ] {
        check_program(src);
    }
}

/// Generate random ground disjunctive programs over 5 propositional atoms.
fn arb_program() -> impl Strategy<Value = String> {
    let atom = prop_oneof![Just("a"), Just("b"), Just("c"), Just("d"), Just("e")];
    let rule = (
        proptest::collection::vec(atom.clone(), 0..3), // head
        proptest::collection::vec(atom.clone(), 0..3), // pos body
        proptest::collection::vec(atom, 0..2),         // neg body
    )
        .prop_map(|(head, pos, neg)| {
            let mut s = String::new();
            if head.is_empty() && pos.is_empty() && neg.is_empty() {
                return "a :- a().".to_string(); // harmless placeholder
            }
            s.push_str(&head.join(" | "));
            let mut body: Vec<String> = pos.iter().map(|p| format!("{p}()")).collect();
            body.extend(neg.iter().map(|n| format!("not {n}()")));
            if !body.is_empty() {
                if !head.is_empty() {
                    s.push(' ');
                }
                s.push_str(":- ");
                s.push_str(&body.join(", "));
            }
            s.push('.');
            s
        });
    proptest::collection::vec(rule, 1..7).prop_map(|rules| rules.join("\n"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn solver_matches_brute_force_on_random_programs(src in arb_program()) {
        let p = parse_asp(&src).unwrap();
        let g = ground(&p).unwrap();
        prop_assume!(g.atom_count() <= 10);
        let solver: BTreeSet<BTreeSet<AtomId>> = stable_models(&g).into_iter().collect();
        let brute: BTreeSet<BTreeSet<AtomId>> =
            brute_force_stable_models(&g).into_iter().collect();
        prop_assert_eq!(solver, brute, "program:\n{}", src);
    }
}
