//! The anytime-soundness contract, property-tested: whatever the budget, a
//! `Truncated` result is never *wrong* — it brackets the exact answer from
//! the safe side. Concretely, on denial-class instances:
//!
//! * truncated certain answers ⊆ exact certain answers (under-approximation)
//! * truncated possible answers ⊇ exact possible answers (over-approximation,
//!   deletion-only repairs + monotone query)
//! * truncated S-repairs, minimal hitting sets, stable models, and actual
//!   causes are each a subset of their exact families
//! * an `Exact` outcome equals the unbudgeted result bit for bit
//!
//! Budgets are drawn randomly, so the properties cover the whole range from
//! "dies on the first step" to "never fires".

use cqa_constraints::{ConstraintSet, KeyConstraint};
use cqa_core::{RepairClass, RepairOptions};
use cqa_exec::Budget;
use cqa_query::{parse_query, UnionQuery};
use cqa_relation::{tuple, Database, RelationSchema};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

/// A `T(K, V)` instance with one key-conflict pair per group.
fn key_instance(groups: &[u8]) -> (Database, ConstraintSet) {
    let mut db = Database::new();
    db.create_relation(RelationSchema::new("T", ["K", "V"]))
        .unwrap();
    for (k, &size) in groups.iter().enumerate() {
        for v in 0..size.max(1) {
            db.insert("T", tuple![k as i64, v as i64]).unwrap();
        }
    }
    let sigma = ConstraintSet::from_iter([KeyConstraint::new("T", ["K"])]);
    (db, sigma)
}

fn query() -> UnionQuery {
    UnionQuery::single(parse_query("Q(k, v) :- T(k, v)").unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn truncated_certain_answers_are_a_sound_subset(
        groups in proptest::collection::vec(1u8..4, 1..6),
        steps in 1u64..500,
    ) {
        let (db, sigma) = key_instance(&groups);
        let q = query();
        let class = RepairClass::Subset;
        let exact = cqa_core::consistent_answers(&db, &sigma, &q, &class).unwrap();
        let budget = Budget::steps(steps);
        let got = cqa_core::consistent_answers_budgeted(&db, &sigma, &q, &class, &budget)
            .unwrap();
        if got.is_exact() {
            prop_assert_eq!(got.into_value(), exact);
        } else {
            for t in got.value() {
                prop_assert!(exact.contains(t), "unsound certain answer {t}");
            }
        }
    }

    #[test]
    fn truncated_possible_answers_are_a_sound_superset(
        groups in proptest::collection::vec(1u8..4, 1..6),
        steps in 1u64..500,
    ) {
        let (db, sigma) = key_instance(&groups);
        let q = query();
        let class = RepairClass::Subset;
        let exact = cqa_core::possible_answers(&db, &sigma, &q, &class).unwrap();
        let budget = Budget::steps(steps);
        let got = cqa_core::possible_answers_budgeted(&db, &sigma, &q, &class, &budget)
            .unwrap();
        if got.is_exact() {
            prop_assert_eq!(got.into_value(), exact);
        } else {
            // Key constraints are deletion-only and the query is monotone:
            // the truncated fallback must cover every possible answer.
            for t in &exact {
                prop_assert!(got.value().contains(t), "missing possible answer {t}");
            }
        }
    }

    #[test]
    fn truncated_repairs_are_a_subset_of_the_exact_family(
        groups in proptest::collection::vec(1u8..4, 1..6),
        steps in 1u64..500,
    ) {
        let (db, sigma) = key_instance(&groups);
        let exact: BTreeSet<_> = cqa_core::s_repairs(&db, &sigma)
            .unwrap()
            .into_iter()
            .map(|r| (r.deleted, r.inserted))
            .collect();
        let budget = Budget::steps(steps);
        let got = cqa_core::s_repairs_budgeted(
            &Arc::new(db),
            &sigma,
            &RepairOptions::default(),
            &budget,
        )
        .unwrap();
        let got_set: BTreeSet<_> = got
            .value()
            .iter()
            .map(|r| (r.deleted.clone(), r.inserted.clone()))
            .collect();
        prop_assert!(got_set.is_subset(&exact), "truncation invented a repair");
        if got.is_exact() {
            prop_assert_eq!(got_set, exact);
        }
    }

    #[test]
    fn truncated_hitting_sets_are_a_subset(
        groups in proptest::collection::vec(2u8..4, 1..6),
        steps in 1u64..300,
    ) {
        let (db, sigma) = key_instance(&groups);
        let graph = sigma.conflict_hypergraph(&db).unwrap();
        let exact: BTreeSet<_> = graph.minimal_hitting_sets(None).into_iter().collect();
        let budget = Budget::steps(steps);
        let got = graph.minimal_hitting_sets_budgeted(None, &budget);
        let got_set: BTreeSet<_> = got.value().iter().cloned().collect();
        prop_assert!(got_set.is_subset(&exact));
        if got.is_exact() {
            prop_assert_eq!(got_set, exact);
        }
    }

    #[test]
    fn truncated_stable_models_are_a_subset(
        groups in proptest::collection::vec(2u8..3, 1..5),
        steps in 1u64..300,
    ) {
        let (db, sigma) = key_instance(&groups);
        let rp = cqa_asp::RepairProgram::build(&db, &sigma).unwrap();
        let g = cqa_asp::ground(&rp.program).unwrap();
        let exact: BTreeSet<_> = cqa_asp::stable_models_search(&g).into_iter().collect();
        let budget = Budget::steps(steps);
        let got = cqa_asp::stable_models_search_budgeted(&g, None, &budget);
        let got_set: BTreeSet<_> = got.value().iter().cloned().collect();
        prop_assert!(got_set.is_subset(&exact), "truncation invented a stable model");
        if got.is_exact() {
            prop_assert_eq!(got_set, exact);
        }
    }

    #[test]
    fn truncated_causes_are_a_subset_with_lower_bound_responsibility(
        groups in proptest::collection::vec(2u8..4, 1..5),
        steps in 1u64..300,
    ) {
        let (db, _) = key_instance(&groups);
        let q = UnionQuery::single(
            parse_query("Q() :- T(x, y), T(x, z), y != z").unwrap(),
        );
        let exact = cqa_causality::actual_causes(&db, &q);
        let budget = Budget::steps(steps);
        let got = cqa_causality::actual_causes_budgeted(&db, &q, &budget);
        for c in got.value() {
            let reference = exact.iter().find(|e| e.tid == c.tid);
            prop_assert!(reference.is_some(), "truncation invented a cause {:?}", c.tid);
            if let Some(e) = reference {
                prop_assert!(
                    c.responsibility <= e.responsibility + 1e-9,
                    "responsibility above the exact value"
                );
            }
        }
        if got.is_exact() {
            prop_assert_eq!(got.into_value(), exact);
        }
    }
}
