//! Conflict-component factorization equivalence, property-tested: the
//! factored code paths (per-component hitting-set search, lazy cross-product
//! expansion, component-wise certain/possible folds, component-restricted
//! contingency search) must be *byte-identical* to the monolithic ones on
//! random multi-component instances — at 1 and 4 threads, and sound under
//! random step budgets. The monolithic oracle is obtained by forcing the
//! legacy sequential search (a step budget disables the factored gate) or by
//! brute force over all deletion subsets.

use cqa_constraints::{ConstraintSet, KeyConstraint};
use cqa_core::{
    consistent_answers, consistent_answers_factored_budgeted, factored_c_repairs_budgeted,
    factored_s_repairs_budgeted, possible_answers, possible_answers_factored_budgeted, RepairClass,
    RepairOptions,
};
use cqa_exec::{with_threads, Budget};
use cqa_query::{holds_ucq, parse_query, NullSemantics, UnionQuery};
use cqa_relation::{tuple, Database, DeltaView, RelationSchema, Tid};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

/// A `T(K, V)` instance with key-group conflicts under `key T(K)`: every key
/// group of size ≥ 2 becomes one connected component of the conflict graph,
/// so `groups` with two or more such entries exercises the factored paths.
fn key_instance(groups: &[u8]) -> (Database, ConstraintSet) {
    let mut db = Database::new();
    db.create_relation(RelationSchema::new("T", ["K", "V"]))
        .unwrap();
    for (k, &size) in groups.iter().enumerate() {
        for v in 0..size.max(1) {
            db.insert("T", tuple![k as i64, v as i64]).unwrap();
        }
    }
    let sigma = ConstraintSet::from_iter([KeyConstraint::new("T", ["K"])]);
    (db, sigma)
}

/// The comparable core of a repair set: sorted `(deleted, inserted)` deltas.
type Deltas = Vec<(BTreeSet<Tid>, usize)>;

fn deltas(repairs: Vec<cqa_core::Repair>) -> Deltas {
    let mut out: Deltas = repairs
        .into_iter()
        .map(|r| (r.deleted, r.inserted.len()))
        .collect();
    out.sort();
    out
}

/// The monolithic S-repair oracle: a generous *step* budget forces the
/// sequential depth-first search, bypassing the factored gate entirely.
fn monolithic_s_repairs(base: &Arc<Database>, sigma: &ConstraintSet) -> Deltas {
    let budget = Budget::steps(1_000_000);
    let out =
        cqa_core::s_repairs_budgeted(base, sigma, &RepairOptions::default(), &budget).unwrap();
    assert!(
        out.truncation().is_none(),
        "oracle budget too small for the sequential search"
    );
    deltas(out.into_value())
}

fn monolithic_c_repairs(base: &Arc<Database>, sigma: &ConstraintSet) -> Deltas {
    let budget = Budget::steps(1_000_000);
    let out =
        cqa_core::c_repairs_budgeted(base, sigma, &RepairOptions::default(), &budget).unwrap();
    assert!(out.truncation().is_none());
    deltas(out.into_value())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Factored enumeration expands to exactly the sequential repair sets,
    /// at 1 and 4 threads.
    #[test]
    fn factored_repair_sets_match_the_sequential_search(
        groups in proptest::collection::vec(1u8..4, 1..6),
    ) {
        let (db, sigma) = key_instance(&groups);
        let base = Arc::new(db);
        let mono_s = monolithic_s_repairs(&base, &sigma);
        let mono_c = monolithic_c_repairs(&base, &sigma);
        for threads in [1, 4] {
            let fact_s = with_threads(threads, || {
                let out = factored_s_repairs_budgeted(&base, &sigma, &Budget::unlimited())
                    .unwrap()
                    .expect("key constraints are denial-class");
                prop_assert!(out.truncation().is_none());
                Ok(deltas(out.into_value().expand().unwrap()))
            })?;
            prop_assert_eq!(&fact_s, &mono_s, "S-repairs at {} thread(s)", threads);
            let fact_c = with_threads(threads, || {
                let out = factored_c_repairs_budgeted(&base, &sigma, &Budget::unlimited())
                    .unwrap()
                    .expect("key constraints are denial-class");
                prop_assert!(out.truncation().is_none());
                Ok(deltas(out.into_value().expand().unwrap()))
            })?;
            prop_assert_eq!(&fact_c, &mono_c, "C-repairs at {} thread(s)", threads);
        }
    }

    /// Truncated factored enumeration stays deterministic across thread
    /// counts and never invents repairs: the partial expansion is a subset of
    /// the full sequential repair set.
    #[test]
    fn truncated_factored_enumeration_is_deterministic_and_sound(
        groups in proptest::collection::vec(2u8..4, 2..5),
        steps in 1u64..200,
    ) {
        let (db, sigma) = key_instance(&groups);
        let base = Arc::new(db);
        let run = |threads: usize| {
            with_threads(threads, || {
                let budget = Budget::steps(steps);
                let out = factored_s_repairs_budgeted(&base, &sigma, &budget)
                    .unwrap()
                    .expect("key constraints are denial-class");
                let truncated = out.truncation().is_some();
                (truncated, deltas(out.into_value().expand().unwrap()))
            })
        };
        let (a, b) = (run(1), run(4));
        prop_assert_eq!(&a, &b);
        let mono = monolithic_s_repairs(&base, &sigma);
        let mono: BTreeSet<_> = mono.into_iter().collect();
        for delta in &a.1 {
            prop_assert!(mono.contains(delta), "truncated expansion invented {:?}", delta);
        }
        if !a.0 {
            prop_assert_eq!(a.1.len(), mono.len());
        }
    }

    /// The component-wise certain/possible folds agree with the monolithic
    /// fold over the full repair set, for both repair classes, for
    /// per-component *and* spanning (self-join) queries, at 1 and 4 threads.
    #[test]
    fn factored_cqa_matches_the_monolithic_fold(
        groups in proptest::collection::vec(1u8..4, 1..6),
    ) {
        let (db, sigma) = key_instance(&groups);
        let queries = [
            UnionQuery::single(parse_query("Q(k, v) :- T(k, v)").unwrap()),
            UnionQuery::single(parse_query("Q(k) :- T(k, v)").unwrap()),
            // Joins on V across keys: witnesses span components, which must
            // route the fold through the lazy cross-product.
            UnionQuery::single(parse_query("Q(x, z) :- T(x, y), T(z, y)").unwrap()),
        ];
        for class in [RepairClass::Subset, RepairClass::Cardinality] {
            for q in &queries {
                let mono_certain = consistent_answers(&db, &sigma, q, &class).unwrap();
                let mono_possible = possible_answers(&db, &sigma, q, &class).unwrap();
                for threads in [1, 4] {
                    let (certain, possible) = with_threads(threads, || {
                        let c = consistent_answers_factored_budgeted(
                            &db, &sigma, q, &class, &Budget::unlimited(),
                        )
                        .unwrap()
                        .expect("denial-class, deletion-based");
                        let p = possible_answers_factored_budgeted(
                            &db, &sigma, q, &class, &Budget::unlimited(),
                        )
                        .unwrap()
                        .expect("denial-class, deletion-based");
                        prop_assert!(c.truncation().is_none());
                        prop_assert!(p.truncation().is_none());
                        Ok((c.into_value().0, p.into_value().0))
                    })?;
                    prop_assert_eq!(&certain, &mono_certain);
                    prop_assert_eq!(&possible, &mono_possible);
                }
            }
        }
    }

    /// Under a random step budget the factored folds stay deterministic
    /// across thread counts, and degrade to the documented sound bounds for
    /// monotone queries: truncated certain ⊆ exact certain and truncated
    /// possible ⊇ exact possible.
    #[test]
    fn truncated_factored_cqa_is_deterministic_and_sound(
        groups in proptest::collection::vec(2u8..4, 2..5),
        steps in 1u64..300,
    ) {
        let (db, sigma) = key_instance(&groups);
        let q = UnionQuery::single(parse_query("Q(k) :- T(k, v)").unwrap());
        let class = RepairClass::Subset;
        let run = |threads: usize| {
            with_threads(threads, || {
                let budget = Budget::steps(steps);
                let c = consistent_answers_factored_budgeted(&db, &sigma, &q, &class, &budget)
                    .unwrap()
                    .expect("denial-class, deletion-based");
                let budget = Budget::steps(steps);
                let p = possible_answers_factored_budgeted(&db, &sigma, &q, &class, &budget)
                    .unwrap()
                    .expect("denial-class, deletion-based");
                (
                    c.truncation().is_some(),
                    c.into_value(),
                    p.truncation().is_some(),
                    p.into_value(),
                )
            })
        };
        let (a, b) = (run(1), run(4));
        prop_assert_eq!(&a, &b);
        let exact_certain = consistent_answers(&db, &sigma, &q, &class).unwrap();
        let exact_possible = possible_answers(&db, &sigma, &q, &class).unwrap();
        let (c_trunc, (certain, _), p_trunc, (possible, _)) = a;
        if c_trunc {
            prop_assert!(certain.is_subset(&exact_certain));
        } else {
            prop_assert_eq!(&certain, &exact_certain);
        }
        if p_trunc {
            prop_assert!(possible.is_superset(&exact_possible));
        } else {
            prop_assert_eq!(&possible, &exact_possible);
        }
    }

    /// The component-restricted contingency search reports the same
    /// responsibilities as a brute-force search over *all* deletion subsets,
    /// and its witness Γ is a genuine minimum contingency set. Byte-level
    /// cause lists also agree between 1 and 4 threads.
    #[test]
    fn factored_responsibilities_match_brute_force(
        groups in proptest::collection::vec(1u8..4, 1..5),
    ) {
        let (db, _) = key_instance(&groups);
        // "Some key is violated": witnesses are pairs inside one key group,
        // so each size-≥2 group is one component of the support hyper-graph.
        let q = UnionQuery::single(parse_query("Q() :- T(x, y), T(x, z), y != z").unwrap());
        let causes_1 = with_threads(1, || cqa_causality::actual_causes(&db, &q));
        let causes_4 = with_threads(4, || cqa_causality::actual_causes(&db, &q));
        prop_assert_eq!(&causes_1, &causes_4);
        let tids: Vec<Tid> = db.tids().into_iter().collect();
        for &tid in &tids {
            let (rho, gamma) = cqa_causality::responsibility(&db, &q, tid);
            let oracle = brute_force_responsibility(&db, &q, &tids, tid);
            prop_assert!(
                (rho - oracle).abs() < 1e-12,
                "responsibility of {:?}: factored {} vs brute force {}",
                tid, rho, oracle,
            );
            if rho > 0.0 {
                // Γ itself must witness ρ: |Γ| matches, Q survives deleting
                // Γ, and additionally deleting `tid` refutes Q.
                prop_assert!((rho - 1.0 / (1.0 + gamma.len() as f64)).abs() < 1e-12);
                prop_assert!(!gamma.contains(&tid));
                prop_assert!(holds_without(&db, &q, &gamma));
                let mut and_tid = gamma.clone();
                and_tid.insert(tid);
                prop_assert!(!holds_without(&db, &q, &and_tid));
            }
            let listed = causes_1.iter().find(|c| c.tid == tid);
            match listed {
                Some(c) => prop_assert!((c.responsibility - rho).abs() < 1e-12),
                None => prop_assert!(rho == 0.0),
            }
        }
    }
}

fn holds_without(db: &Database, q: &UnionQuery, deleted: &BTreeSet<Tid>) -> bool {
    holds_ucq(
        &DeltaView::new(db, deleted, &[]),
        q,
        NullSemantics::Structural,
    )
}

/// Brute-force responsibility: the exact minimum over *every* Γ ⊆ D ∖ {tid},
/// with no component reasoning at all.
fn brute_force_responsibility(db: &Database, q: &UnionQuery, tids: &[Tid], tid: Tid) -> f64 {
    let others: Vec<Tid> = tids.iter().copied().filter(|t| *t != tid).collect();
    let mut best: Option<usize> = None;
    for mask in 0u32..(1u32 << others.len()) {
        let size = mask.count_ones() as usize;
        if best.is_some_and(|b| size >= b) {
            continue;
        }
        let gamma: BTreeSet<Tid> = others
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, t)| *t)
            .collect();
        if !holds_without(db, q, &gamma) {
            continue;
        }
        let mut and_tid = gamma.clone();
        and_tid.insert(tid);
        if !holds_without(db, q, &and_tid) {
            best = Some(size);
        }
    }
    best.map_or(0.0, |b| 1.0 / (1.0 + b as f64))
}
