//! Property tests for the dictionary-encoded columnar engine (PR 7).
//!
//! Three contracts are exercised on random inputs:
//!
//! * **Dictionary round-trip** — `resolve(intern(v))` is `v` (structural
//!   equality; integral floats canonicalize to ints and compare equal),
//!   interning is idempotent, and vid equality holds exactly when the
//!   underlying values are equal.
//! * **Order agreement** — `ValueDict::cmp_vids` is the total [`Value`]
//!   order seen through ids; sorting by vids-resolved order can therefore
//!   never diverge from the row-oriented engine's value sort.
//! * **Columnar ≡ row reference** — denial-constraint violations (hitting
//!   the sorted-range, hash-join, and generic evaluator paths) and CQA
//!   joins computed by the id-space engine equal a naive Value-level
//!   nested-loop reference, and budgeted repair/CQA outcomes are
//!   byte-identical at 1 and 4 threads under random step budgets.

use cqa_constraints::{ConstraintSet, DenialConstraint, KeyConstraint};
use cqa_core::{RepairClass, RepairOptions};
use cqa_exec::{with_threads, Budget};
use cqa_query::{parse_query, CmpOp, NullSemantics, UnionQuery};
use cqa_relation::{
    sql_eq, tuple, Database, Facts, RelationSchema, Tid, Truth, Tuple, Value, ValueDict,
};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Values drawn to collide often: small ints, a few strings, bools,
/// labelled nulls, and floats — including integral floats like `2.0`,
/// which the dictionary canonicalizes to `Int(2)` (they compare equal).
fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-4i64..8).prop_map(Value::Int),
        prop_oneof![Just("a"), Just("b"), Just("c")].prop_map(Value::str),
        any::<bool>().prop_map(Value::Bool),
        (0u32..3).prop_map(Value::Null),
        (-2.0f64..4.0).prop_map(Value::Float),
        (-4i64..8).prop_map(|i| Value::Float(i as f64)),
    ]
}

/// An `R(A,B,C)`, `S(A)` instance from random cell values.
fn instance(r_rows: &[(Value, Value, Value)], s_rows: &[Value]) -> Database {
    let mut db = Database::new();
    db.create_relation(RelationSchema::new("R", ["A", "B", "C"]))
        .unwrap();
    db.create_relation(RelationSchema::new("S", ["A"])).unwrap();
    for (a, b, c) in r_rows {
        db.insert("R", Tuple::new([a.clone(), b.clone(), c.clone()]))
            .unwrap();
    }
    for a in s_rows {
        db.insert("S", Tuple::new([a.clone()])).unwrap();
    }
    db
}

/// SQL-semantics equality: true only for equal non-null values.
fn joins(a: &Value, b: &Value) -> bool {
    sql_eq(a, b) == Truth::True
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn intern_resolve_round_trips(vs in vec(arb_value(), 0..40)) {
        let d = ValueDict::new();
        for v in &vs {
            let vid = d.intern(v);
            let back = d.resolve(vid).unwrap();
            prop_assert_eq!(&back, v);
            prop_assert_eq!(d.intern(&back), vid);
            prop_assert_eq!(d.lookup(v), Some(vid));
            prop_assert_eq!(d.is_null(vid), v.is_null());
        }
    }

    #[test]
    fn vid_equality_iff_value_equality(a in arb_value(), b in arb_value()) {
        let d = ValueDict::new();
        let (va, vb) = (d.intern(&a), d.intern(&b));
        prop_assert_eq!(va == vb, a == b);
    }

    #[test]
    fn cmp_vids_is_the_value_order(vs in vec(arb_value(), 2..24)) {
        let d = ValueDict::new();
        let vids: Vec<_> = vs.iter().map(|v| d.intern(v)).collect();
        for (i, a) in vs.iter().enumerate() {
            for (j, b) in vs.iter().enumerate() {
                prop_assert_eq!(d.cmp_vids(vids[i], vids[j]), a.cmp(b));
            }
        }
        // Sorting ids through the dictionary is the value sort.
        let mut by_vid = vids.clone();
        by_vid.sort_by(|x, y| d.cmp_vids(*x, *y));
        let resolved: Vec<Value> = by_vid.iter().map(|v| d.resolve(*v).unwrap()).collect();
        let mut by_value = vs.clone();
        by_value.sort();
        prop_assert_eq!(resolved, by_value);
    }

    /// Sorted-range fast path (`R(x,y,z), x > K`) against a Value-level
    /// nested-loop reference under SQL comparison semantics.
    #[test]
    fn range_violations_match_row_reference(
        r_rows in vec((arb_value(), arb_value(), arb_value()), 0..30),
        k in -3i64..7,
    ) {
        let db = instance(&r_rows, &[]);
        let dc = DenialConstraint::parse("gt", &format!("R(x, y, z), x > {k}")).unwrap();
        let bound = Value::Int(k);
        let expect: BTreeSet<BTreeSet<Tid>> = db
            .facts_in("R")
            .filter(|(_, t)| {
                t.get(0).is_some_and(|a| !a.is_null() && CmpOp::Gt.eval(a, &bound))
            })
            .map(|(tid, _)| BTreeSet::from([tid]))
            .collect();
        prop_assert_eq!(dc.violations(&db), expect);
    }

    /// Hash-join fast path (`R(x,y,z), S(x)`) and the CQA join built on the
    /// same id-space machinery, against nested-loop references.
    #[test]
    fn join_violations_and_answers_match_row_reference(
        r_rows in vec((arb_value(), arb_value(), arb_value()), 0..25),
        s_rows in vec(arb_value(), 0..12),
    ) {
        let db = instance(&r_rows, &s_rows);
        let dc = DenialConstraint::parse("j", "R(x, y, z), S(x)").unwrap();
        let mut expect: BTreeSet<BTreeSet<Tid>> = BTreeSet::new();
        let mut answers: BTreeSet<Tuple> = BTreeSet::new();
        for (rt, r) in db.facts_in("R") {
            for (st, s) in db.facts_in("S") {
                let (Some(rx), Some(sx)) = (r.get(0), s.get(0)) else { continue };
                if joins(rx, sx) {
                    expect.insert(BTreeSet::from([rt, st]));
                    if let (Some(x), Some(z)) = (r.get(0), r.get(2)) {
                        answers.insert(Tuple::new([x.clone(), z.clone()]));
                    }
                }
            }
        }
        prop_assert_eq!(dc.violations(&db), expect);
        let q = parse_query("Q(x, z) :- R(x, y, z), S(x)").unwrap();
        prop_assert_eq!(cqa_query::eval_cq(&db, &q, NullSemantics::Sql), answers);
    }

    /// Self-join with a two-variable comparison — exercises the generic
    /// backtracking evaluator over columnar rows.
    #[test]
    fn self_join_violations_match_row_reference(
        r_rows in vec((arb_value(), arb_value(), arb_value()), 0..20),
    ) {
        let db = instance(&r_rows, &[]);
        let dc = DenialConstraint::parse("lt", "R(x, y, z), R(x, u, w), y < u").unwrap();
        let rows: Vec<(Tid, Tuple)> = db.facts_in("R").map(|(t, r)| (t, r.clone())).collect();
        let mut expect: BTreeSet<BTreeSet<Tid>> = BTreeSet::new();
        for (t1, r1) in &rows {
            for (t2, r2) in &rows {
                let (Some(x1), Some(x2)) = (r1.get(0), r2.get(0)) else { continue };
                let (Some(y), Some(u)) = (r1.get(1), r2.get(1)) else { continue };
                if joins(x1, x2) && !y.is_null() && !u.is_null() && CmpOp::Lt.eval(y, u) {
                    expect.insert(BTreeSet::from([*t1, *t2]));
                }
            }
        }
        prop_assert_eq!(dc.violations(&db), expect);
    }

    /// Budgeted repair enumeration and CQA are byte-identical at 1 and 4
    /// threads for any step budget (logical truncation is deterministic).
    #[test]
    fn budgeted_outcomes_are_thread_count_invariant(
        groups in vec(1u8..4, 1..5),
        steps in 1u64..2000,
    ) {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("T", ["K", "V"])).unwrap();
        for (k, &size) in groups.iter().enumerate() {
            for v in 0..size.max(1) {
                db.insert("T", tuple![k as i64, v as i64]).unwrap();
            }
        }
        let sigma = ConstraintSet::from_iter([KeyConstraint::new("T", ["K"])]);
        let base = Arc::new(db.clone());
        let q = UnionQuery::single(parse_query("Q(k, v) :- T(k, v)").unwrap());
        let class = RepairClass::Subset;

        let run_cqa = || {
            let budget = Budget::steps(steps);
            let out = cqa_core::consistent_answers_budgeted(&db, &sigma, &q, &class, &budget)
                .unwrap();
            (out.is_exact(), out.into_value())
        };
        prop_assert_eq!(with_threads(1, run_cqa), with_threads(4, run_cqa));

        let run_repairs = || {
            let budget = Budget::steps(steps);
            let out = cqa_core::s_repairs_budgeted(&base, &sigma, &RepairOptions::default(), &budget)
                .unwrap();
            let exact = out.is_exact();
            let deltas: Vec<_> = out.into_value().iter().map(|r| r.delta().clone()).collect();
            (exact, deltas)
        };
        prop_assert_eq!(with_threads(1, run_repairs), with_threads(4, run_repairs));
    }
}
