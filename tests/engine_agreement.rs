//! Cross-engine agreement tests: independent implementations of the same
//! semantics must coincide on randomized inputs. These complement
//! `property_invariants.rs` (data-structure laws) and
//! `asp_solver_reference.rs` (solver vs definition).

use inconsistent_db::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeSet;

// ---------------------------------------------------------------- FO vs CQ

fn arb_rs_db() -> impl Strategy<Value = Database> {
    (
        proptest::collection::vec((0i64..4, 0i64..4), 0..8),
        proptest::collection::vec(0i64..4, 0..5),
    )
        .prop_map(|(rs, ss)| {
            let mut db = Database::new();
            db.create_relation(RelationSchema::new("R", ["A", "B"]))
                .unwrap();
            db.create_relation(RelationSchema::new("S", ["A"])).unwrap();
            for (a, b) in rs {
                db.insert("R", tuple![a, b]).unwrap();
            }
            for s in ss {
                db.insert("S", tuple![s]).unwrap();
            }
            db
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The FO evaluator must agree with the CQ evaluator on CQ-shaped
    /// queries (existential-positive fragment).
    #[test]
    fn fo_eval_matches_cq_eval(db in arb_rs_db()) {
        for (cq_text, fo_text) in [
            ("Q(x) :- R(x, y)", "x : exists y (R(x, y))"),
            ("Q(x) :- R(x, y), S(y)", "x : exists y (R(x, y) & S(y))"),
            ("Q(x, y) :- R(x, y), x != y", "x, y : R(x, y) & x != y"),
            ("Q() :- S(x), R(x, y), S(y)", "exists x, y (S(x) & R(x, y) & S(y))"),
            ("Q(x) :- S(x), not R(x, x)", "x : S(x) & !R(x, x)"),
        ] {
            let cq = parse_query(cq_text).unwrap();
            let fo = parse_fo(fo_text).unwrap();
            let a = eval_cq(&db, &cq, NullSemantics::Structural);
            let b = eval_fo(&db, &fo, NullSemantics::Structural);
            prop_assert_eq!(a, b, "query: {}", cq_text);
        }
    }

    /// Datalog transitive closure must match a plain BFS reference.
    #[test]
    fn datalog_tc_matches_bfs(edges in proptest::collection::vec((0i64..6, 0i64..6), 0..12)) {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Edge", ["From", "To"])).unwrap();
        for &(a, b) in &edges {
            db.insert("Edge", tuple![a, b]).unwrap();
        }
        let program = parse_program(
            "Path(x, y) :- Edge(x, y).\n\
             Path(x, z) :- Edge(x, y), Path(y, z).",
        )
        .unwrap();
        let out = program.evaluate(&db).unwrap();
        let datalog: BTreeSet<(i64, i64)> = out
            .relation("Path")
            .unwrap()
            .tuples()
            .map(|t| (t.at(0).as_i64().unwrap(), t.at(1).as_i64().unwrap()))
            .collect();
        // BFS reference.
        let mut reference: BTreeSet<(i64, i64)> = BTreeSet::new();
        let nodes: BTreeSet<i64> = edges.iter().flat_map(|&(a, b)| [a, b]).collect();
        for &src in &nodes {
            let mut frontier = vec![src];
            let mut seen: BTreeSet<i64> = BTreeSet::new();
            while let Some(u) = frontier.pop() {
                for &(a, b) in &edges {
                    if a == u && seen.insert(b) {
                        frontier.push(b);
                    }
                }
            }
            for t in seen {
                reference.insert((src, t));
            }
        }
        prop_assert_eq!(datalog, reference);
    }

    /// The text codec round-trips arbitrary content.
    #[test]
    fn codec_roundtrip(
        rows in proptest::collection::vec(
            (any::<i16>(), "[a-z' ]{0,6}", any::<bool>(), 0u32..4),
            0..10,
        )
    ) {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("M", ["I", "S", "B", "N"])).unwrap();
        for (i, s, b, n) in rows {
            db.insert(
                "M",
                Tuple::new(vec![
                    Value::Int(i as i64),
                    Value::str(&s),
                    Value::Bool(b),
                    Value::Null(n),
                ]),
            )
            .unwrap();
        }
        let text = inconsistent_db::relation::save(&db);
        let back = inconsistent_db::relation::load(&text).unwrap();
        prop_assert!(db.same_content(&back), "text:\n{}", text);
    }

    /// The cleaner always terminates and produces a clean instance on
    /// random FD-dirty data.
    #[test]
    fn cleaner_terminates_and_cleans(
        rows in proptest::collection::vec((0i64..4, 0i64..6), 1..12)
    ) {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("T", ["K", "V"])).unwrap();
        for (k, v) in rows {
            db.insert("T", tuple![k, v]).unwrap();
        }
        let spec = CleaningSpec::new()
            .with_fd(FunctionalDependency::new("T", ["K"], ["V"]));
        let result = clean(&db, &spec, &CostModel::uniform()).unwrap();
        prop_assert!(spec.is_clean(&result.db).unwrap());
        prop_assert!(result.total_cost >= 0.0);
    }

    /// Every update repair satisfies the FD, and possible answers over the
    /// update-repair class equal the union of group values.
    #[test]
    fn update_repairs_satisfy_fd(rows in proptest::collection::vec((0i64..3, 0i64..4), 1..9)) {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("T", ["K", "V"])).unwrap();
        for (k, v) in rows {
            db.insert("T", tuple![k, v]).unwrap();
        }
        let fd = FunctionalDependency::new("T", ["K"], ["V"]);
        for r in inconsistent_db::core::update_repairs(&db, &fd, Some(50)).unwrap() {
            prop_assert!(fd.is_satisfied(&r.db).unwrap());
            // Update repairs never delete keys.
            let keys_before: BTreeSet<Value> =
                db.relation("T").unwrap().tuples().map(|t| t.at(0).clone()).collect();
            let keys_after: BTreeSet<Value> =
                r.db.relation("T").unwrap().tuples().map(|t| t.at(0).clone()).collect();
            prop_assert_eq!(keys_before, keys_after);
        }
    }

    /// Numeric repairs achieve exactly the minimal L1 distance |excess|.
    #[test]
    fn numeric_repair_is_l1_minimal(
        amounts in proptest::collection::vec(0i64..1000, 1..8),
        bound in 0i64..3000,
    ) {
        use inconsistent_db::cleaning::{numeric_repair, NumericConstraint};
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("B", ["Amt"])).unwrap();
        for (i, a) in amounts.iter().enumerate() {
            // Offset by the row index so equal amounts stay distinct tuples
            // under set semantics.
            db.insert("B", tuple![*a + i as i64 * 10_000]).unwrap();
        }
        let total: i64 = db
            .relation("B")
            .unwrap()
            .tuples()
            .map(|t| t.at(0).as_i64().unwrap())
            .sum();
        let c = NumericConstraint::sum_at_most("B", "Amt", bound as f64);
        let r = numeric_repair(&db, &c).unwrap();
        let expected = (total - bound).max(0) as f64;
        prop_assert!((r.l1_distance - expected).abs() < 1e-6);
    }

    /// Incremental repairs equal full recomputation after an insert burst.
    #[test]
    fn incremental_equals_full(
        base in proptest::collection::vec((0i64..4, 0i64..4), 0..6),
        new in proptest::collection::vec((0i64..4, 0i64..4), 1..4),
    ) {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("T", ["K", "V"])).unwrap();
        // Make the base consistent: dedupe by key.
        let mut seen = BTreeSet::new();
        for (k, v) in base {
            if seen.insert(k) {
                db.insert("T", tuple![k, v]).unwrap();
            }
        }
        let sigma = ConstraintSet::from_iter([KeyConstraint::new("T", ["K"])]);
        let new_tuples: Vec<(String, Tuple)> =
            new.into_iter().map(|(k, v)| ("T".to_string(), tuple![k, v])).collect();
        let inc = inconsistent_db::core::repairs_after_insert(&db, &sigma, &new_tuples).unwrap();
        let full = s_repairs(&inc.updated, &sigma).unwrap();
        let a: BTreeSet<BTreeSet<Tid>> = inc.repairs.iter().map(|r| r.deleted.clone()).collect();
        let b: BTreeSet<BTreeSet<Tid>> = full.iter().map(|r| r.deleted.clone()).collect();
        prop_assert_eq!(a, b);
    }
}
