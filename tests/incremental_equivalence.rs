//! Property tests for delta-driven incremental maintenance (PR 8).
//!
//! The contract under test: after ANY sequence of inserts, deletes and
//! in-place updates, a delta-maintained [`IncrementalState`] is
//! **byte-identical** to recompute-from-scratch — same violation sets, same
//! canonical hyper-graph edge order, same component factorization and
//! frozen core — and the incremental planner returns the same consistent
//! answers as the batch planner. This must hold at any thread count and
//! under arbitrary step budgets (a budget that latches mid-delta falls back
//! to a full recompute, never to truncated state).

use cqa_constraints::{Constraint, ConstraintSet, DenialConstraint, KeyConstraint};
use cqa_core::{
    answer_consistently, answer_consistently_incremental, IncrementalState, MaintenanceDecision,
};
use cqa_exec::{with_threads, Budget};
use cqa_relation::{tuple, Database, RelationSchema, Tid, Value};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// One random mutation. Tid-valued operations select from the instance's
/// live tids by index so delete/update stay meaningful as the instance
/// shrinks and grows.
#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64),
    Delete(usize),
    Update(usize, usize, i64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Keys collide often (0..6) so violations appear and disappear.
        ((0i64..6), (0i64..12)).prop_map(|(k, v)| Op::Insert(k, v)),
        (0usize..64).prop_map(Op::Delete),
        ((0usize..64), (0usize..2), (0i64..12)).prop_map(|(s, c, v)| Op::Update(s, c, v)),
    ]
}

fn apply(db: &mut Database, op: &Op) {
    match op {
        Op::Insert(k, v) => {
            db.insert("T", tuple![*k, *v]).unwrap();
        }
        Op::Delete(sel) => {
            let tids: Vec<Tid> = db.tids().into_iter().collect();
            if let Some(&t) = tids.get(sel % tids.len().max(1)) {
                db.delete(t).unwrap();
            }
        }
        Op::Update(sel, col, val) => {
            let tids: Vec<Tid> = db.tids().into_iter().collect();
            if let Some(&t) = tids.get(sel % tids.len().max(1)) {
                db.update_value(t, col % 2, Value::int(*val)).unwrap();
            }
        }
    }
}

fn initial() -> (Database, ConstraintSet) {
    let mut db = Database::new();
    db.create_relation(RelationSchema::new("T", ["K", "V"]))
        .unwrap();
    for (k, v) in [(0, 1), (1, 2), (2, 3)] {
        db.insert("T", tuple![k, v]).unwrap();
    }
    // A key (two-atom hash-join delta lane) plus a comparison denial
    // (single-atom delta lane): both maintenance paths run every step.
    let sigma = ConstraintSet::from_iter([
        Constraint::Key(KeyConstraint::new("T", ["K"])),
        Constraint::Denial(DenialConstraint::parse("big", "T(k, v), v > 10").unwrap()),
    ]);
    (db, sigma)
}

/// Maintained state must equal a from-scratch build, byte for byte.
fn assert_identical(state: &IncrementalState, db: &Database, sigma: &ConstraintSet) {
    let scratch = IncrementalState::new(db, sigma).unwrap();
    assert_eq!(state.violations(), scratch.violations());
    assert!(
        state.graph() == scratch.graph(),
        "maintained graph diverged from scratch:\n  maintained: {:?}\n  scratch: {:?}",
        state.graph(),
        scratch.graph()
    );
    assert_eq!(*state.components(), *scratch.components());
    assert_eq!(state.epoch(), db.epoch());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random mutation batches, refreshed under a random step budget, at 1
    /// and 4 threads: maintained state ≡ scratch after every refresh, and
    /// the full run (violations + decisions + answers) is thread-invariant.
    #[test]
    fn incremental_state_matches_scratch_under_mutations(
        batches in vec(vec(arb_op(), 1..5), 1..7),
        steps in 1u64..400,
    ) {
        let query = cqa_query::parse_ucq("Q(k, v) :- T(k, v)").unwrap();
        let run = |threads: usize| {
            with_threads(threads, || {
                let (mut db, sigma) = initial();
                let mut state = IncrementalState::new(&db, &sigma).unwrap();
                let mut trace = Vec::new();
                for batch in &batches {
                    for op in batch {
                        apply(&mut db, op);
                    }
                    let budget = Budget::steps(steps);
                    let decision = state.refresh_budgeted(&db, &sigma, &budget).unwrap().clone();
                    // Byte-identity against recompute-from-scratch, every step.
                    assert_identical(&state, &db, &sigma);
                    trace.push((state.violations().clone(), decision));
                }
                trace
            })
        };
        prop_assert_eq!(run(1), run(4));

        // The incremental planner agrees with the batch planner on the
        // final instance (exercising the planner's own refresh path).
        let answers = |threads: usize| {
            with_threads(threads, || {
                let (mut db, sigma) = initial();
                let mut state = IncrementalState::new(&db, &sigma).unwrap();
                for op in batches.iter().flatten() {
                    apply(&mut db, op);
                }
                let q = query.clone();
                let incr = answer_consistently_incremental(
                    &db, &sigma, &q, &mut state, &Budget::unlimited(),
                )
                .unwrap()
                .into_value();
                let batch = answer_consistently(&db, &sigma, &q).unwrap();
                (incr.answers, batch.answers)
            })
        };
        let (incr, batch) = answers(1);
        prop_assert_eq!(&incr, &batch);
        let (incr4, batch4) = answers(4);
        prop_assert_eq!(&incr4, &batch4);
        prop_assert_eq!(incr, incr4);
    }

    /// Deleting every tuple (and re-inserting some) keeps the maintained
    /// node set, frozen core and components exact.
    #[test]
    fn drain_and_refill_stays_exact(refill in vec((0i64..4, 0i64..12), 0..6)) {
        let (mut db, sigma) = initial();
        let mut state = IncrementalState::new(&db, &sigma).unwrap();
        for t in db.tids() {
            db.delete(t).unwrap();
        }
        state.refresh(&db, &sigma).unwrap();
        assert_identical(&state, &db, &sigma);
        prop_assert!(state.is_consistent());
        for (k, v) in &refill {
            db.insert("T", tuple![*k, *v]).unwrap();
        }
        state.refresh(&db, &sigma).unwrap();
        assert_identical(&state, &db, &sigma);
    }
}

/// Overflowing the bounded change log compacts old entries away; a state
/// cached before the retained window must take the full-recompute path and
/// still end up exact.
#[test]
fn log_compaction_falls_back_to_exact_recompute() {
    let (mut db, sigma) = initial();
    let mut state = IncrementalState::new(&db, &sigma).unwrap();
    // Distinct tuples (set semantics would swallow duplicates without
    // bumping the epoch): enough real changes to overflow the bounded log.
    for i in 0..(2 * cqa_relation::changes::DEFAULT_LOG_CAPACITY as i64 + 16) {
        db.insert("T", tuple![i + 100, i % 7]).unwrap();
    }
    match state.refresh(&db, &sigma).unwrap() {
        MaintenanceDecision::Recompute { .. } => {}
        other => panic!("expected recompute after log compaction, got {other:?}"),
    }
    assert_identical(&state, &db, &sigma);
}

/// A zero-step budget latches on the first logged change: the refresh must
/// discard the partial delta and recompute exactly.
#[test]
fn exhausted_budget_never_leaves_partial_state() {
    let (mut db, sigma) = initial();
    let mut state = IncrementalState::new(&db, &sigma).unwrap();
    db.insert("T", tuple![0, 7]).unwrap();
    db.insert("T", tuple![1, 8]).unwrap();
    match state
        .refresh_budgeted(&db, &sigma, &Budget::steps(1))
        .unwrap()
    {
        MaintenanceDecision::Recompute { reason } => {
            assert!(reason.contains("budget"), "reason: {reason}");
        }
        other => panic!("expected budget fallback, got {other:?}"),
    }
    assert_identical(&state, &db, &sigma);
}

/// Unused-import guard: `BTreeSet` backs the shared `assert_identical`
/// comparisons through the public accessors.
#[test]
fn violations_are_canonical_sets() {
    let (mut db, sigma) = initial();
    db.insert("T", tuple![0, 5]).unwrap();
    let state = IncrementalState::new(&db, &sigma).unwrap();
    let expect: BTreeSet<BTreeSet<Tid>> = [[Tid(1), Tid(4)].into()].into();
    assert_eq!(state.violations(), &expect);
}
