//! The panic-free input surface, fuzzed: arbitrary byte strings and
//! near-valid mutations (truncations, insertions, byte flips) are fed to
//! every parser that accepts user-controlled text — the relation codec, the
//! constraint parser, the query parser — and to the `repairctl` argument
//! dispatcher. The only assertion is that nothing panics: malformed input
//! must come back as a typed error (`RelationError::Codec` with line and
//! column, a `ParseError`, or a CLI diagnostic), never as an abort.
//!
//! A proptest failure here is a crash bug by definition; the shrunk input
//! is the reproducer.

use proptest::prelude::*;

/// A well-formed codec file covering every value shape (quoted strings with
/// `''` escapes, ints, floats, bools, labelled nulls) — the seed that the
/// near-valid mutations perturb. One-byte damage to this file used to panic
/// the tokenizer (trailing escape at end of input).
const VALID_DB: &str = "\
@relation R(A, B, C)\n\
'a', 1, 2.5\n\
'b''c', -7, NULL\n\
'', true, NULL_3\n\
\n\
@relation S(X)\n\
'o''brien'\n";

const VALID_SIGMA: &str = "\
key R(A)\n\
fd R: A -> B\n\
dc R(x, y, z), S(x)\n";

const VALID_QUERY: &str = "Q(x, y) :- R(x, y, z), S(x), y != z";

/// Mutate a seed string: truncate at a byte index, insert a byte, or
/// overwrite a byte. Lossy UTF-8 recovery keeps the result a `&str` (the
/// parsers' actual input type) whatever the damage.
fn mutations(seed: &'static str) -> impl Strategy<Value = String> {
    (0usize..seed.len(), any::<u8>(), 0u8..3).prop_map(move |(i, b, op)| {
        let mut v = seed.as_bytes().to_vec();
        match op {
            0 => v.truncate(i),
            1 => v.insert(i, b),
            _ => v[i] = b,
        }
        String::from_utf8_lossy(&v).into_owned()
    })
}

/// Short fully-arbitrary byte strings (the "garbage" end of the spectrum).
fn garbage() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..64)
        .prop_map(|v| String::from_utf8_lossy(&v).into_owned())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn codec_load_never_panics(s in prop_oneof![mutations(VALID_DB), garbage()]) {
        let _ = cqa_relation::load(&s);
    }

    #[test]
    fn constraint_parser_never_panics(
        s in prop_oneof![mutations(VALID_SIGMA), garbage()],
    ) {
        let _ = cqa_constraints::parse_constraints(&s);
    }

    #[test]
    fn query_parser_never_panics(s in prop_oneof![mutations(VALID_QUERY), garbage()]) {
        let _ = cqa_query::parse_query(&s);
    }

    #[test]
    fn cli_dispatch_never_panics(
        // Argument vectors drawn from the commands, flags, and a pool of
        // adversarial values (wrong types, parser-breaking strings,
        // nonexistent relative paths). `--threads` and `--out` are omitted:
        // the former mutates the global pool, the latter writes files.
        args in proptest::collection::vec(
            prop_oneof![
                Just("check"), Just("repairs"), Just("cqa"), Just("causes"),
                Just("measure"), Just("clean"), Just("asp"), Just("sql"),
                Just("analyze"), Just("help"), Just("frobnicate"),
                Just("--db"), Just("--constraints"), Just("--query"),
                Just("--class"), Just("--limit"), Just("--possible"),
                Just("--timeout-ms"), Just("--budget-steps"),
                Just("--max-repairs"), Just("--c-repairs"), Just("--catalog"),
                Just("no-such-file.idb"), Just("x"), Just("-1"), Just("0"),
                Just("18446744073709551616"), Just("Q(x) :- R(x"),
                Just("'"), Just("@relation"), Just("key R("),
            ],
            0..6,
        ),
    ) {
        let args: Vec<String> = args.into_iter().map(str::to_string).collect();
        let mut out = String::new();
        let _ = cqa_cli::run(&args, &mut out);
    }
}

/// The regression that motivated the suite, pinned exactly: a database file
/// cut off one byte early (inside an `''` escape) must load as a typed
/// codec error with the right position — not a panic.
#[test]
fn one_byte_truncations_of_a_valid_file_never_panic() {
    for cut in 0..VALID_DB.len() {
        let s = &VALID_DB[..cut];
        // Tokenizer-level failures must carry a real 1-based position;
        // other failures (arity mismatches against the declared schema) are
        // typed errors too — the only forbidden outcome is a panic.
        if let Err(cqa_relation::RelationError::Codec { line, column, .. }) = cqa_relation::load(s)
        {
            assert!(
                line >= 1 && column >= 1,
                "unpositioned codec error at cut {cut}"
            );
        }
    }
}
