//! E-series experiments: exact reproduction of every worked example in the
//! paper (see DESIGN.md's per-experiment index). Each test is named after
//! its experiment id and asserts the *exact* repairs, consistent answers,
//! stable models, causes and responsibilities the paper prints.

use inconsistent_db::asp::{stable_models, RepairProgram};
use inconsistent_db::core::attr_repair::CellChange;
use inconsistent_db::core::null_tuple_repairs;
use inconsistent_db::prelude::*;
use std::collections::BTreeSet;

fn supply_db() -> Database {
    let mut db = Database::new();
    db.create_relation(RelationSchema::new(
        "Supply",
        ["Company", "Receiver", "Item"],
    ))
    .unwrap();
    db.create_relation(RelationSchema::new("Articles", ["Item"]))
        .unwrap();
    db.insert("Supply", tuple!["C1", "R1", "I1"]).unwrap();
    db.insert("Supply", tuple!["C2", "R2", "I2"]).unwrap();
    db.insert("Supply", tuple!["C2", "R1", "I3"]).unwrap();
    db.insert("Articles", tuple!["I1"]).unwrap();
    db.insert("Articles", tuple!["I2"]).unwrap();
    db
}

fn supply_sigma() -> ConstraintSet {
    ConstraintSet::from_iter([Tgd::parse("ID", "Articles(z) :- Supply(x, y, z)").unwrap()])
}

fn employee_db() -> Database {
    let mut db = Database::new();
    db.create_relation(RelationSchema::new("Employee", ["Name", "Salary"]))
        .unwrap();
    db.insert("Employee", tuple!["page", 5000]).unwrap();
    db.insert("Employee", tuple!["page", 8000]).unwrap();
    db.insert("Employee", tuple!["smith", 3000]).unwrap();
    db.insert("Employee", tuple!["stowe", 7000]).unwrap();
    db
}

fn rs_db() -> Database {
    let mut db = Database::new();
    db.create_relation(RelationSchema::new("R", ["A", "B"]))
        .unwrap();
    db.create_relation(RelationSchema::new("S", ["A"])).unwrap();
    db.insert("R", tuple!["a4", "a3"]).unwrap(); // ι1
    db.insert("R", tuple!["a2", "a1"]).unwrap(); // ι2
    db.insert("R", tuple!["a3", "a3"]).unwrap(); // ι3
    db.insert("S", tuple!["a4"]).unwrap(); // ι4
    db.insert("S", tuple!["a2"]).unwrap(); // ι5
    db.insert("S", tuple!["a3"]).unwrap(); // ι6
    db
}

fn kappa_sigma() -> ConstraintSet {
    ConstraintSet::from_iter([DenialConstraint::parse("kappa", "S(x), R(x, y), S(y)").unwrap()])
}

/// E1 (Ex. 2.1–2.2): the inclusion dependency is violated; the residue
/// rewriting returns exactly {I1, I2} from the inconsistent instance.
#[test]
fn e1_supply_residue_rewriting() {
    let db = supply_db();
    let sigma = supply_sigma();
    assert!(!sigma.is_satisfied(&db).unwrap());
    let q = parse_query("Q(z) :- Supply(x, y, z)").unwrap();
    let rr = residue_rewrite(&q, &sigma).unwrap();
    assert_eq!(rr.residues_applied, 1);
    let ans = eval_fo(&db, &rr.query, NullSemantics::Structural);
    assert_eq!(ans, [tuple!["I1"], tuple!["I2"]].into());
}

/// E2 (Ex. 3.1–3.2): exactly the repairs D1 (delete) and D2 (insert), and
/// Cons(Q, D, {ID}) = {I1, I2}.
#[test]
fn e2_supply_s_repairs_and_cqa() {
    let db = supply_db();
    let sigma = supply_sigma();
    let repairs = s_repairs(&db, &sigma).unwrap();
    assert_eq!(repairs.len(), 2);
    let d1 = repairs.iter().find(|r| r.is_deletion_only()).unwrap();
    assert_eq!(d1.deleted, [Tid(3)].into());
    let d2 = repairs.iter().find(|r| !r.is_deletion_only()).unwrap();
    assert_eq!(d2.inserted, vec![("Articles".to_string(), tuple!["I3"])]);
    // D3 (deleting two Supply tuples) is consistent but NOT an S-repair.
    let (d3, _) = db.with_changes(&[Tid(2), Tid(3)].into(), &[]).unwrap();
    assert!(sigma.is_satisfied(&d3).unwrap());
    assert!(!is_repair(&db, &d3, &sigma, RepairSemantics::Subset).unwrap());
    // Cons(Q) = {I1, I2}.
    let q = UnionQuery::single(parse_query("Q(z) :- Supply(x, y, z)").unwrap());
    let cons = consistent_answers(&db, &sigma, &q, &RepairClass::Subset).unwrap();
    assert_eq!(cons, [tuple!["I1"], tuple!["I2"]].into());
}

/// E3 (Ex. 3.3–3.4): the two key repairs; Cons(Q1) and Cons(Q2); and the
/// SQL-style rewriting evaluated on the dirty instance.
#[test]
fn e3_employee_key_cqa_and_rewriting() {
    let db = employee_db();
    let sigma = ConstraintSet::from_iter([KeyConstraint::new("Employee", ["Name"])]);
    assert_eq!(s_repairs(&db, &sigma).unwrap().len(), 2);
    let q1 = UnionQuery::single(parse_query("Q(x, y) :- Employee(x, y)").unwrap());
    assert_eq!(
        consistent_answers(&db, &sigma, &q1, &RepairClass::Subset).unwrap(),
        [tuple!["smith", 3000], tuple!["stowe", 7000]].into()
    );
    let q2 = UnionQuery::single(parse_query("Q(x) :- Employee(x, y)").unwrap());
    assert_eq!(
        consistent_answers(&db, &sigma, &q2, &RepairClass::Subset).unwrap(),
        [tuple!["page"], tuple!["smith"], tuple!["stowe"]].into()
    );
    // The hand-written rewriting of Example 3.4 gives the same rows.
    let fo = parse_fo("x, y : Employee(x, y) & !exists z (Employee(x, z) & z != y)").unwrap();
    assert_eq!(
        eval_fo(&db, &fo, NullSemantics::Structural),
        [tuple!["smith", 3000], tuple!["stowe", 7000]].into()
    );
}

/// E4 (Ex. 3.5): the repair program has exactly three stable models, in
/// one-to-one correspondence with the three S-repairs; M1 keeps everything
/// but ι6.
#[test]
fn e4_repair_program_stable_models() {
    let db = rs_db();
    let sigma = kappa_sigma();
    let rp = RepairProgram::build(&db, &sigma).unwrap();
    let models = rp.s_repair_models().unwrap();
    assert_eq!(models.len(), 3);
    let deletions: BTreeSet<BTreeSet<Tid>> = models.iter().map(|m| m.deleted.clone()).collect();
    assert!(deletions.contains(&[Tid(6)].into())); // M1 ↔ D1
    assert!(deletions.contains(&[Tid(1), Tid(3)].into())); // D2
    assert!(deletions.contains(&[Tid(3), Tid(4)].into())); // D3
                                                           // The direct engine produces the same set of repairs.
    let direct: BTreeSet<BTreeSet<Tid>> = s_repairs(&db, &sigma)
        .unwrap()
        .into_iter()
        .map(|r| r.deleted)
        .collect();
    assert_eq!(deletions, direct);
}

/// E5 (Ex. 4.1, Figure 1): the conflict hyper-graph, its four S-repairs
/// and three C-repairs.
#[test]
fn e5_conflict_hypergraph_and_c_repairs() {
    let mut db = Database::new();
    for r in ["A", "B", "C", "D", "E"] {
        db.create_relation(RelationSchema::new(r, ["X"])).unwrap();
        db.insert(r, tuple!["a"]).unwrap();
    }
    let sigma = ConstraintSet::from_iter([
        DenialConstraint::parse("d1", "B(x), E(x)").unwrap(),
        DenialConstraint::parse("d2", "B(x), C(x), D(x)").unwrap(),
        DenialConstraint::parse("d3", "A(x), C(x)").unwrap(),
    ]);
    let g = sigma.conflict_hypergraph(&db).unwrap();
    assert_eq!(g.edge_count(), 3);
    // S-repairs: {B,C}, {C,D,E}, {A,B,D}, {E,D,A}  (tids 1..5 = A..E).
    let srepairs: BTreeSet<BTreeSet<Tid>> = g.maximal_independent_sets(None).into_iter().collect();
    let t = |ids: &[u64]| -> BTreeSet<Tid> { ids.iter().map(|&i| Tid(i)).collect() };
    assert_eq!(
        srepairs,
        [t(&[2, 3]), t(&[3, 4, 5]), t(&[1, 2, 4]), t(&[1, 4, 5])].into()
    );
    // C-repairs: only the three of size 3.
    let crepairs: BTreeSet<BTreeSet<Tid>> = c_repairs(&db, &sigma)
        .unwrap()
        .into_iter()
        .map(|r| db.tids().difference(&r.deleted).copied().collect())
        .collect();
    assert_eq!(
        crepairs,
        [t(&[3, 4, 5]), t(&[1, 2, 4]), t(&[1, 4, 5])].into()
    );
}

/// E6 (Ex. 4.2): weak program constraints keep exactly the C-repair models.
#[test]
fn e6_weak_constraints_select_c_repairs() {
    let db = rs_db();
    let mut rp = RepairProgram::build(&db, &kappa_sigma()).unwrap();
    rp.add_c_repair_weak_constraints();
    let models = rp.c_repair_models().unwrap();
    assert_eq!(models.len(), 1);
    assert_eq!(models[0].deleted, [Tid(6)].into());
}

/// E7 (Ex. 4.3): the existential tgd's two repairs — delete the Supply
/// tuple, or insert ⟨I3, NULL⟩ into Articles.
#[test]
fn e7_null_tuple_repairs() {
    let mut db = Database::new();
    db.create_relation(RelationSchema::new(
        "Supply",
        ["Company", "Receiver", "Item"],
    ))
    .unwrap();
    db.create_relation(RelationSchema::new("Articles", ["Item", "Cost"]))
        .unwrap();
    db.insert("Supply", tuple!["C1", "R1", "I1"]).unwrap();
    db.insert("Supply", tuple!["C2", "R2", "I2"]).unwrap();
    db.insert("Supply", tuple!["C2", "R1", "I3"]).unwrap();
    db.insert("Articles", tuple!["I1", 50]).unwrap();
    db.insert("Articles", tuple!["I2", 30]).unwrap();
    let sigma =
        ConstraintSet::from_iter([Tgd::parse("ID'", "Articles(z, v) :- Supply(x, y, z)").unwrap()]);
    let repairs = null_tuple_repairs(&db, &sigma).unwrap();
    assert_eq!(repairs.len(), 2);
    let ins = repairs
        .iter()
        .find(|r| !r.repair.inserted.is_empty())
        .unwrap();
    let (rel, t) = &ins.repair.inserted[0];
    assert_eq!(rel, "Articles");
    assert_eq!(t.at(0), &Value::str("I3"));
    assert!(t.at(1).is_null());
    for r in &repairs {
        assert!(sigma.is_satisfied(r.repair.db()).unwrap());
    }
}

/// E8 (Ex. 4.4): the paper's two attribute-level null repairs, with the
/// change sets {ι6[1]} and {ι1[2], ι3[2]}.
#[test]
fn e8_attribute_null_repairs() {
    let db = rs_db();
    let repairs = attribute_repairs(&db, &kappa_sigma()).unwrap();
    let change_sets: BTreeSet<BTreeSet<CellChange>> =
        repairs.iter().map(|r| r.changes.clone()).collect();
    let cell = |tid: u64, pos: usize| CellChange {
        tid: Tid(tid),
        position: pos,
    };
    assert!(change_sets.contains(&[cell(6, 0)].into()));
    assert!(change_sets.contains(&[cell(1, 1), cell(3, 1)].into()));
    for r in &repairs {
        assert!(kappa_sigma().is_satisfied(&r.db).unwrap());
        assert_eq!(r.db.total_tuples(), 6);
    }
}

/// E9 (Ex. 5.1–5.2): GAV mediation, LAV certain answers, and global CQA
/// under the FD Number → Name.
#[test]
fn e9_university_integration() {
    let mut sources = Database::new();
    for (r, attrs) in [
        ("CUstds", ["Number", "Name"]),
        ("SpecCU", ["Number", "Field"]),
        ("OUstds", ["Number", "Name"]),
        ("SpecOU", ["Number", "Field"]),
    ] {
        sources
            .create_relation(RelationSchema::new(r, attrs))
            .unwrap();
    }
    sources.insert("CUstds", tuple![101, "john"]).unwrap();
    sources.insert("CUstds", tuple![102, "mary"]).unwrap();
    sources.insert("SpecCU", tuple![101, "alg"]).unwrap();
    sources.insert("SpecCU", tuple![102, "ai"]).unwrap();
    sources.insert("OUstds", tuple![103, "claire"]).unwrap();
    sources.insert("OUstds", tuple![104, "peter"]).unwrap();
    sources.insert("SpecOU", tuple![103, "db"]).unwrap();
    let views = parse_program(
        "Stds(x, y, 'cu', z) :- CUstds(x, y), SpecCU(x, z).\n\
         Stds(x, y, 'ou', z) :- OUstds(x, y), SpecOU(x, z).",
    )
    .unwrap();

    // GAV: the retrieved instance is as in Example 5.1.
    let mediator = GavMediator::new(sources.clone(), views.clone());
    let retrieved = mediator.retrieved_global_instance().unwrap();
    assert_eq!(retrieved.relation("Stds").unwrap().len(), 3);

    // LAV: names are certain, skolemized fields are not.
    let lav = LavMediator::new(
        sources.clone(),
        vec![RelationSchema::new(
            "Stds",
            ["Number", "Name", "Univ", "Field"],
        )],
        vec![LavMapping::parse("CUstds(x, y) :- Stds(x, y, 'cu', z)").unwrap()],
    );
    let names = lav
        .certain_answers(&UnionQuery::single(
            parse_query("Q(y) :- Stds(x, y, u, z)").unwrap(),
        ))
        .unwrap();
    assert_eq!(names, [tuple!["john"], tuple!["mary"]].into());

    // Example 5.2: the conflicting (101, sue) at OU.
    let mut dirty = sources;
    dirty.insert("OUstds", tuple![101, "sue"]).unwrap();
    dirty.insert("SpecOU", tuple![101, "cs"]).unwrap();
    let system = GlobalSystem::new(
        GavMediator::new(dirty, views),
        vec![RelationSchema::new(
            "Stds",
            ["Number", "Name", "Univ", "Field"],
        )],
        ConstraintSet::from_iter([FunctionalDependency::new("Stds", ["Number"], ["Name"])]),
    );
    assert!(!system.is_globally_consistent().unwrap());
    let q = UnionQuery::single(parse_query("Q(x, y) :- Stds(x, y, u, z)").unwrap());
    let cons = system.consistent_answers(&q, &RepairClass::Subset).unwrap();
    assert!(cons.contains(&tuple![102, "mary"]));
    assert!(cons.contains(&tuple![103, "claire"]));
    assert!(!cons.iter().any(|t| t.at(0) == &Value::int(101)));
}

/// E10 (§6): the CFD table — plain FDs hold, the CFD does not; the cleaner
/// restores it by value modification.
#[test]
fn e10_cfd_detection_and_cleaning() {
    let mut db = Database::new();
    db.create_relation(RelationSchema::new(
        "Cust",
        ["CC", "AC", "Phone", "Name", "Street", "City", "Zip"],
    ))
    .unwrap();
    db.insert(
        "Cust",
        tuple![44, 131, "1234567", "mike", "mayfield", "NYC", "EH4 8LE"],
    )
    .unwrap();
    db.insert(
        "Cust",
        tuple![44, 131, "3456789", "rick", "crichton", "NYC", "EH4 8LE"],
    )
    .unwrap();
    db.insert(
        "Cust",
        tuple![1, 908, "3456789", "joe", "mtn ave", "NYC", "07974"],
    )
    .unwrap();
    let fd1 = FunctionalDependency::new("Cust", ["CC", "AC", "Phone"], ["Street", "City", "Zip"]);
    let fd2 = FunctionalDependency::new("Cust", ["CC", "AC"], ["City"]);
    assert!(fd1.is_satisfied(&db).unwrap());
    assert!(fd2.is_satisfied(&db).unwrap());
    let cfd = ConditionalFd::new(
        "Cust",
        vec![("CC", Some(Value::int(44))), ("Zip", None)],
        "Street",
        None,
    );
    assert!(!cfd.is_satisfied(&db).unwrap());
    assert_eq!(
        cfd.violations(&db).unwrap(),
        [[Tid(1), Tid(2)].into()].into()
    );
    let spec = CleaningSpec::new().with_cfd(cfd);
    let cleaned = clean(&db, &spec, &CostModel::uniform()).unwrap();
    assert!(spec.is_clean(&cleaned.db).unwrap());
    assert_eq!(cleaned.fixes.len(), 1);
}

/// E11 (Ex. 7.1): S(a3) is a counterfactual cause (ρ = 1); R(a4,a3),
/// R(a3,a3) and S(a4) are actual causes with ρ = ½; nothing else.
#[test]
fn e11_causes_and_responsibility() {
    let db = rs_db();
    let q = UnionQuery::single(parse_query("Q() :- S(x), R(x, y), S(y)").unwrap());
    let causes = actual_causes(&db, &q);
    let rho = |t: u64| {
        causes
            .iter()
            .find(|c| c.tid == Tid(t))
            .map(|c| c.responsibility)
            .unwrap_or(0.0)
    };
    assert_eq!(rho(6), 1.0);
    assert_eq!(rho(1), 0.5);
    assert_eq!(rho(3), 0.5);
    assert_eq!(rho(4), 0.5);
    assert_eq!(rho(2), 0.0);
    assert_eq!(rho(5), 0.0);
    let mracs = most_responsible_causes(&db, &q);
    assert_eq!(mracs.len(), 1);
    assert_eq!(mracs[0].tid, Tid(6));
}

/// E12 (Ex. 7.2): the same causes through the extended repair program, with
/// CauCon pairs read off model M2.
#[test]
fn e12_causality_via_repair_programs() {
    let db = rs_db();
    let q = UnionQuery::single(parse_query("Q() :- S(x), R(x, y), S(y)").unwrap());
    let via_asp = causes_via_asp(&db, &q).unwrap();
    let direct = actual_causes(&db, &q);
    let norm = |cs: &[Cause]| -> Vec<(Tid, String)> {
        let mut v: Vec<_> = cs
            .iter()
            .map(|c| (c.tid, format!("{:.4}", c.responsibility)))
            .collect();
        v.sort();
        v
    };
    assert_eq!(norm(&via_asp), norm(&direct));
    // And through plain repairs (the §7 connection).
    let via_rep = causes_via_repairs(&db, &q).unwrap();
    assert_eq!(norm(&via_rep), norm(&direct));
}

/// E13 (Ex. 7.3): attribute-level causes — ι6[1] counterfactual, ι1[2] and
/// ι3[2] actual with ρ = ½.
#[test]
fn e13_attribute_level_causes() {
    let db = rs_db();
    let q = UnionQuery::single(parse_query("Q() :- S(x), R(x, y), S(y)").unwrap());
    let causes = attribute_causes(&db, &q).unwrap();
    let find = |tid: u64, pos: usize| {
        causes
            .iter()
            .find(|c| c.cell.tid == Tid(tid) && c.cell.position == pos)
    };
    assert!(find(6, 0).unwrap().counterfactual);
    assert_eq!(find(1, 1).unwrap().responsibility, 0.5);
    assert_eq!(find(3, 1).unwrap().responsibility, 0.5);
}

/// E14 (Ex. 7.4): causality under the IND ψ — all three queries, exactly
/// the paper's responsibilities.
#[test]
fn e14_causality_under_integrity_constraints() {
    let mut db = Database::new();
    db.create_relation(RelationSchema::new("Dep", ["DName", "TStaff"]))
        .unwrap();
    db.create_relation(RelationSchema::new("Course", ["CName", "TStaff", "DName"]))
        .unwrap();
    db.insert("Dep", tuple!["Computing", "John"]).unwrap(); // ι1
    db.insert("Dep", tuple!["Philosophy", "Patrick"]).unwrap(); // ι2
    db.insert("Dep", tuple!["Math", "Kevin"]).unwrap(); // ι3
    db.insert("Course", tuple!["COM08", "John", "Computing"])
        .unwrap(); // ι4
    db.insert("Course", tuple!["Math01", "Kevin", "Math"])
        .unwrap(); // ι5
    db.insert("Course", tuple!["HIST02", "Patrick", "Philosophy"])
        .unwrap(); // ι6
    db.insert("Course", tuple!["Math08", "Eli", "Math"])
        .unwrap(); // ι7
    db.insert("Course", tuple!["COM01", "John", "Computing"])
        .unwrap(); // ι8
    let psi =
        ConstraintSet::from_iter([Tgd::parse("psi", "Course(u, y, x) :- Dep(x, y)").unwrap()]);
    assert!(psi.is_satisfied(&db).unwrap());

    let rho = |cs: &[Cause], t: u64| {
        cs.iter()
            .find(|c| c.tid == Tid(t))
            .map(|c| c.responsibility)
            .unwrap_or(0.0)
    };

    // (A) without ψ: ι1 counterfactual; ι4, ι8 with ρ = ½.
    let q_a =
        UnionQuery::single(parse_query("Q() :- Dep(y, 'John'), Course(z, 'John', y)").unwrap());
    let plain = causes_under_ics(&db, &ConstraintSet::new(), &q_a, None).unwrap();
    assert_eq!(rho(&plain, 1), 1.0);
    assert_eq!(rho(&plain, 4), 0.5);
    assert_eq!(rho(&plain, 8), 0.5);
    // (A) under ψ: ι4 and ι8 cease to be causes.
    let under = causes_under_ics(&db, &psi, &q_a, None).unwrap();
    assert_eq!(rho(&under, 1), 1.0);
    assert_eq!(rho(&under, 4), 0.0);
    assert_eq!(rho(&under, 8), 0.0);

    // (B) under ψ: same causes as (A) — Q ≡_ψ Q1.
    let q_b = UnionQuery::single(parse_query("Q() :- Dep(y, 'John')").unwrap());
    let b = causes_under_ics(&db, &psi, &q_b, None).unwrap();
    assert_eq!(rho(&b, 1), 1.0);
    assert_eq!(b.len(), 1);

    // (C): without ψ, ι4/ι8 with ρ = ½ and ι1 not a cause; under ψ the
    // responsibilities drop to ⅓.
    let q_c = UnionQuery::single(parse_query("Q() :- Course(z, 'John', y)").unwrap());
    let c_plain = causes_under_ics(&db, &ConstraintSet::new(), &q_c, None).unwrap();
    assert_eq!(rho(&c_plain, 4), 0.5);
    assert_eq!(rho(&c_plain, 8), 0.5);
    assert_eq!(rho(&c_plain, 1), 0.0);
    let c_under = causes_under_ics(&db, &psi, &q_c, None).unwrap();
    assert!((rho(&c_under, 4) - 1.0 / 3.0).abs() < 1e-12);
    assert!((rho(&c_under, 8) - 1.0 / 3.0).abs() < 1e-12);
    assert_eq!(rho(&c_under, 1), 0.0);
}

/// Bonus: Example 3.5's repair program written *textually* in the ASP
/// syntax, solved by the bundled engine — the full DLV-replacement loop.
#[test]
fn e4b_textual_repair_program() {
    let src = "\
        s(4, A4).\n\
        s(5, A2).\n\
        s(6, A3).\n\
        r(1, A4, A3).\n\
        r(2, A2, A1).\n\
        r(3, A3, A3).\n\
        sp(t1, x, D) | rp(t2, x, y, D) | sp(t3, y, D) :- s(t1, x), r(t2, x, y), s(t3, y).\n\
        sp(t, x, S) :- s(t, x), not sp(t, x, D).\n\
        rp(t, x, y, S) :- r(t, x, y), not rp(t, x, y, D).";
    let program = parse_asp(src).unwrap();
    let g = inconsistent_db::asp::ground(&program).unwrap();
    let models = stable_models(&g);
    assert_eq!(models.len(), 3);
}
