//! The cqa-exec determinism contract, property-tested: every parallelized
//! entry point returns byte-identical results at any thread count. Each
//! property runs the same computation under `with_threads(1)` (the exact
//! sequential code path), `with_threads(2)` and `with_threads(8)` and
//! asserts equality — on random instances, so scheduling races that leak
//! into results would surface as shrunk counterexamples.

use cqa_constraints::{ConflictHypergraph, ConstraintSet, DenialConstraint, KeyConstraint};
use cqa_exec::with_threads;
use cqa_query::{parse_query, UnionQuery};
use cqa_relation::{tuple, Database, RelationSchema, Tid};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Run `f` at 1, 2 and 8 threads and return the three results.
fn at_thread_counts<R>(f: impl Fn() -> R) -> [R; 3] {
    [
        with_threads(1, &f),
        with_threads(2, &f),
        with_threads(8, &f),
    ]
}

/// A `T(K, V)` instance with key-group conflicts: `groups` maps each key to
/// its value count (size ≥ 2 means a violation of `key T(K)`).
fn key_instance(groups: &[u8]) -> (Database, ConstraintSet) {
    let mut db = Database::new();
    db.create_relation(RelationSchema::new("T", ["K", "V"]))
        .unwrap();
    for (k, &size) in groups.iter().enumerate() {
        for v in 0..size.max(1) {
            db.insert("T", tuple![k as i64, v as i64]).unwrap();
        }
    }
    let sigma = ConstraintSet::from_iter([KeyConstraint::new("T", ["K"])]);
    (db, sigma)
}

/// Random small hypergraphs (same shape as tests/property_invariants.rs).
fn arb_hypergraph() -> impl Strategy<Value = ConflictHypergraph> {
    (
        2usize..8,
        proptest::collection::vec(proptest::collection::btree_set(1u64..8, 1..4), 0..8),
    )
        .prop_map(|(n, edges)| {
            let nodes: BTreeSet<Tid> = (1..=n as u64).map(Tid).collect();
            let edges: Vec<BTreeSet<Tid>> = edges
                .into_iter()
                .map(|e| {
                    e.into_iter()
                        .filter(|v| *v <= n as u64)
                        .map(Tid)
                        .collect::<BTreeSet<Tid>>()
                })
                .filter(|e: &BTreeSet<Tid>| !e.is_empty())
                .collect();
            ConflictHypergraph::new(nodes, edges)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn certain_and_possible_answers_are_thread_count_invariant(
        groups in proptest::collection::vec(1u8..4, 1..6),
    ) {
        let (db, sigma) = key_instance(&groups);
        let instances: Vec<Database> = cqa_core::s_repairs(&db, &sigma)
            .unwrap()
            .into_iter()
            .map(|r| r.into_db())
            .collect();
        let q = UnionQuery::single(parse_query("Q(k, v) :- T(k, v)").unwrap());
        let [a, b, c] = at_thread_counts(|| cqa_core::certain_over(&instances, &q));
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
        let class = cqa_core::RepairClass::Subset;
        let [a, b, c] =
            at_thread_counts(|| cqa_core::possible_answers(&db, &sigma, &q, &class).unwrap());
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
        let qb = UnionQuery::single(parse_query("Q() :- T(k, k)").unwrap());
        let [a, b, c] =
            at_thread_counts(|| cqa_core::certainly_true(&db, &sigma, &qb, &class).unwrap());
        prop_assert_eq!(a, b);
        prop_assert_eq!(a, c);
    }

    #[test]
    fn hitting_set_search_is_thread_count_invariant(g in arb_hypergraph()) {
        let [a, b, c] = at_thread_counts(|| g.minimal_hitting_sets(None));
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
        let [a, b, c] = at_thread_counts(|| g.minimum_hitting_set_size());
        prop_assert_eq!(a, b);
        prop_assert_eq!(a, c);
        let [a, b, c] = at_thread_counts(|| g.minimum_hitting_set());
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
        let [a, b, c] = at_thread_counts(|| g.minimum_hitting_sets());
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
    }

    #[test]
    fn grounding_is_thread_count_invariant(groups in proptest::collection::vec(1u8..4, 1..5)) {
        let (db, sigma) = key_instance(&groups);
        let [a, b, c] = at_thread_counts(|| {
            let mut rp = cqa_asp::RepairProgram::build(&db, &sigma).unwrap();
            rp.add_c_repair_weak_constraints();
            rp.ground().unwrap()
        });
        // GroundProgram has no PartialEq; identical numbering is part of the
        // contract, so compare the interned tables field-by-field.
        for other in [&b, &c] {
            prop_assert_eq!(&a.rules, &other.rules);
            prop_assert_eq!(&a.weak, &other.weak);
            prop_assert_eq!(&a.atom_table, &other.atom_table);
        }
    }

    #[test]
    fn repair_enumeration_is_thread_count_invariant(
        groups in proptest::collection::vec(1u8..4, 1..5),
    ) {
        let (db, sigma) = key_instance(&groups);
        let [a, b, c] = at_thread_counts(|| {
            cqa_core::s_repairs(&db, &sigma)
                .unwrap()
                .into_iter()
                .map(|r| (r.deleted, r.inserted))
                .collect::<Vec<_>>()
        });
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
    }
}

#[test]
fn actual_causes_are_thread_count_invariant() {
    // A denser, fixed instance for the causality path: the Example 3.5
    // κ-scenario plus a wide star.
    let mut db = Database::new();
    db.create_relation(RelationSchema::new("R", ["A", "B"]))
        .unwrap();
    db.create_relation(RelationSchema::new("S", ["A"])).unwrap();
    for (a, b) in [(4, 3), (2, 1), (3, 3), (1, 4), (3, 2)] {
        db.insert("R", tuple![a, b]).unwrap();
    }
    for a in [4, 2, 3, 1] {
        db.insert("S", tuple![a]).unwrap();
    }
    let q = UnionQuery::single(parse_query("Q() :- S(x), R(x, y), S(y)").unwrap());
    let [a, b, c] = at_thread_counts(|| cqa_causality::actual_causes(&db, &q));
    assert_eq!(a, b);
    assert_eq!(a, c);
    assert!(!a.is_empty());
}

#[test]
fn denial_violations_are_thread_count_invariant() {
    // The hash-join fast path is sequential but shares the determinism
    // contract with everything downstream of it.
    let mut db = Database::new();
    db.create_relation(RelationSchema::new("T", ["K", "V"]))
        .unwrap();
    for i in 0..40i64 {
        db.insert("T", tuple![i / 3, i]).unwrap();
    }
    let dc = DenialConstraint::parse("fd", "T(x, y), T(x, z), y != z").unwrap();
    let [a, b, c] = at_thread_counts(|| dc.violations(&db));
    assert_eq!(a, b);
    assert_eq!(a, c);
    assert!(!a.is_empty());
}

// ---------------------------------------------------------------------------
// Truncated runs: the determinism contract extends to budgeted execution.
// A logical budget (steps / items) forces the sequential code paths, so the
// *partial* result — which prefix of the search got explored — is also
// byte-identical at any thread count. Each closure builds a fresh `Budget`
// because budgets latch: a tripped budget stays exhausted forever.
// ---------------------------------------------------------------------------

use cqa_core::RepairOptions;
use cqa_exec::Budget;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn truncated_repair_enumeration_is_thread_count_invariant(
        groups in proptest::collection::vec(2u8..4, 2..6),
        steps in 1u64..400,
    ) {
        let (db, sigma) = key_instance(&groups);
        let base = Arc::new(db);
        let [a, b, c] = at_thread_counts(|| {
            let budget = Budget::steps(steps);
            let out =
                cqa_core::s_repairs_budgeted(&base, &sigma, &RepairOptions::default(), &budget)
                    .unwrap();
            let trunc = out.truncation();
            let repairs: Vec<_> = out
                .into_value()
                .into_iter()
                .map(|r| (r.deleted, r.inserted))
                .collect();
            (trunc, repairs)
        });
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
    }

    #[test]
    fn truncated_cqa_is_thread_count_invariant(
        groups in proptest::collection::vec(2u8..4, 2..6),
        steps in 1u64..400,
    ) {
        let (db, sigma) = key_instance(&groups);
        let q = UnionQuery::single(parse_query("Q(k) :- T(k, v)").unwrap());
        let class = cqa_core::RepairClass::Subset;
        let [a, b, c] = at_thread_counts(|| {
            let budget = Budget::steps(steps);
            let out = cqa_core::consistent_answers_budgeted(&db, &sigma, &q, &class, &budget)
                .unwrap();
            (out.truncation(), out.into_value())
        });
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
    }

    #[test]
    fn truncated_hitting_set_search_is_thread_count_invariant(
        g in arb_hypergraph(),
        steps in 1u64..200,
    ) {
        let [a, b, c] = at_thread_counts(|| {
            let budget = Budget::steps(steps);
            let out = g.minimal_hitting_sets_budgeted(None, &budget);
            (out.truncation(), out.into_value())
        });
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
        let [a, b, c] = at_thread_counts(|| {
            let budget = Budget::steps(steps);
            let out = g.minimum_hitting_sets_budgeted(&budget);
            (out.truncation(), out.into_value())
        });
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
    }

    #[test]
    fn truncated_causes_are_thread_count_invariant(
        groups in proptest::collection::vec(2u8..4, 2..5),
        steps in 1u64..200,
    ) {
        let (db, _) = key_instance(&groups);
        let q = UnionQuery::single(
            parse_query("Q() :- T(x, y), T(x, z), y != z").unwrap(),
        );
        let [a, b, c] = at_thread_counts(|| {
            let budget = Budget::steps(steps);
            let out = cqa_causality::actual_causes_budgeted(&db, &q, &budget);
            (out.truncation(), out.into_value())
        });
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
    }
}
