//! Plan-cache and join-order equivalence, property-tested: the subplan
//! cache is a pure memoisation — certain and possible answers must be
//! *byte-identical* with sharing on and off, at 1 and 4 threads, and under
//! random step budgets (same answers, same truncation outcome, because
//! budget ticks are charged before evaluation and a cache hit never moves a
//! truncation point). Independently, any *admissible* join order — any
//! permutation of a query's atoms — must produce the same answer set as the
//! planner's cost-based choice: the orderer only moves work, never answers.

use cqa_constraints::{ConstraintSet, KeyConstraint};
use cqa_core::{consistent_answers, consistent_answers_budgeted, possible_answers, RepairClass};
use cqa_exec::{with_plan_cache, with_threads, Budget};
use cqa_query::{
    eval_cq, eval_cq_ordered, parse_query, parse_ucq, reset_plan_cache, NullSemantics, UnionQuery,
};
use cqa_relation::{tuple, Database, RelationSchema};
use proptest::prelude::*;

/// A two-relation instance with key-group conflicts in `T` under
/// `key T(K)`, plus a clean dimension relation `D` to give the join
/// orderer a real choice. `groups[k]` is the size of key group `k`.
fn key_instance(groups: &[u8]) -> (Database, ConstraintSet) {
    let mut db = Database::new();
    db.create_relation(RelationSchema::new("T", ["K", "V"]))
        .unwrap();
    db.create_relation(RelationSchema::new("D", ["V", "W"]))
        .unwrap();
    for (k, &size) in groups.iter().enumerate() {
        for v in 0..i64::from(size.max(1)) {
            db.insert("T", tuple![k as i64, v]).unwrap();
        }
    }
    for v in 0..4i64 {
        db.insert("D", tuple![v, v * 10]).unwrap();
    }
    let sigma = ConstraintSet::from_iter([KeyConstraint::new("T", ["K"])]);
    (db, sigma)
}

/// The query pool: joins, projections, and a Boolean query, all over the
/// shared `T`/`D` schema so the cache sees repeated (query, content) keys.
fn query_pool() -> Vec<UnionQuery> {
    [
        "Q(x) :- T(x, y)",
        "Q(x, w) :- T(x, y), D(y, w)",
        "Q() :- T(x, y), D(y, w)",
        "Q(y) :- T(x, y), T(z, y)",
    ]
    .iter()
    .map(|q| parse_ucq(q).unwrap())
    .collect()
}

/// Deterministic Fisher–Yates over an splitmix-style stream: proptest's
/// stand-in has no permutation strategy, so a seed drives the shuffle.
fn permutation(n: usize, mut seed: u64) -> Vec<usize> {
    let mut next = move || {
        seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Certain and possible answers are byte-identical with the subplan
    /// cache on and off, at 1 and 4 threads. The cache-on pass runs twice
    /// (cold, then warm) so hits — not just misses — are exercised.
    #[test]
    fn answers_identical_with_cache_on_and_off(
        groups in proptest::collection::vec(1u8..4, 1..6),
        class_pick in 0usize..2,
    ) {
        let (db, sigma) = key_instance(&groups);
        let class = if class_pick == 0 { RepairClass::Subset } else { RepairClass::Cardinality };
        for query in &query_pool() {
            for threads in [1usize, 4] {
                let (off_c, off_p) = with_threads(threads, || with_plan_cache(false, || {
                    (
                        consistent_answers(&db, &sigma, query, &class).unwrap(),
                        possible_answers(&db, &sigma, query, &class).unwrap(),
                    )
                }));
                reset_plan_cache();
                let (cold_c, cold_p, warm_c, warm_p) =
                    with_threads(threads, || with_plan_cache(true, || {
                        let cold_c = consistent_answers(&db, &sigma, query, &class).unwrap();
                        let cold_p = possible_answers(&db, &sigma, query, &class).unwrap();
                        let warm_c = consistent_answers(&db, &sigma, query, &class).unwrap();
                        let warm_p = possible_answers(&db, &sigma, query, &class).unwrap();
                        (cold_c, cold_p, warm_c, warm_p)
                    }));
                prop_assert_eq!(&off_c, &cold_c, "certain drifted cache on/off");
                prop_assert_eq!(&off_p, &cold_p, "possible drifted cache on/off");
                prop_assert_eq!(&cold_c, &warm_c, "certain drifted cold/warm");
                prop_assert_eq!(&cold_p, &warm_p, "possible drifted cold/warm");
            }
        }
    }

    /// Under a random step budget the cache must not move the truncation
    /// point: the same budget yields the same answers *and* the same
    /// truncation outcome with sharing on and off (ticks are charged
    /// before evaluation, so a hit costs what a miss costs in steps).
    #[test]
    fn budgeted_truncation_agrees_with_cache_on_and_off(
        groups in proptest::collection::vec(2u8..4, 2..5),
        steps in 1u64..2000,
    ) {
        let (db, sigma) = key_instance(&groups);
        let query = parse_ucq("Q(x) :- T(x, y)").unwrap();
        let run = |cache_on: bool| {
            reset_plan_cache();
            with_plan_cache(cache_on, || {
                let budget = Budget::steps(steps);
                consistent_answers_budgeted(
                    &db, &sigma, &query, &RepairClass::Subset, &budget,
                ).unwrap()
            })
        };
        let off = run(false);
        let on = run(true);
        prop_assert_eq!(
            off.truncation().is_some(),
            on.truncation().is_some(),
            "cache moved the truncation point at {} steps", steps
        );
        prop_assert_eq!(off.into_value(), on.into_value(), "budgeted answers drifted");
    }

    /// Any admissible join order gives the same answer set: a random
    /// permutation of the atoms, fed through `eval_cq_ordered`, matches
    /// the planner's own order under both null semantics.
    #[test]
    fn any_admissible_join_order_is_answer_preserving(
        groups in proptest::collection::vec(1u8..5, 1..6),
        seed in proptest::prelude::any::<u64>(),
    ) {
        let (db, _) = key_instance(&groups);
        for text in ["Q(x, w) :- T(x, y), D(y, w)", "Q(y) :- T(x, y), T(z, y), D(y, w)"] {
            let cq = parse_query(text).unwrap();
            let order = permutation(cq.atoms.len(), seed);
            for mode in [NullSemantics::Sql, NullSemantics::Structural] {
                let planned = eval_cq(&db, &cq, mode);
                let forced = eval_cq_ordered(&db, &cq, mode, &order);
                prop_assert_eq!(&planned, &forced,
                    "order {:?} drifted on {} under {:?}", &order, text, mode);
            }
        }
    }
}

/// A non-permutation order (out-of-range or duplicated indices) must fall
/// back to the planner, never panic or drop atoms.
#[test]
fn inadmissible_orders_fall_back_to_the_planner() {
    let (db, _) = key_instance(&[2, 3]);
    let cq = parse_query("Q(x, w) :- T(x, y), D(y, w)").unwrap();
    let expect = eval_cq(&db, &cq, NullSemantics::Sql);
    for bad in [vec![], vec![0], vec![0, 0], vec![0, 7], vec![1, 0, 1]] {
        let got = eval_cq_ordered(&db, &cq, NullSemantics::Sql, &bad);
        assert_eq!(expect, got, "bad order {bad:?} changed answers");
    }
}
