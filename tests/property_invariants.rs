//! Property-based tests (proptest) on the core invariants the theory rests
//! on: total value order, Kleene logic, hitting-set duality, repair
//! minimality and consistency, CQA monotonicity, and causality bounds.

use cqa_constraints::ConflictHypergraph;
use inconsistent_db::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i8>().prop_map(|i| Value::Int(i as i64)),
        prop_oneof![Just("a"), Just("b"), Just("c"), Just("longer")].prop_map(Value::str),
        any::<bool>().prop_map(Value::Bool),
        (0u32..3).prop_map(Value::Null),
        (-2.0f64..2.0).prop_map(Value::Float),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn value_order_is_total_and_antisymmetric(a in arb_value(), b in arb_value()) {
        use std::cmp::Ordering;
        match a.cmp(&b) {
            Ordering::Less => prop_assert_eq!(b.cmp(&a), Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(b.cmp(&a), Ordering::Less),
            Ordering::Equal => {
                prop_assert_eq!(b.cmp(&a), Ordering::Equal);
                prop_assert_eq!(&a, &b);
            }
        }
    }

    #[test]
    fn value_order_is_transitive(a in arb_value(), b in arb_value(), c in arb_value()) {
        let mut v = [a, b, c];
        v.sort();
        prop_assert!(v[0] <= v[1] && v[1] <= v[2] && v[0] <= v[2]);
    }

    #[test]
    fn eq_values_hash_alike(a in arb_value(), b in arb_value()) {
        use std::hash::{Hash, Hasher};
        fn h(v: &Value) -> u64 {
            let mut s = std::collections::hash_map::DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        if a == b {
            prop_assert_eq!(h(&a), h(&b));
        }
    }

    #[test]
    fn kleene_de_morgan(a in 0u8..3, b in 0u8..3) {
        use inconsistent_db::relation::Truth;
        let t = |x: u8| match x {
            0 => Truth::False,
            1 => Truth::Unknown,
            _ => Truth::True,
        };
        let (a, b) = (t(a), t(b));
        prop_assert_eq!(a.and(b).not(), a.not().or(b.not()));
        prop_assert_eq!(a.or(b).not(), a.not().and(b.not()));
        prop_assert_eq!(a.not().not(), a);
    }

    #[test]
    fn sql_eq_never_true_on_nulls(a in arb_value(), b in arb_value()) {
        use inconsistent_db::relation::{sql_eq, Truth};
        if a.is_null() || b.is_null() {
            prop_assert_eq!(sql_eq(&a, &b), Truth::Unknown);
        }
    }
}

/// Random small hyper-graphs: edges over vertices 1..=n.
fn arb_hypergraph() -> impl Strategy<Value = ConflictHypergraph> {
    (
        2usize..7,
        proptest::collection::vec(proptest::collection::btree_set(1u64..7, 1..4), 0..6),
    )
        .prop_map(|(n, edges)| {
            let nodes: BTreeSet<Tid> = (1..=n as u64).map(Tid).collect();
            let edges: Vec<BTreeSet<Tid>> = edges
                .into_iter()
                .map(|e| {
                    e.into_iter()
                        .filter(|v| *v <= n as u64)
                        .map(Tid)
                        .collect::<BTreeSet<Tid>>()
                })
                .filter(|e: &BTreeSet<Tid>| !e.is_empty())
                .collect();
            ConflictHypergraph::new(nodes, edges)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn minimal_hitting_sets_are_hitting_and_minimal(g in arb_hypergraph()) {
        let sets = g.minimal_hitting_sets(None);
        prop_assert!(!sets.is_empty()); // at least the empty set when no edges
        for h in &sets {
            prop_assert!(g.is_hitting_set(h));
            prop_assert!(g.is_minimal_hitting_set(h));
        }
        // Pairwise incomparable.
        for (i, a) in sets.iter().enumerate() {
            for (j, b) in sets.iter().enumerate() {
                if i != j {
                    prop_assert!(!a.is_subset(b));
                }
            }
        }
    }

    #[test]
    fn minimum_hitting_sets_have_minimum_size(g in arb_hypergraph()) {
        let k = g.minimum_hitting_set_size();
        let minima = g.minimum_hitting_sets();
        let all = g.minimal_hitting_sets(None);
        let true_min = all.iter().map(BTreeSet::len).min().unwrap_or(0);
        prop_assert_eq!(k, true_min);
        for m in &minima {
            prop_assert_eq!(m.len(), k);
            prop_assert!(g.is_hitting_set(m));
        }
        // Every minimal hitting set of size k is among the minima.
        let minima_set: BTreeSet<_> = minima.into_iter().collect();
        for h in all.into_iter().filter(|h| h.len() == k) {
            prop_assert!(minima_set.contains(&h));
        }
    }

    #[test]
    fn greedy_hitting_set_is_valid(g in arb_hypergraph()) {
        let h = g.greedy_hitting_set();
        prop_assert!(g.is_hitting_set(&h));
        prop_assert!(g.is_minimal_hitting_set(&h));
        prop_assert!(h.len() >= g.minimum_hitting_set_size());
    }

    #[test]
    fn independent_sets_are_complements_of_hitting_sets(g in arb_hypergraph()) {
        for kept in g.maximal_independent_sets(None) {
            prop_assert!(g.is_independent(&kept));
            let complement: BTreeSet<Tid> = g.nodes.difference(&kept).copied().collect();
            prop_assert!(g.is_hitting_set(&complement));
        }
    }
}

/// A random instance of relation T(K, V) with key K.
fn arb_key_instance() -> impl Strategy<Value = Database> {
    proptest::collection::vec((0i64..4, 0i64..4), 1..9).prop_map(|rows| {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("T", ["K", "V"]))
            .unwrap();
        for (k, v) in rows {
            db.insert("T", tuple![k, v]).unwrap();
        }
        db
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn s_repairs_are_consistent_minimal_and_incomparable(db in arb_key_instance()) {
        let sigma = ConstraintSet::from_iter([KeyConstraint::new("T", ["K"])]);
        let repairs = s_repairs(&db, &sigma).unwrap();
        prop_assert!(!repairs.is_empty());
        for r in &repairs {
            prop_assert!(sigma.is_satisfied(r.db()).unwrap());
            prop_assert!(is_repair(&db, r.db(), &sigma, RepairSemantics::Subset).unwrap());
        }
        for (i, a) in repairs.iter().enumerate() {
            for (j, b) in repairs.iter().enumerate() {
                if i != j {
                    prop_assert!(!a.delta().is_subset(b.delta()));
                }
            }
        }
        // Repair count matches the product formula for keys.
        let key = KeyConstraint::new("T", ["K"]);
        let expected = inconsistent_db::core::count_key_repairs(&db, &key).unwrap();
        prop_assert_eq!(repairs.len() as u128, expected);
    }

    #[test]
    fn c_repairs_are_minimum_s_repairs(db in arb_key_instance()) {
        let sigma = ConstraintSet::from_iter([KeyConstraint::new("T", ["K"])]);
        let srepairs = s_repairs(&db, &sigma).unwrap();
        let crepairs = c_repairs(&db, &sigma).unwrap();
        let min = srepairs.iter().map(|r| r.delta_size()).min().unwrap();
        prop_assert!(crepairs.iter().all(|r| r.delta_size() == min));
        let s_deltas: BTreeSet<_> = srepairs.iter().map(|r| r.delta().clone()).collect();
        prop_assert!(crepairs.iter().all(|r| s_deltas.contains(r.delta())));
    }

    #[test]
    fn certain_answers_are_possible_and_monotone(db in arb_key_instance()) {
        let sigma = ConstraintSet::from_iter([KeyConstraint::new("T", ["K"])]);
        let q = UnionQuery::single(parse_query("Q(k, v) :- T(k, v)").unwrap());
        let certain = consistent_answers(&db, &sigma, &q, &RepairClass::Subset).unwrap();
        let possible = possible_answers(&db, &sigma, &q, &RepairClass::Subset).unwrap();
        prop_assert!(certain.is_subset(&possible));
        // Possible answers are exactly the original tuples (keys only delete).
        let original = eval_ucq(&db, &q, NullSemantics::Structural);
        prop_assert_eq!(possible, original);
    }

    #[test]
    fn key_rewriting_agrees_with_repair_cqa(db in arb_key_instance()) {
        let sigma = ConstraintSet::from_iter([KeyConstraint::new("T", ["K"])]);
        let q = parse_query("Q(k, v) :- T(k, v)").unwrap();
        let keys = [("T".to_string(), vec![0usize])].into();
        let fo = rewrite_key_query(&q, &keys).unwrap();
        let via_rw = eval_fo(&db, &fo, NullSemantics::Structural);
        let via_rep = consistent_answers(&db, &sigma, &UnionQuery::single(q), &RepairClass::Subset).unwrap();
        prop_assert_eq!(via_rw, via_rep);
    }

    #[test]
    fn projection_rewriting_agrees_with_repair_cqa(db in arb_key_instance()) {
        let sigma = ConstraintSet::from_iter([KeyConstraint::new("T", ["K"])]);
        let q = parse_query("Q(k) :- T(k, v)").unwrap();
        let keys = [("T".to_string(), vec![0usize])].into();
        let fo = rewrite_key_query(&q, &keys).unwrap();
        let via_rw = eval_fo(&db, &fo, NullSemantics::Structural);
        let via_rep = consistent_answers(&db, &sigma, &UnionQuery::single(q), &RepairClass::Subset).unwrap();
        prop_assert_eq!(via_rw, via_rep);
    }

    #[test]
    fn inconsistency_degree_is_a_fraction(db in arb_key_instance()) {
        let sigma = ConstraintSet::from_iter([KeyConstraint::new("T", ["K"])]);
        let deg = inconsistency_degree(&db, &sigma).unwrap();
        let gap = inconsistent_db::core::core_gap(&db, &sigma).unwrap();
        prop_assert!((0.0..=1.0).contains(&deg));
        prop_assert!(gap >= deg - 1e-12);
        let consistent = sigma.is_satisfied(&db).unwrap();
        prop_assert_eq!(deg == 0.0, consistent);
    }
}

/// A random instance of the two-relation DC scenario.
fn arb_dc_instance() -> impl Strategy<Value = Database> {
    (
        proptest::collection::vec((0i64..3, 0i64..3), 0..5),
        proptest::collection::vec(0i64..3, 0..4),
    )
        .prop_map(|(rs, ss)| {
            let mut db = Database::new();
            db.create_relation(RelationSchema::new("R", ["A", "B"]))
                .unwrap();
            db.create_relation(RelationSchema::new("S", ["A"])).unwrap();
            for (a, b) in rs {
                db.insert("R", tuple![a, b]).unwrap();
            }
            for s in ss {
                db.insert("S", tuple![s]).unwrap();
            }
            db
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn asp_repair_models_match_direct_engine(db in arb_dc_instance()) {
        let sigma = ConstraintSet::from_iter([
            DenialConstraint::parse("kappa", "S(x), R(x, y), S(y)").unwrap()
        ]);
        let rp = inconsistent_db::asp::RepairProgram::build(&db, &sigma).unwrap();
        let asp: BTreeSet<BTreeSet<Tid>> = rp
            .s_repair_models()
            .unwrap()
            .into_iter()
            .map(|m| m.deleted)
            .collect();
        let direct: BTreeSet<BTreeSet<Tid>> = s_repairs(&db, &sigma)
            .unwrap()
            .into_iter()
            .map(|r| r.deleted)
            .collect();
        prop_assert_eq!(asp, direct);
    }

    #[test]
    fn causality_paths_agree(db in arb_dc_instance()) {
        let q = UnionQuery::single(parse_query("Q() :- S(x), R(x, y), S(y)").unwrap());
        let direct = actual_causes(&db, &q);
        let via = causes_via_repairs(&db, &q).unwrap();
        let norm = |cs: &[Cause]| -> Vec<(Tid, String)> {
            let mut v: Vec<_> = cs
                .iter()
                .map(|c| (c.tid, format!("{:.6}", c.responsibility)))
                .collect();
            v.sort();
            v
        };
        prop_assert_eq!(norm(&direct), norm(&via));
        for c in &direct {
            prop_assert!(c.responsibility > 0.0 && c.responsibility <= 1.0);
            prop_assert_eq!(c.counterfactual, c.min_contingency.is_empty());
        }
    }

    #[test]
    fn attribute_repairs_restore_consistency(db in arb_dc_instance()) {
        let sigma = ConstraintSet::from_iter([
            DenialConstraint::parse("kappa", "S(x), R(x, y), S(y)").unwrap()
        ]);
        for r in attribute_repairs(&db, &sigma).unwrap() {
            prop_assert!(sigma.is_satisfied(&r.db).unwrap());
            prop_assert_eq!(r.db.total_tuples(), db.total_tuples());
        }
    }
}
