//! Schedule-perturbation fuzzing: the dynamic half of the workspace audit
//! (F17). The static rules (L001–L005) argue determinism from the shape of
//! the code; this suite *attacks* it — `cqa_exec::with_schedule_seed` arms
//! seeded yield/spin jitter before every pool cursor claim and seeded
//! steal-order shuffling in the branch queue, and each of the four parallel
//! hot paths (CQA folds, hitting-set search, grounding, responsibility)
//! must return byte-identical results across 16 perturbed 4-thread
//! schedules, the unperturbed 4-thread schedule, and the sequential
//! reference. Budgeted variants assert full `Outcome` equality, truncation
//! included.
//!
//! Run with: `cargo test --features schedule-fuzz --test schedule_fuzz`
#![cfg(feature = "schedule-fuzz")]

use cqa_constraints::{ConflictHypergraph, ConstraintSet, KeyConstraint};
use cqa_core::{RepairClass, RepairOptions};
use cqa_exec::{with_schedule_seed, with_threads, Budget};
use cqa_query::{parse_query, UnionQuery};
use cqa_relation::{tuple, Database, RelationSchema, Tid};
use std::collections::BTreeSet;
use std::fmt::Debug;
use std::sync::Arc;

const SEEDS: std::ops::RangeInclusive<u64> = 1..=16;

/// Assert `f` is schedule-independent: the unperturbed 4-thread run must
/// equal the sequential reference and every seeded 4-thread run.
fn assert_schedule_invariant<R: PartialEq + Debug>(label: &str, f: impl Fn() -> R) {
    let reference = with_threads(1, &f);
    let baseline = with_threads(4, &f);
    assert_eq!(baseline, reference, "{label}: 4 threads vs sequential");
    for seed in SEEDS {
        let got = with_schedule_seed(seed, || with_threads(4, &f));
        assert_eq!(got, baseline, "{label}: seed={seed}");
    }
}

/// The shared inconsistent instance: `T(K, V)` under `key T(K)` with mixed
/// group sizes, so repair enumeration has real breadth (2·3·2·3·2 = 72
/// subset repairs) and certain answers quantify over all of them.
fn key_instance() -> (Database, ConstraintSet) {
    let mut db = Database::new();
    db.create_relation(RelationSchema::new("T", ["K", "V"]))
        .unwrap();
    for (k, size) in [2, 3, 2, 3, 2, 1, 1].into_iter().enumerate() {
        for v in 0..size {
            db.insert("T", tuple![k as i64, v as i64]).unwrap();
        }
    }
    let sigma = ConstraintSet::from_iter([KeyConstraint::new("T", ["K"])]);
    (db, sigma)
}

/// A hypergraph whose hitting-set search tree has enough branches for the
/// queue to shuffle: 10 vertices, overlapping triples.
fn hypergraph() -> ConflictHypergraph {
    let nodes: BTreeSet<Tid> = (1..=10u64).map(Tid).collect();
    let edges: Vec<BTreeSet<Tid>> = [
        [1u64, 2, 3],
        [3, 4, 5],
        [5, 6, 7],
        [7, 8, 9],
        [9, 10, 1],
        [2, 5, 8],
        [1, 6, 9],
        [4, 8, 10],
    ]
    .into_iter()
    .map(|e| e.into_iter().map(Tid).collect())
    .collect();
    ConflictHypergraph::new(nodes, edges)
}

#[test]
fn cqa_folds_are_schedule_invariant() {
    let (db, sigma) = key_instance();
    let q = UnionQuery::single(parse_query("Q(k, v) :- T(k, v)").unwrap());
    let class = RepairClass::Subset;
    assert_schedule_invariant("consistent_answers", || {
        cqa_core::consistent_answers(&db, &sigma, &q, &class).unwrap()
    });
    assert_schedule_invariant("possible_answers", || {
        cqa_core::possible_answers(&db, &sigma, &q, &class).unwrap()
    });
}

#[test]
fn hitting_set_search_is_schedule_invariant() {
    let g = hypergraph();
    assert_schedule_invariant("minimal_hitting_sets", || g.minimal_hitting_sets(None));
    assert_schedule_invariant("minimum_hitting_sets", || g.minimum_hitting_sets());
}

#[test]
fn grounding_is_schedule_invariant() {
    let (db, sigma) = key_instance();
    assert_schedule_invariant("ground", || {
        let mut rp = cqa_asp::RepairProgram::build(&db, &sigma).unwrap();
        rp.add_c_repair_weak_constraints();
        let g = rp.ground().unwrap();
        // GroundProgram has no PartialEq; identical interning is part of
        // the contract, so compare the tables field by field.
        (g.rules.clone(), g.weak.clone(), g.atom_table.clone())
    });
}

#[test]
fn responsibility_is_schedule_invariant() {
    let mut db = Database::new();
    db.create_relation(RelationSchema::new("R", ["A", "B"]))
        .unwrap();
    db.create_relation(RelationSchema::new("S", ["A"])).unwrap();
    for (a, b) in [(4, 3), (2, 1), (3, 3), (1, 4), (3, 2), (2, 4), (4, 1)] {
        db.insert("R", tuple![a, b]).unwrap();
    }
    for a in [4, 2, 3, 1] {
        db.insert("S", tuple![a]).unwrap();
    }
    let q = UnionQuery::single(parse_query("Q() :- S(x), R(x, y), S(y)").unwrap());
    assert_schedule_invariant("actual_causes", || cqa_causality::actual_causes(&db, &q));
}

// ---------------------------------------------------------------------------
// Budgeted variants: a Truncated outcome — including *which* prefix of the
// search got explored — must be identical under every perturbed schedule.
// Each closure builds a fresh Budget because budgets latch.
// ---------------------------------------------------------------------------

/// Step budgets chosen to cover hard truncation, mid-search truncation,
/// and comfortable completion.
const STEP_BUDGETS: [u64; 4] = [3, 37, 311, 1_000_000];

#[test]
fn truncated_repair_enumeration_is_schedule_invariant() {
    let (db, sigma) = key_instance();
    let base = Arc::new(db);
    let mut saw_truncated = false;
    for steps in STEP_BUDGETS {
        assert_schedule_invariant(&format!("s_repairs steps={steps}"), || {
            let budget = Budget::steps(steps);
            let out =
                cqa_core::s_repairs_budgeted(&base, &sigma, &RepairOptions::default(), &budget)
                    .unwrap();
            let trunc = out.truncation();
            let repairs: Vec<_> = out
                .into_value()
                .into_iter()
                .map(|r| (r.deleted, r.inserted))
                .collect();
            (trunc, repairs)
        });
        let probe = Budget::steps(steps);
        saw_truncated |=
            cqa_core::s_repairs_budgeted(&base, &sigma, &RepairOptions::default(), &probe)
                .unwrap()
                .truncation()
                .is_some();
    }
    assert!(
        saw_truncated,
        "no budget actually truncated — weaken STEP_BUDGETS"
    );
}

#[test]
fn truncated_cqa_is_schedule_invariant() {
    let (db, sigma) = key_instance();
    let q = UnionQuery::single(parse_query("Q(k) :- T(k, v)").unwrap());
    let class = RepairClass::Subset;
    for steps in STEP_BUDGETS {
        assert_schedule_invariant(&format!("consistent_answers steps={steps}"), || {
            let budget = Budget::steps(steps);
            let out =
                cqa_core::consistent_answers_budgeted(&db, &sigma, &q, &class, &budget).unwrap();
            (out.truncation(), out.into_value())
        });
    }
}

#[test]
fn truncated_hitting_set_search_is_schedule_invariant() {
    let g = hypergraph();
    for steps in STEP_BUDGETS {
        assert_schedule_invariant(&format!("minimal_hitting_sets steps={steps}"), || {
            let budget = Budget::steps(steps);
            let out = g.minimal_hitting_sets_budgeted(None, &budget);
            (out.truncation(), out.into_value())
        });
    }
}

#[test]
fn truncated_responsibility_is_schedule_invariant() {
    let (db, _) = key_instance();
    let q = UnionQuery::single(parse_query("Q() :- T(x, y), T(x, z), y != z").unwrap());
    for steps in STEP_BUDGETS {
        assert_schedule_invariant(&format!("actual_causes steps={steps}"), || {
            let budget = Budget::steps(steps);
            let out = cqa_causality::actual_causes_budgeted(&db, &q, &budget);
            (out.truncation(), out.into_value())
        });
    }
}
