//! Property tests for `repaird` (PR 9): the server path is byte-identical
//! to the library path.
//!
//! The contract: for ANY sequence of mutations and queries, the transcript
//! produced by real TCP round-trips through a running server — keep-alive
//! framing, per-connection threads, admission gate and all — is **byte
//! identical** to calling the request handler directly in-process, at 1
//! worker thread and at 4, *including* deterministic step-budget
//! truncation. Sessions are independent tenants, so concurrent client
//! threads must not perturb any individual session's transcript.

use cqa_exec::{with_threads, AdmissionGate, CancelToken, ServiceGroup};
use cqa_server::{api, start, Request, ServerConfig, ServerState, SessionStore};
use proptest::collection::vec;
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::RwLock;

const DB: &str = "@relation T(K, V)\n0, 1\n0, 2\n1, 1\n2, 5\n";
const SIGMA: &str = "key T(K)\n";

/// One random request against a session. Tids are raw numbers: the
/// allocator is deterministic, so hitting a live tid (200 mutate) or a
/// dead one (400 with an `applied` count) is the same on every path —
/// error replies are part of the byte-identity contract too.
#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64),
    Delete(u64),
    Certain { steps: u64 },
    Possible,
    Repairs { cardinality: bool, steps: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        ((0i64..4), (0i64..9)).prop_map(|(k, v)| Op::Insert(k, v)),
        (0u64..10).prop_map(Op::Delete),
        (1u64..300).prop_map(|steps| Op::Certain { steps }),
        Just(Op::Possible),
        ((0u8..2), (1u64..300)).prop_map(|(c, steps)| Op::Repairs {
            cardinality: c == 1,
            steps,
        }),
    ]
}

/// Wire form of an op: (path suffix, JSON body).
fn render(op: &Op, id: u64) -> (String, String) {
    match op {
        Op::Insert(k, v) => (
            format!("/sessions/{id}/mutate"),
            format!(r#"{{"ops": [{{"op": "insert", "relation": "T", "row": [{k}, {v}]}}]}}"#),
        ),
        Op::Delete(tid) => (
            format!("/sessions/{id}/mutate"),
            format!(r#"{{"ops": [{{"op": "delete", "tid": {tid}}}]}}"#),
        ),
        Op::Certain { steps } => (
            format!("/sessions/{id}/query"),
            format!(r#"{{"query": "Q(x) :- T(x, y)", "budget_steps": {steps}}}"#),
        ),
        Op::Possible => (
            format!("/sessions/{id}/query"),
            r#"{"query": "Q(x) :- T(x, y)", "kind": "possible"}"#.to_string(),
        ),
        Op::Repairs { cardinality, steps } => (
            format!("/sessions/{id}/repairs"),
            format!(
                r#"{{"class": "{}", "budget_steps": {steps}}}"#,
                if *cardinality {
                    "cardinality"
                } else {
                    "subset"
                }
            ),
        ),
    }
}

fn create_body() -> String {
    format!(
        "{{\"db\": {}, \"constraints\": {}}}",
        cqa_server::Json::str(DB),
        cqa_server::Json::str(SIGMA)
    )
}

/// The library path: `api::handle` called directly, no sockets.
fn run_direct(sessions: &[Vec<Op>]) -> Vec<Vec<String>> {
    let state = ServerState {
        config: ServerConfig::default(),
        sessions: SessionStore::new(64),
        gate: AdmissionGate::new(64),
        stop: CancelToken::new(),
    };
    let slot = RwLock::new(None);
    let call = |method: &str, path: &str, body: &str| -> String {
        let req = Request {
            method: method.to_string(),
            path: path.to_string(),
            body: body.as_bytes().to_vec(),
            close: false,
        };
        let reply = api::handle(&state, &req, &slot);
        format!("{} {}", reply.status, reply.body)
    };
    let mut transcripts = Vec::new();
    for (i, ops) in sessions.iter().enumerate() {
        let mut t = vec![call("POST", "/sessions", &create_body())];
        let id = i as u64 + 1;
        for op in ops {
            let (path, body) = render(op, id);
            t.push(call("POST", &path, &body));
        }
        transcripts.push(t);
    }
    transcripts
}

fn send(stream: &mut TcpStream, method: &str, path: &str, body: &str) {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
}

fn read_reply(reader: &mut BufReader<TcpStream>) -> (u16, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        if line.trim_end().is_empty() {
            break;
        }
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
            .and_then(|v| v.parse().ok())
        {
            content_length = v;
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf8"))
}

/// The server path: a real listener, sessions created sequentially (so
/// ids are deterministic), then one concurrent keep-alive client thread
/// per session.
fn run_server(sessions: &[Vec<Op>]) -> Vec<Vec<String>> {
    let handle = start(ServerConfig::default()).expect("start");
    let addr = handle.addr();
    let mut transcripts: Vec<Vec<String>> = Vec::new();
    for _ in sessions {
        let mut stream = TcpStream::connect(addr).expect("connect");
        send(&mut stream, "POST", "/sessions", &create_body());
        let (status, body) = read_reply(&mut BufReader::new(stream));
        transcripts.push(vec![format!("{status} {body}")]);
    }
    let (tx, rx) = std::sync::mpsc::channel::<(usize, Vec<String>)>();
    let mut clients = ServiceGroup::new();
    for (i, ops) in sessions.iter().enumerate() {
        let ops = ops.clone();
        let tx = tx.clone();
        let spawned = clients.spawn("equivalence-client", move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut t = Vec::new();
            for op in &ops {
                let (path, body) = render(op, i as u64 + 1);
                send(&mut stream, "POST", &path, &body);
                let (status, body) = read_reply(&mut reader);
                t.push(format!("{status} {body}"));
            }
            tx.send((i, t)).expect("collector alive");
        });
        assert!(spawned, "could not spawn a client thread");
    }
    drop(tx);
    assert!(clients.join_all().is_empty(), "a client thread panicked");
    for (i, t) in rx {
        transcripts[i].extend(t);
    }
    handle.shutdown();
    handle.join();
    transcripts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Direct dispatch at 1 thread ≡ TCP server at 1 thread ≡ TCP server
    /// with concurrent clients at 4 threads, transcript-for-transcript.
    #[test]
    fn server_transcripts_match_library_path(
        sessions in vec(vec(arb_op(), 1..8), 1..4),
    ) {
        let direct = with_threads(1, || run_direct(&sessions));
        let serial = with_threads(1, || run_server(&sessions));
        prop_assert_eq!(&direct, &serial, "TCP framing changed a reply");
        let concurrent = with_threads(4, || run_server(&sessions));
        prop_assert_eq!(&direct, &concurrent, "thread count changed a reply");
    }
}

/// Deterministic truncation pin: a step budget that latches mid-repair
/// enumeration truncates at the same point over the wire as in-process.
#[test]
fn step_truncation_is_byte_identical_over_the_wire() {
    let ops = vec![vec![
        Op::Repairs {
            cardinality: false,
            steps: 2,
        },
        Op::Certain { steps: 1 },
        Op::Repairs {
            cardinality: true,
            steps: 3,
        },
    ]];
    let direct = with_threads(1, || run_direct(&ops));
    let over_wire = with_threads(4, || run_server(&ops));
    assert_eq!(direct, over_wire);
    let flat = direct.concat().join("\n");
    assert!(flat.contains("truncated"), "expected a truncation: {flat}");
}
