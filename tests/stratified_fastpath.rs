//! The analysis-selected stratified fast path must be indistinguishable
//! from the reference stable-model search: on random stratified programs
//! the bottom-up evaluation is exercised directly, and on repair programs
//! the public dispatcher (`stable_models`) — which consults the analysis —
//! must return byte-identical models to `stable_models_search`.

use cqa_asp::{ground, parse_asp, stable_models, stable_models_search, stable_models_stratified};
use cqa_constraints::{ConstraintSet, DenialConstraint, KeyConstraint};
use cqa_relation::{tuple, Database, RelationSchema};
use proptest::prelude::*;

const ATOMS: usize = 9;
const PER_LAYER: usize = 3;

/// Build a stratified propositional program from raw proptest draws: atom
/// `i` lives in layer `i / PER_LAYER`; positive body atoms are remapped
/// into layers `<=` the head's, negative ones into layers strictly below.
fn stratified_source(facts: &[usize], rules: &[(usize, Vec<usize>, Vec<usize>)]) -> String {
    let mut src = String::new();
    for f in facts {
        src.push_str(&format!("a{}().\n", f % ATOMS));
    }
    for (head, pos, neg) in rules {
        let h = head % ATOMS;
        let layer = h / PER_LAYER;
        let mut body: Vec<String> = pos
            .iter()
            .map(|p| format!("a{}()", p % (PER_LAYER * (layer + 1))))
            .collect();
        if layer > 0 {
            body.extend(
                neg.iter()
                    .map(|n| format!("not a{}()", n % (PER_LAYER * layer))),
            );
        }
        if body.is_empty() {
            src.push_str(&format!("a{h}().\n"));
        } else {
            src.push_str(&format!("a{h}() :- {}.\n", body.join(", ")));
        }
    }
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fast_path_agrees_with_search_on_random_stratified_programs(
        facts in proptest::collection::vec(0usize..ATOMS, 1..5),
        rules in proptest::collection::vec(
            (0usize..ATOMS,
             proptest::collection::vec(0usize..ATOMS, 0..3),
             proptest::collection::vec(0usize..ATOMS, 0..3)),
            1..12,
        ),
    ) {
        let src = stratified_source(&facts, &rules);
        let program = parse_asp(&src).unwrap();
        let g = ground(&program).unwrap();
        let fast = stable_models_stratified(&g);
        prop_assert!(fast.is_some(), "program should be stratified:\n{src}");
        prop_assert_eq!(fast.unwrap(), stable_models_search(&g));
    }
}

fn rs_db() -> (Database, ConstraintSet) {
    let mut db = Database::new();
    db.create_relation(RelationSchema::new("R", ["A", "B"]))
        .unwrap();
    db.create_relation(RelationSchema::new("S", ["A"])).unwrap();
    db.insert("R", tuple!["a4", "a3"]).unwrap();
    db.insert("R", tuple!["a2", "a1"]).unwrap();
    db.insert("R", tuple!["a3", "a3"]).unwrap();
    db.insert("S", tuple!["a4"]).unwrap();
    db.insert("S", tuple!["a2"]).unwrap();
    db.insert("S", tuple!["a3"]).unwrap();
    let sigma =
        ConstraintSet::from_iter(
            [DenialConstraint::parse("kappa", "S(x), R(x, y), S(y)").unwrap()],
        );
    (db, sigma)
}

/// E-series fixture (Ex. 3.5): the dispatcher and the reference search
/// must produce byte-identical model lists on the repair program.
#[test]
fn repair_program_models_identical_between_dispatcher_and_search() {
    let (db, sigma) = rs_db();
    let rp = cqa_asp::RepairProgram::build(&db, &sigma).unwrap();
    let g = rp.ground().unwrap();
    assert_eq!(stable_models(&g), stable_models_search(&g));
}

/// A consistent instance grounds to a definite repair program, so the
/// dispatcher takes the stratified fast path — and must still agree.
#[test]
fn consistent_repair_program_takes_fast_path_and_agrees() {
    let mut db = Database::new();
    db.create_relation(RelationSchema::new("Employee", ["Name", "Salary"]))
        .unwrap();
    db.insert("Employee", tuple!["smith", 3000]).unwrap();
    db.insert("Employee", tuple!["stowe", 7000]).unwrap();
    let sigma = ConstraintSet::from_iter([KeyConstraint::new("Employee", ["Name"])]);
    let rp = cqa_asp::RepairProgram::build(&db, &sigma).unwrap();
    let g = rp.ground().unwrap();
    let search = stable_models_search(&g);
    assert_eq!(stable_models(&g), search);
    if let Some(fast) = stable_models_stratified(&g) {
        assert_eq!(fast, search);
    }
}
