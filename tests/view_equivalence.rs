//! Property tests for the zero-clone repair views: a [`DeltaView`] must be
//! observationally equivalent to the materialized repair it represents —
//! for query answering (CQA), constraint satisfaction and causality
//! responsibilities — and the equivalence must hold at every thread count
//! (the views share one base-index cache across worker threads).

use cqa_constraints::{ConstraintSet, DenialConstraint, KeyConstraint};
use cqa_core::{certain_over, possible_over, s_repairs, RepairClass};
use cqa_exec::with_threads;
use cqa_query::{parse_query, UnionQuery};
use cqa_relation::{tuple, Database, DeltaView, Facts, RelationSchema, Tid};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A `T(K, V)` instance with key-group conflicts plus a unary `S(V)` table
/// for join queries.
fn key_instance(groups: &[u8], s_vals: &[u8]) -> (Database, ConstraintSet) {
    let mut db = Database::new();
    db.create_relation(RelationSchema::new("T", ["K", "V"]))
        .unwrap();
    db.create_relation(RelationSchema::new("S", ["V"])).unwrap();
    for (k, &size) in groups.iter().enumerate() {
        for v in 0..size.max(1) {
            db.insert("T", tuple![k as i64, v as i64]).unwrap();
        }
    }
    for &v in s_vals {
        db.insert("S", tuple![v as i64]).unwrap();
    }
    let sigma = ConstraintSet::from_iter([KeyConstraint::new("T", ["K"])]);
    (db, sigma)
}

fn join_query() -> UnionQuery {
    UnionQuery::single(parse_query("Q(k, v) :- T(k, v), S(v)").unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every repair's view answers exactly like its materialized instance,
    /// and snapshots round-trip byte-identically.
    #[test]
    fn view_equals_materialized_repair(
        groups in proptest::collection::vec(1u8..4, 1..4),
        s_vals in proptest::collection::vec(0u8..4, 0..4),
    ) {
        let (db, sigma) = key_instance(&groups, &s_vals);
        let q = join_query();
        for r in s_repairs(&db, &sigma).unwrap() {
            let view = r.view();
            // Snapshot round-trip: same content, same tids.
            prop_assert!(view.snapshot().same_content(r.db()));
            // Constraint satisfaction agrees (and holds: it is a repair).
            prop_assert!(sigma.is_satisfied(&view).unwrap());
            prop_assert!(sigma.is_satisfied(r.db()).unwrap());
            // Query answers agree.
            prop_assert_eq!(
                cqa_query::eval_ucq(&view, &q, cqa_query::NullSemantics::Sql),
                cqa_query::eval_ucq(r.db(), &q, cqa_query::NullSemantics::Sql)
            );
        }
    }

    /// CQA folded over views equals CQA folded over materialized repairs,
    /// at 1 and 4 threads.
    #[test]
    fn cqa_over_views_equals_cqa_over_instances(
        groups in proptest::collection::vec(1u8..4, 1..4),
        s_vals in proptest::collection::vec(0u8..4, 0..4),
    ) {
        let (db, sigma) = key_instance(&groups, &s_vals);
        let q = join_query();
        for threads in [1usize, 4] {
            let (via_views, via_instances) = with_threads(threads, || {
                let repairs = s_repairs(&db, &sigma).unwrap();
                let views: Vec<DeltaView<'_>> = repairs.iter().map(|r| r.view()).collect();
                let v = (certain_over(&views, &q), possible_over(&views, &q));
                let dbs: Vec<Database> =
                    repairs.into_iter().map(|r| r.into_db()).collect();
                let m = (certain_over(&dbs, &q), possible_over(&dbs, &q));
                (v, m)
            });
            prop_assert_eq!(&via_views.0, &via_instances.0, "certain answers, {} threads", threads);
            prop_assert_eq!(&via_views.1, &via_instances.1, "possible answers, {} threads", threads);
            // And the public entry point (view-based) agrees too.
            let public = with_threads(threads, || {
                cqa_core::consistent_answers(&db, &sigma, &q, &RepairClass::Subset).unwrap()
            });
            prop_assert_eq!(&public, &via_instances.0);
        }
    }

    /// Causality over a deletion view equals causality over the snapshot of
    /// that view: responsibilities probe views, never clones.
    #[test]
    fn responsibilities_agree_on_views(
        groups in proptest::collection::vec(1u8..4, 1..4),
        s_vals in proptest::collection::vec(0u8..4, 1..4),
        deletions in proptest::collection::btree_set(1u64..10, 0..3),
    ) {
        let (db, _) = key_instance(&groups, &s_vals);
        let q = join_query();
        let deleted: BTreeSet<Tid> = deletions
            .into_iter()
            .map(Tid)
            .filter(|t| db.get(*t).is_some())
            .collect();
        let view = DeltaView::new(&db, &deleted, &[]);
        let snapshot = view.snapshot();
        for threads in [1usize, 4] {
            let (on_view, on_snapshot) = with_threads(threads, || {
                (
                    cqa_causality::actual_causes(&view, &q),
                    cqa_causality::actual_causes(&snapshot, &q),
                )
            });
            prop_assert_eq!(on_view.len(), on_snapshot.len());
            for (a, b) in on_view.iter().zip(on_snapshot.iter()) {
                prop_assert_eq!(a.tid, b.tid);
                prop_assert_eq!(a.responsibility, b.responsibility);
                prop_assert_eq!(a.counterfactual, b.counterfactual);
            }
        }
    }

    /// Denial-constraint checking sees through insertions as well: a view
    /// with an insert overlay agrees with its snapshot.
    #[test]
    fn insert_overlay_constraint_checks_agree(
        groups in proptest::collection::vec(1u8..3, 1..3),
        extra_k in 0u8..4,
        extra_v in 0u8..4,
    ) {
        let (db, sigma) = key_instance(&groups, &[]);
        let dc = ConstraintSet::from_iter([
            DenialConstraint::parse("kappa", "T(x, y), S(y)").unwrap()
        ]);
        let deleted = BTreeSet::new();
        let inserted = vec![
            ("T".to_string(), tuple![i64::from(extra_k), i64::from(extra_v)]),
            ("S".to_string(), tuple![i64::from(extra_v)]),
        ];
        let view = DeltaView::new(&db, &deleted, &inserted);
        let snapshot = view.snapshot();
        prop_assert_eq!(
            sigma.is_satisfied(&view).unwrap(),
            sigma.is_satisfied(&snapshot).unwrap()
        );
        prop_assert_eq!(
            dc.is_satisfied(&view).unwrap(),
            dc.is_satisfied(&snapshot).unwrap()
        );
        prop_assert_eq!(
            dc.denial_violations(&view).unwrap(),
            dc.denial_violations(&snapshot).unwrap()
        );
    }
}
