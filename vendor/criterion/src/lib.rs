#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Minimal, API-compatible stand-in for the subset of `criterion` this
//! workspace uses. The build environment has no network access to crates.io,
//! so the benches vendor this tiny measuring harness instead of the real
//! crate.
//!
//! Semantics: each benchmark is warmed up once, then timed for up to
//! `sample_size` iterations or `measurement_time`, whichever comes first;
//! the mean and min wall-clock per iteration are printed. When invoked with
//! `--test` (as `cargo test --benches` does), every benchmark body runs
//! exactly once with no timing, so bench binaries double as smoke tests.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark id: function name plus an input parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Just a parameter under the group's name.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timing context passed to benchmark closures.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    measurement_time: Duration,
    /// (mean, min) seconds per iteration of the last `iter` call.
    result: Option<(f64, f64)>,
}

impl Bencher {
    /// Time `routine`, storing per-iteration statistics.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.result = None;
            return;
        }
        black_box(routine()); // warm-up
        let started = Instant::now();
        let mut times = Vec::with_capacity(self.sample_size);
        while times.is_empty()
            || (times.len() < self.sample_size && started.elapsed() < self.measurement_time)
        {
            let t0 = Instant::now();
            black_box(routine());
            times.push(t0.elapsed().as_secs_f64());
        }
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let min = times.iter().copied().fold(f64::INFINITY, f64::min);
        self.result = Some((mean, min));
    }
}

fn format_seconds(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.2} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

fn run_one(
    label: &str,
    test_mode: bool,
    sample_size: usize,
    measurement_time: Duration,
    f: impl FnOnce(&mut Bencher),
) {
    let mut b = Bencher {
        test_mode,
        sample_size,
        measurement_time,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((mean, min)) => println!(
            "{label:<50} time: [mean {} | min {}]",
            format_seconds(mean),
            format_seconds(min)
        ),
        None => println!("{label:<50} ok (test mode)"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(
            &label,
            self.criterion.test_mode,
            self.sample_size,
            self.measurement_time,
            |b| f(b, input),
        );
        self
    }

    /// Run one benchmark without an input.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: BenchmarkId, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_one(
            &label,
            self.criterion.test_mode,
            self.sample_size,
            self.measurement_time,
            f,
        );
        self
    }

    /// End the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test --benches` runs bench binaries with `--test`; detect it
        // so benchmarks degrade into single-shot smoke tests.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Open a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.test_mode, 20, Duration::from_secs(3), f);
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_prints() {
        let mut c = Criterion { test_mode: false };
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(50));
        let mut ran = 0;
        group.bench_with_input(BenchmarkId::new("sum", 10), &10, |b, &n| {
            b.iter(|| (0..n).sum::<i32>());
            ran += 1;
        });
        group.finish();
        assert_eq!(ran, 1);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { test_mode: true };
        let mut count = 0;
        c.bench_function("once", |b| b.iter(|| count += 1));
        assert_eq!(count, 1);
    }
}
