#![forbid(unsafe_code)]

//! Minimal, API-compatible stand-in for the subset of `proptest` this
//! workspace uses. The build environment has no network access to crates.io,
//! so the property-test suites vendor this tiny deterministic implementation
//! instead of the real crate.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the generated inputs via the
//!   assertion message only.
//! * **Deterministic seeds.** Each `proptest!`-generated test derives its RNG
//!   seed from the test's module path and name, so runs are reproducible.
//! * **Tiny regex subset.** String strategies support `[class]{m,n}` patterns
//!   (character classes with ranges) — enough for the suites in this repo.
//!
//! Supported surface: `Strategy` (with `prop_map`/`boxed`), `Just`, `any`,
//! integer/float range strategies, tuple strategies up to arity 4,
//! `collection::{vec, btree_set}`, `prop_oneof!`, `proptest!` with
//! `#![proptest_config(...)]`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_assert_ne!`, `prop_assume!`, and `ProptestConfig::with_cases`.

/// Test-runner plumbing: config, RNG, and case outcomes.
pub mod test_runner {
    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed: discard this case, generate another.
        Reject,
        /// An assertion failed: the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Build a failure with a message.
        pub fn fail(msg: String) -> TestCaseError {
            TestCaseError::Fail(msg)
        }
    }

    /// Runner configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` successful cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 RNG used to drive all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name (FNV-1a over the bytes).
        pub fn from_name(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..n` (n > 0).
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, f }
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy::new(self)
        }
    }

    /// A type-erased strategy. Cheap to clone (shares the generator).
    pub struct BoxedStrategy<T> {
        gen: std::rc::Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                gen: std::rc::Rc::clone(&self.gen),
            }
        }
    }

    impl<T> BoxedStrategy<T> {
        /// Erase `s`.
        pub fn new<S: Strategy<Value = T> + 'static>(s: S) -> BoxedStrategy<T> {
            BoxedStrategy {
                gen: std::rc::Rc::new(move |rng| s.generate(rng)),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    /// Always produce a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `Strategy::prop_map` adapter.
    #[derive(Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Uniform choice among type-erased alternatives (`prop_oneof!`).
    #[derive(Clone)]
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Choose uniformly among `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Types with a canonical full-range strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The canonical strategy for `T` (see [`Arbitrary`]).
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    assert!(lo < hi, "empty range strategy");
                    let span = (hi - lo) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (lo + off as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// String strategy from a `[class]{m,n}` pattern (tiny regex subset);
    /// any other pattern is treated as a literal string.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            match parse_class_repeat(self) {
                Some((alphabet, min, max)) => {
                    let len = min + rng.below((max - min + 1) as u64) as usize;
                    (0..len)
                        .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                        .collect()
                }
                None => (*self).to_string(),
            }
        }
    }

    /// Parse `[chars]{m,n}` → (alphabet, m, n).
    fn parse_class_repeat(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let (class, rest) = rest.split_once(']')?;
        let rep = rest.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = rep.split_once(',')?;
        let (lo, hi) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
        let mut alphabet = Vec::new();
        let chars: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                let (a, b) = (chars[i], chars[i + 2]);
                for c in a..=b {
                    alphabet.push(c);
                }
                i += 3;
            } else {
                alphabet.push(chars[i]);
                i += 1;
            }
        }
        if alphabet.is_empty() || lo > hi {
            return None;
        }
        Some((alphabet, lo, hi))
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// A half-open size range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty collection size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    /// `Vec` of values from `element`, length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vector strategy.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// `BTreeSet` of values from `element`; `size` draws are attempted, so
    /// duplicates may make the set smaller (matches how this repo uses it).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Set strategy.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a test file normally imports.
pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Map, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n{}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `left != right`\n  left: {:?}\n right: {:?}",
            __l,
            __r
        );
    }};
}

/// Discard the current case (it is regenerated, not failed) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        );
    };
}

/// Internal recursion for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut __ran: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts = __config.cases.saturating_mul(20).max(100);
            while __ran < __config.cases {
                assert!(
                    __attempts < __max_attempts,
                    "proptest: too many rejected cases ({__ran} of {} ran)",
                    __config.cases
                );
                __attempts += 1;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __ran += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case failed (case {__ran}): {msg}");
                    }
                }
            }
        }
        $crate::__proptest_items!($cfg; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_oneof_generate_in_bounds() {
        let mut rng = TestRng::from_name("self-test");
        let s = prop_oneof![(0i64..5).prop_map(|x| x * 2), Just(100i64)];
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v == 100 || (0..10).contains(&v));
        }
    }

    #[test]
    fn string_pattern_respects_class_and_length() {
        let mut rng = TestRng::from_name("string-test");
        let s = "[a-c' ]{0,6}";
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng);
            assert!(v.len() <= 6);
            assert!(v
                .chars()
                .all(|c| ('a'..='c').contains(&c) || c == '\'' || c == ' '));
        }
    }

    #[test]
    fn collections_honour_sizes() {
        let mut rng = TestRng::from_name("coll-test");
        let v = crate::collection::vec(0u32..3, 2..5);
        let s = crate::collection::btree_set(0u64..4, 1..4);
        for _ in 0..100 {
            let xs = v.generate(&mut rng);
            assert!((2..5).contains(&xs.len()));
            let set = s.generate(&mut rng);
            assert!(!set.is_empty() || set.len() < 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_asserts(x in 0i64..10, flip in any::<bool>()) {
            prop_assume!(x != 3);
            prop_assert!(x < 10, "x was {}", x);
            prop_assert_eq!(flip, flip);
            prop_assert_ne!(x, 3);
        }
    }
}
