#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Minimal, API-compatible stand-in for the parts of the `rand` crate this
//! workspace uses (`SmallRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range`
//! over integer ranges, `Rng::gen_bool`). The build environment has no
//! network access to crates.io, so the workload generators vendor this tiny
//! deterministic PRNG instead of the real crate.
//!
//! The generator is SplitMix64 — statistically fine for synthetic benchmark
//! workloads, NOT cryptographic.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Seedable constructor, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a `Range`.
pub trait SampleUniform: Copy {
    /// Sample uniformly from `range` using words from `rng`.
    fn sample(range: Range<Self>, rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(range: Range<Self>, rng: &mut dyn RngCore) -> Self {
                let lo = range.start as i128;
                let hi = range.end as i128;
                assert!(lo < hi, "gen_range called with empty range");
                let span = (hi - lo) as u128;
                // Modulo bias is irrelevant for workload generation.
                let off = (rng.next_u64() as u128) % span;
                (lo + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(range, self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }
}

impl<R: RngCore> Rng for R {}

/// Small, fast PRNGs.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: a tiny deterministic PRNG (stand-in for rand's SmallRng).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            let x = a.gen_range(-5i64..5);
            assert_eq!(x, b.gen_range(-5i64..5));
            assert!((-5..5).contains(&x));
            let u = a.gen_range(0usize..3);
            let _ = b.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
